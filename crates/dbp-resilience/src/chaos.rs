//! The chaos runner: drives a live streaming session through a fault
//! plan with recovery and admission policies, accounting for every job
//! exactly once.
//!
//! ## Execution model
//!
//! Jobs and faults are merged into one time-ordered event stream (ties
//! go to job submissions, so a job arriving at the instant a fault fires
//! can itself be displaced by it). A displaced job restarts from
//! scratch: its resubmission occupies a fresh interval
//! `[retry_time, retry_time + duration)` under a fresh item id, so the
//! engine's monotone-id and monotone-clock invariants hold across
//! retries. A job shed at the fleet cap keeps its id (shed arrivals
//! leave no trace in the session) and — under
//! [`AdmissionPolicy::Queue`] — is re-presented at the next instant an
//! admitted job departs; when no admitted departure lies in the future
//! it is rejected, which bounds the queue and makes the run terminate.
//!
//! ## The oracle
//!
//! [`ChaosReport::verify`] re-derives everything from the submission
//! ledger and the finished run: every job ends in exactly one of
//! completed / retried-then-completed / dropped / rejected, every
//! admitted submission landed in exactly one bin, and no bin ever
//! exceeds unit capacity when each submission is credited only for its
//! *effective* interval (truncated at displacement). It deliberately
//! shares no state with the runner beyond the ledger it checks.

use crate::fault::{mix, AdmissionPolicy, FaultKind, FaultPlan, RecoveryPolicy};
use dbp_core::accounting::lower_bounds;
use dbp_core::observe::{NoopObserver, PackObserver};
use dbp_core::{
    Admission, BinId, ClairvoyanceMode, DbpError, Instance, Item, ItemId, OnlinePacker, OnlineRun,
    Size, StreamingSession, Time,
};
use dbp_obs::counters::Counters;
use dbp_sim::{Billing, RetryCounters, SimReport};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The fault schedule.
    pub plan: FaultPlan,
    /// What happens to displaced jobs.
    pub policy: RecoveryPolicy,
    /// Maximum concurrently open servers; `None` = unbounded (no
    /// admission control).
    pub fleet_cap: Option<usize>,
    /// What happens to arrivals shed at the cap.
    pub admission: AdmissionPolicy,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            plan: FaultPlan::none(),
            policy: RecoveryPolicy::Immediate,
            fleet_cap: None,
            admission: AdmissionPolicy::Reject,
        }
    }
}

/// The final status of one job (one entry per instance item).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed on the first attempt.
    Completed,
    /// Completed after `retries` resubmissions.
    Retried {
        /// Resubmissions consumed before the attempt that completed.
        retries: u32,
    },
    /// Displaced and dropped by the recovery policy after `retries`
    /// resubmissions.
    Dropped {
        /// Resubmissions consumed before the drop.
        retries: u32,
    },
    /// Refused by admission control at the fleet cap.
    Rejected,
}

/// How one submission (one attempt of one job) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmissionFate {
    /// Ran to its scheduled departure.
    Completed,
    /// Its server was killed at `at` before the scheduled departure.
    Displaced {
        /// The failure instant.
        at: Time,
    },
    /// Shed at the fleet cap at `at`; never admitted.
    Shed {
        /// The shed instant.
        at: Time,
    },
}

/// One attempt of one job, as fed to the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmissionRecord {
    /// Index of the job in the instance's item list.
    pub job: usize,
    /// Attempt number: 0 for the original submission, `k` for retry `k`.
    pub attempt: u32,
    /// The item id this attempt used (fresh per retry).
    pub id: ItemId,
    /// When the attempt arrived.
    pub arrival: Time,
    /// Its scheduled departure (`arrival + original duration`).
    pub departure: Time,
    /// How it ended.
    pub fate: SubmissionFate,
}

/// The full outcome of a chaos run: the finished engine run plus the
/// per-job and per-submission ledger the oracle checks.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Packer display name.
    pub scheduler: String,
    /// The finished run (failed bins appear with truncated lifetimes).
    pub run: OnlineRun,
    /// Final status of each job, indexed like the instance's items.
    pub outcomes: Vec<JobOutcome>,
    /// Every attempt fed to the engine, in submission order.
    pub submissions: Vec<SubmissionRecord>,
    /// Fault events processed (fired whether or not servers were open).
    pub faults_applied: u64,
    /// Servers killed across all faults.
    pub servers_killed: u64,
    /// Submissions displaced by a server failure.
    pub jobs_displaced: u64,
    /// Submissions shed at the fleet cap.
    pub arrivals_shed: u64,
}

impl ChaosReport {
    /// Aggregates the ledger into [`RetryCounters`] for `SimReport`.
    pub fn retry_counters(&self) -> RetryCounters {
        let mut c = RetryCounters {
            servers_killed: self.servers_killed,
            jobs_displaced: self.jobs_displaced,
            arrivals_shed: self.arrivals_shed,
            ..RetryCounters::default()
        };
        for o in &self.outcomes {
            match *o {
                JobOutcome::Completed => c.jobs_completed += 1,
                JobOutcome::Retried { retries } => {
                    c.jobs_retried += 1;
                    c.retries_total += u64::from(retries);
                }
                JobOutcome::Dropped { retries } => {
                    c.jobs_dropped += 1;
                    c.retries_total += u64::from(retries);
                }
                JobOutcome::Rejected => c.jobs_rejected += 1,
            }
        }
        c
    }

    /// The chaos oracle: exactly-once job accounting and post-recovery
    /// capacity safety. See the module docs for what is checked.
    pub fn verify(&self, inst: &Instance) -> Result<(), DbpError> {
        let coverage = |what: String| DbpError::PackingCoverage { what };
        if self.outcomes.len() != inst.len() {
            return Err(coverage(format!(
                "{} outcomes for {} jobs",
                self.outcomes.len(),
                inst.len()
            )));
        }
        // Group the ledger by job, preserving submission order.
        let mut by_job: Vec<Vec<&SubmissionRecord>> = vec![Vec::new(); inst.len()];
        let mut by_id: HashMap<u32, &SubmissionRecord> = HashMap::new();
        for s in &self.submissions {
            if s.job >= inst.len() {
                return Err(coverage(format!("submission for unknown job {}", s.job)));
            }
            by_job[s.job].push(s);
            if by_id.insert(s.id.0, s).is_some() {
                return Err(coverage(format!("item id {} submitted twice", s.id.0)));
            }
        }
        for (job, subs) in by_job.iter().enumerate() {
            let completed = subs
                .iter()
                .filter(|s| s.fate == SubmissionFate::Completed)
                .count();
            let last = subs
                .last()
                .ok_or_else(|| coverage(format!("job {job} was never submitted")))?;
            match self.outcomes[job] {
                JobOutcome::Completed => {
                    if completed != 1 || last.fate != SubmissionFate::Completed || last.attempt != 0
                    {
                        return Err(coverage(format!(
                            "job {job} marked Completed but its ledger disagrees"
                        )));
                    }
                }
                JobOutcome::Retried { retries } => {
                    if completed != 1
                        || last.fate != SubmissionFate::Completed
                        || last.attempt != retries
                        || retries == 0
                    {
                        return Err(coverage(format!(
                            "job {job} marked Retried({retries}) but its ledger disagrees"
                        )));
                    }
                }
                JobOutcome::Dropped { retries } => {
                    let displaced = matches!(last.fate, SubmissionFate::Displaced { .. });
                    if completed != 0 || !displaced || last.attempt != retries {
                        return Err(coverage(format!(
                            "job {job} marked Dropped({retries}) but its ledger disagrees"
                        )));
                    }
                }
                JobOutcome::Rejected => {
                    let shed = matches!(last.fate, SubmissionFate::Shed { .. });
                    if completed != 0 || !shed {
                        return Err(coverage(format!(
                            "job {job} marked Rejected but its ledger disagrees"
                        )));
                    }
                }
            }
        }
        // Every admitted submission landed in exactly one bin; shed ones
        // in none.
        let mut placed: HashMap<u32, usize> = HashMap::new();
        for r in &self.run.bins {
            for id in &r.items {
                *placed.entry(id.0).or_insert(0) += 1;
            }
        }
        for s in &self.submissions {
            let n = placed.get(&s.id.0).copied().unwrap_or(0);
            let expect = match s.fate {
                SubmissionFate::Shed { .. } => 0,
                _ => 1,
            };
            if n != expect {
                return Err(coverage(format!(
                    "submission {} (job {}) appears in {n} bins, expected {expect}",
                    s.id.0, s.job
                )));
            }
        }
        for id in placed.keys() {
            if !by_id.contains_key(id) {
                return Err(coverage(format!("bin holds unknown item id {id}")));
            }
        }
        // Capacity: credit each submission for its effective interval
        // only (truncated at displacement) and sweep each bin's level.
        for (bin_idx, r) in self.run.bins.iter().enumerate() {
            let mut deltas: Vec<(Time, i128)> = Vec::new();
            for id in &r.items {
                let s = by_id[&id.0];
                let end = match s.fate {
                    SubmissionFate::Completed => s.departure,
                    SubmissionFate::Displaced { at } => at,
                    SubmissionFate::Shed { .. } => unreachable!("shed ids are never placed"),
                };
                if end <= s.arrival {
                    continue; // displaced at its own arrival instant
                }
                let raw = inst.items()[s.job].size().raw() as i128;
                deltas.push((s.arrival, raw));
                deltas.push((end, -raw));
            }
            // Departures settle before arrivals at the same instant.
            deltas.sort_by_key(|&(t, d)| (t, d));
            let mut level: i128 = 0;
            for (t, d) in deltas {
                level += d;
                if level > Size::SCALE as i128 {
                    return Err(DbpError::CapacityExceeded {
                        bin: bin_idx,
                        at: t,
                        level: level as f64 / Size::SCALE as f64,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Runs `packer` over `inst` under the fault plan and policies in `cfg`.
pub fn run_chaos(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    cfg: &ChaosConfig,
) -> Result<ChaosReport, DbpError> {
    run_chaos_observed(inst, packer, mode, cfg, &mut NoopObserver)
}

/// A pending submission in the merged event stream. Ordered by
/// `(time, sequence number)` so equal-time submissions replay in the
/// order they were scheduled.
type PendingSub = Reverse<(Time, u64, usize, u32, u32)>; // (at, seq, job, attempt, id)

/// Like [`run_chaos`], but streams every packing event (including
/// `bin_failed` / `arrival_shed`) to `obs`.
pub fn run_chaos_observed<O: PackObserver>(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    cfg: &ChaosConfig,
    obs: &mut O,
) -> Result<ChaosReport, DbpError> {
    for ev in &cfg.plan.events {
        if let FaultKind::RackFailure { rack, racks } = ev.kind {
            if racks == 0 || rack >= racks {
                return Err(DbpError::InvalidParameter {
                    what: format!("rack {rack} outside 0..{racks}"),
                });
            }
        }
    }
    let scheduler = packer.name();
    let mut session = StreamingSession::with_observer(mode, packer, obs);

    let mut subs: BinaryHeap<PendingSub> = BinaryHeap::new();
    let mut seq: u64 = 0;
    for (job, item) in inst.items().iter().enumerate() {
        subs.push(Reverse((item.arrival(), seq, job, 0, item.id().0)));
        seq += 1;
    }
    let mut next_id: u32 = inst.items().iter().map(|i| i.id().0 + 1).max().unwrap_or(0);

    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; inst.len()];
    let mut submissions: Vec<SubmissionRecord> = Vec::with_capacity(inst.len());
    // Live admitted submissions: item id → index into `submissions`.
    let mut live: HashMap<u32, usize> = HashMap::new();
    // True departures of admitted submissions, for Queue readmission.
    let mut dep_heap: BinaryHeap<Reverse<Time>> = BinaryHeap::new();

    let mut faults_applied: u64 = 0;
    let mut servers_killed: u64 = 0;
    let mut jobs_displaced: u64 = 0;
    let mut arrivals_shed: u64 = 0;

    let mut fault_idx = 0usize;
    loop {
        let next_sub = subs.peek().map(|Reverse((at, ..))| *at);
        let next_fault = cfg.plan.events.get(fault_idx).map(|e| e.at);
        match (next_sub, next_fault) {
            (None, None) => break,
            // Ties go to submissions: a job arriving at a fault instant
            // is admitted first and may be displaced by that same fault.
            (Some(s), f) if f.is_none() || s <= f.unwrap() => {
                let Reverse((at, _, job, attempt, raw_id)) = subs.pop().expect("peeked");
                let src = &inst.items()[job];
                let item = Item::new(raw_id, src.size(), at, at + src.duration());
                let admitted = match cfg.fleet_cap {
                    None => {
                        session.arrive(&item)?;
                        true
                    }
                    Some(cap) => matches!(session.arrive_capped(&item, cap)?, Admission::Placed(_)),
                };
                if admitted {
                    live.insert(raw_id, submissions.len());
                    dep_heap.push(Reverse(item.departure()));
                    submissions.push(SubmissionRecord {
                        job,
                        attempt,
                        id: ItemId(raw_id),
                        arrival: at,
                        departure: item.departure(),
                        fate: SubmissionFate::Completed,
                    });
                } else {
                    arrivals_shed += 1;
                    submissions.push(SubmissionRecord {
                        job,
                        attempt,
                        id: ItemId(raw_id),
                        arrival: at,
                        departure: item.departure(),
                        fate: SubmissionFate::Shed { at },
                    });
                    match cfg.admission {
                        AdmissionPolicy::Reject => {
                            outcomes[job] = Some(JobOutcome::Rejected);
                        }
                        AdmissionPolicy::Queue => {
                            // Re-present when a server next frees up. Past
                            // departures are popped lazily; they cannot
                            // serve any later requeue either.
                            while matches!(dep_heap.peek(), Some(Reverse(t)) if *t <= at) {
                                dep_heap.pop();
                            }
                            match dep_heap.peek() {
                                Some(Reverse(t)) => {
                                    // Fresh id so every ledger entry is
                                    // uniquely keyed (a shed arrival left
                                    // no trace, so the old id would also
                                    // have been presentable).
                                    subs.push(Reverse((*t, seq, job, attempt, next_id)));
                                    seq += 1;
                                    next_id += 1;
                                }
                                None => outcomes[job] = Some(JobOutcome::Rejected),
                            }
                        }
                    }
                }
            }
            _ => {
                let ev = cfg.plan.events[fault_idx];
                fault_idx += 1;
                faults_applied += 1;
                // Settle departures first so victims are picked among
                // servers actually alive at the fault instant. The merged
                // ordering guarantees the clock has not passed `ev.at`.
                session.advance(ev.at)?;
                let open: Vec<BinId> = session.open_set().iter().map(|b| b.id()).collect();
                let victims: Vec<BinId> = match ev.kind {
                    FaultKind::Crash => open,
                    FaultKind::RackFailure { rack, racks } => {
                        open.into_iter().filter(|b| b.0 % racks == rack).collect()
                    }
                    FaultKind::SpotRevocation { count } => {
                        let mut pool = open;
                        let mut picked = Vec::new();
                        for j in 0..count.min(pool.len()) {
                            let draw =
                                mix(cfg.plan.seed, ((fault_idx as u64 - 1) << 32) | j as u64);
                            let k = (draw % pool.len() as u64) as usize;
                            picked.push(pool.swap_remove(k));
                        }
                        picked
                    }
                };
                for bin in victims {
                    let displaced = session.fail_bin(bin, ev.at)?;
                    servers_killed += 1;
                    for a in displaced {
                        jobs_displaced += 1;
                        let idx = live.remove(&a.id.0).ok_or_else(|| DbpError::Internal {
                            what: format!("displaced item {} has no live submission", a.id.0),
                        })?;
                        submissions[idx].fate = SubmissionFate::Displaced { at: ev.at };
                        let (job, attempt) = (submissions[idx].job, submissions[idx].attempt);
                        match cfg.policy.resubmit_at(ev.at, attempt + 1) {
                            None => {
                                outcomes[job] = Some(JobOutcome::Dropped { retries: attempt });
                            }
                            Some(rt) => {
                                // Restart from scratch under a fresh id.
                                subs.push(Reverse((rt, seq, job, attempt + 1, next_id)));
                                seq += 1;
                                next_id += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    let run = session.finish()?;
    for (&raw_id, &idx) in &live {
        debug_assert_eq!(submissions[idx].id.0, raw_id);
        let (job, attempt) = (submissions[idx].job, submissions[idx].attempt);
        outcomes[job] = Some(if attempt == 0 {
            JobOutcome::Completed
        } else {
            JobOutcome::Retried { retries: attempt }
        });
    }
    let outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(job, o)| {
            o.ok_or_else(|| DbpError::Internal {
                what: format!("job {job} ended with no outcome"),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ChaosReport {
        scheduler,
        run,
        outcomes,
        submissions,
        faults_applied,
        servers_killed,
        jobs_displaced,
        arrivals_shed,
    })
}

/// Runs a chaos simulation and folds it into a [`SimReport`] with
/// [`SimReport::retry`] populated. `utilization` credits only the
/// effectively-served demand (truncated at displacement);
/// `ratio_vs_lb` still compares against the *fault-free* lower bound of
/// the original instance, so values below 1 are possible when jobs were
/// dropped or rejected.
pub fn simulate_chaos(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    billing: Billing,
    cfg: &ChaosConfig,
) -> Result<SimReport, DbpError> {
    billing.validate()?;
    let mut counters = Counters::new();
    let rep = run_chaos_observed(inst, packer, mode, cfg, &mut counters)?;
    rep.verify(inst)?;
    let served_ticks: f64 = rep
        .submissions
        .iter()
        .filter_map(|s| {
            let end = match s.fate {
                SubmissionFate::Completed => s.departure,
                SubmissionFate::Displaced { at } => at,
                SubmissionFate::Shed { .. } => return None,
            };
            let len = (end - s.arrival).max(0) as f64;
            Some(len * inst.items()[s.job].size().raw() as f64 / Size::SCALE as f64)
        })
        .sum();
    let run = &rep.run;
    let fleet = run.fleet_series();
    let lb = lower_bounds(inst);
    Ok(SimReport {
        scheduler: rep.scheduler.clone(),
        cost: billing.cost(run),
        usage: run.usage,
        servers_acquired: run.bins_opened(),
        peak_servers: fleet.max() as usize,
        utilization: if run.usage == 0 {
            1.0
        } else {
            served_ticks / run.usage as f64
        },
        ratio_vs_lb: if lb.best() == 0 {
            1.0
        } else {
            run.usage as f64 / lb.best() as f64
        },
        counters: counters.snapshot(),
        retry: Some(rep.retry_counters()),
        run: rep.run,
    })
}
