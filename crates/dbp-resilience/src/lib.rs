//! Resilience layer for the streaming DBP engine: checkpoint/restore,
//! seeded fault injection, and graceful degradation under a fleet cap.
//!
//! The paper's model assumes servers never fail and capacity is
//! unbounded; production schedulers get neither. This crate closes the
//! gap in three pieces:
//!
//! * [`checkpoint`] — a versioned JSON encoding of
//!   [`dbp_core::SessionSnapshot`], proven bit-identical on resume: a
//!   run checkpointed after any prefix of arrivals and restored into a
//!   fresh session finishes with exactly the [`dbp_core::OnlineRun`] an
//!   uninterrupted run produces.
//! * [`fault`] — deterministic, seeded [`fault::FaultPlan`]s (spot
//!   revocations, whole-fleet crashes, correlated rack failures) plus
//!   the [`fault::RecoveryPolicy`] and [`fault::AdmissionPolicy`] knobs
//!   that decide what happens to displaced and shed jobs.
//! * [`failpoint`] — injectable IO failpoints (thread-local error
//!   injection plus a `DBP_CRASH_AT_IO` process-abort mode) that the
//!   durability torture harness uses to crash WAL and checkpoint IO at
//!   every boundary in turn.
//! * [`chaos`] — the runner that drives a live session through a fault
//!   plan, re-packs displaced jobs under the recovery policy, applies
//!   admission control at a fleet cap, and accounts for every job
//!   exactly once in a [`chaos::ChaosReport`] whose
//!   [`chaos::ChaosReport::verify`] is a self-contained oracle.
//!
//! Failure and shedding surface through the ordinary
//! [`dbp_core::observe::PackObserver`] stream (`bin_failed`,
//! `arrival_shed`), so traces and metrics pick them up with no extra
//! wiring; `dbp-audit`'s chaos family fuzzes the whole stack.

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod failpoint;
pub mod fault;

pub use chaos::{
    simulate_chaos, ChaosConfig, ChaosReport, JobOutcome, SubmissionFate, SubmissionRecord,
};
pub use checkpoint::{
    durable_write, fsync_dir, read_checkpoint, snapshot_from_json, snapshot_to_json,
    write_checkpoint, CHECKPOINT_FORMAT,
};
pub use fault::{AdmissionPolicy, FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
