//! Versioned JSON checkpoints of a streaming session.
//!
//! [`snapshot_to_json`] encodes a [`SessionSnapshot`] as a single JSON
//! document; [`snapshot_from_json`] decodes it, validating structure and
//! refusing unknown format names or versions up front (the snapshot's
//! own version is checked again, against the running build, by
//! [`dbp_core::StreamingSession::restore`]). All integers are written as
//! their exact decimal text — raw [`Size`] values are `u64` and must not
//! pass through `f64` — so encode → decode → encode is byte-identical.
//!
//! The document layout (one object, field order fixed):
//!
//! ```json
//! {"format":"dbp-checkpoint","version":1,"packer":"ff",
//!  "packer_state":{"epoch":5},
//!  "next_bin":3,"last_arrival":7,"watermark":4,"above":[6,9],
//!  "open_bins":[{"id":0,"opened_at":0,"tag":0,
//!                "items":[{"id":1,"size_raw":8388608,"departure":9}]}],
//!  "records":[{"id":0,"opened_at":0,"closed_at":7,"tag":0,"items":[1]}],
//!  "departures":[[9,1]]}
//! ```
//!
//! `last_arrival` and per-item `departure` use `null` for "absent".

use dbp_core::online::{BinRecord, PackerState};
use dbp_core::stream::{BinSnapshot, SessionSnapshot};
use dbp_core::{ActiveItem, BinId, DbpError, ItemId, Size, Time};
use dbp_obs::json::{escape, parse, Json};
use std::fmt::Write as _;
use std::path::Path;

/// The `format` field every checkpoint document carries.
pub const CHECKPOINT_FORMAT: &str = "dbp-checkpoint";

fn bad(what: impl Into<String>) -> DbpError {
    DbpError::Trace {
        line: 0,
        what: what.into(),
    }
}

/// Encodes a snapshot as a single-line JSON document.
pub fn snapshot_to_json(snap: &SessionSnapshot) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"format\":\"{CHECKPOINT_FORMAT}\",\"version\":{},\"packer\":\"{}\"",
        snap.version,
        escape(&snap.packer)
    );
    out.push_str(",\"packer_state\":{");
    for (i, (k, v)) in snap.packer_state.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape(k));
    }
    out.push('}');
    let _ = write!(out, ",\"next_bin\":{}", snap.next_bin);
    match snap.last_arrival {
        Some(t) => {
            let _ = write!(out, ",\"last_arrival\":{t}");
        }
        None => out.push_str(",\"last_arrival\":null"),
    }
    let _ = write!(out, ",\"watermark\":{}", snap.watermark);
    out.push_str(",\"above\":[");
    for (i, id) in snap.above.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push_str("],\"open_bins\":[");
    for (i, b) in snap.open_bins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"opened_at\":{},\"tag\":{},\"items\":[",
            b.id.0, b.opened_at, b.tag
        );
        for (j, a) in b.items.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"size_raw\":{}", a.id.0, a.size.raw());
            match a.departure {
                Some(d) => {
                    let _ = write!(out, ",\"departure\":{d}}}");
                }
                None => out.push_str(",\"departure\":null}"),
            }
        }
        out.push_str("]}");
    }
    out.push_str("],\"records\":[");
    for (i, r) in snap.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"opened_at\":{},\"closed_at\":{},\"tag\":{},\"items\":[",
            r.id.0, r.opened_at, r.closed_at, r.tag
        );
        for (j, id) in r.items.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", id.0);
        }
        out.push_str("]}");
    }
    out.push_str("],\"departures\":[");
    for (i, (t, id)) in snap.departures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{t},{}]", id.0);
    }
    out.push_str("]}");
    out
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, DbpError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, DbpError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field {key:?} is not an unsigned integer")))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, DbpError> {
    u64_field(v, key)?
        .try_into()
        .map_err(|_| bad(format!("field {key:?} overflows u32")))
}

fn time_field(v: &Json, key: &str) -> Result<Time, DbpError> {
    field(v, key)?
        .as_i64()
        .ok_or_else(|| bad(format!("field {key:?} is not an integer time")))
}

fn arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], DbpError> {
    match field(v, key)? {
        Json::Arr(items) => Ok(items),
        _ => Err(bad(format!("field {key:?} is not an array"))),
    }
}

/// Decodes a checkpoint document produced by [`snapshot_to_json`].
pub fn snapshot_from_json(text: &str) -> Result<SessionSnapshot, DbpError> {
    let doc = parse(text).map_err(bad)?;
    let format = field(&doc, "format")?
        .as_str()
        .ok_or_else(|| bad("field \"format\" is not a string"))?;
    if format != CHECKPOINT_FORMAT {
        return Err(bad(format!(
            "not a checkpoint: format {format:?} (expected {CHECKPOINT_FORMAT:?})"
        )));
    }
    let version = u32_field(&doc, "version")?;
    let packer = field(&doc, "packer")?
        .as_str()
        .ok_or_else(|| bad("field \"packer\" is not a string"))?
        .to_string();
    let packer_state = match field(&doc, "packer_state")? {
        Json::Obj(pairs) => {
            let mut fields = Vec::with_capacity(pairs.len());
            for (k, v) in pairs {
                let value = v
                    .as_i64()
                    .ok_or_else(|| bad(format!("packer_state field {k:?} is not an integer")))?;
                fields.push((k.clone(), value));
            }
            PackerState::from_fields(fields)
        }
        _ => return Err(bad("field \"packer_state\" is not an object")),
    };
    let next_bin = u32_field(&doc, "next_bin")?;
    let last_arrival = match field(&doc, "last_arrival")? {
        Json::Null => None,
        v => Some(
            v.as_i64()
                .ok_or_else(|| bad("field \"last_arrival\" is not an integer time"))?,
        ),
    };
    let watermark = u32_field(&doc, "watermark")?;
    let mut above = Vec::new();
    for v in arr(&doc, "above")? {
        let id = v
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| bad("entry in \"above\" is not a u32"))?;
        above.push(id);
    }
    let mut open_bins = Vec::new();
    for b in arr(&doc, "open_bins")? {
        let mut items = Vec::new();
        for a in arr(b, "items")? {
            let departure = match field(a, "departure")? {
                Json::Null => None,
                v => Some(
                    v.as_i64()
                        .ok_or_else(|| bad("item departure is not an integer time"))?,
                ),
            };
            items.push(ActiveItem {
                id: ItemId(u32_field(a, "id")?),
                size: Size::from_raw(u64_field(a, "size_raw")?),
                departure,
            });
        }
        open_bins.push(BinSnapshot {
            id: BinId(u32_field(b, "id")?),
            opened_at: time_field(b, "opened_at")?,
            tag: u64_field(b, "tag")?,
            items,
        });
    }
    let mut records = Vec::new();
    for r in arr(&doc, "records")? {
        let mut items = Vec::new();
        for v in arr(r, "items")? {
            let id = v
                .as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| bad("record item id is not a u32"))?;
            items.push(ItemId(id));
        }
        records.push(BinRecord {
            id: BinId(u32_field(r, "id")?),
            opened_at: time_field(r, "opened_at")?,
            closed_at: time_field(r, "closed_at")?,
            tag: u64_field(r, "tag")?,
            items,
        });
    }
    let mut departures = Vec::new();
    for pair in arr(&doc, "departures")? {
        match pair {
            Json::Arr(tv) if tv.len() == 2 => {
                let t = tv[0]
                    .as_i64()
                    .ok_or_else(|| bad("departure time is not an integer"))?;
                let id = tv[1]
                    .as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| bad("departure id is not a u32"))?;
                departures.push((t, ItemId(id)));
            }
            _ => return Err(bad("entry in \"departures\" is not a [time, id] pair")),
        }
    }
    Ok(SessionSnapshot {
        version,
        packer,
        packer_state,
        open_bins,
        records,
        departures,
        next_bin,
        last_arrival,
        watermark,
        above,
    })
}

/// Fsyncs a directory, making previously renamed entries durable. Every
/// rename-based commit needs this: the rename itself may sit in the
/// directory's page cache until the metadata is flushed.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    crate::failpoint::io_op("dir_fsync")?;
    std::fs::File::open(dir)?.sync_all()
}

/// Durably writes `bytes` to `path`: temp file in the same directory,
/// `sync_all`, rename over the canonical name, then parent-directory
/// fsync. A crash at any point leaves either the old content or the new
/// content under `path`, never a torn file. Every step runs through a
/// [`crate::failpoint`] hook so the torture harness can crash it.
pub fn durable_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = match path.file_name().and_then(|n| n.to_str()) {
        Some(name) => path.with_file_name(format!("{name}.tmp")),
        None => {
            return Err(std::io::Error::other(format!(
                "durable_write: {} has no file name",
                path.display()
            )))
        }
    };
    {
        crate::failpoint::io_op("ckpt_write")?;
        let mut f = std::fs::File::create(&tmp)?;
        use std::io::Write as _;
        f.write_all(bytes)?;
        crate::failpoint::io_op("ckpt_sync")?;
        f.sync_all()?;
    }
    crate::failpoint::io_op("ckpt_rename")?;
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fsync_dir(dir)?;
        }
    }
    Ok(())
}

/// Writes a checkpoint document to `path` (trailing newline included),
/// durably: temp file + `sync_all` + rename + parent-directory fsync.
pub fn write_checkpoint(path: &Path, snap: &SessionSnapshot) -> std::io::Result<()> {
    let mut text = snapshot_to_json(snap);
    text.push('\n');
    durable_write(path, text.as_bytes())
}

/// Reads a checkpoint document from `path`. I/O failures surface as
/// [`DbpError::Trace`] with the path in the message.
pub fn read_checkpoint(path: &Path) -> Result<SessionSnapshot, DbpError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| bad(format!("cannot read checkpoint {}: {e}", path.display())))?;
    snapshot_from_json(text.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::{ClairvoyanceMode, Instance, StreamingSession};

    fn sample_snapshot() -> SessionSnapshot {
        let inst = Instance::from_triples(&[
            (0.5, 0, 10),
            (0.5, 2, 8),
            (0.9, 3, 30),
            (0.25, 5, 12),
            (0.25, 7, 40),
        ]);
        let mut packer = dbp_algos::online::ClassifyByDepartureTime::new(8);
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for item in inst.items() {
            s.arrive(item).unwrap();
        }
        s.snapshot()
    }

    #[test]
    fn json_round_trip_is_identity() {
        let snap = sample_snapshot();
        let text = snapshot_to_json(&snap);
        let decoded = snapshot_from_json(&text).unwrap();
        assert_eq!(decoded, snap);
        // Encoding is canonical: re-encoding the decoded snapshot is
        // byte-identical.
        assert_eq!(snapshot_to_json(&decoded), text);
    }

    #[test]
    fn file_round_trip() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("dbp-resilience-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ckpt.json");
        write_checkpoint(&path, &snap).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_format_and_garbage() {
        assert!(snapshot_from_json("{\"format\":\"other\"}").is_err());
        assert!(snapshot_from_json("not json").is_err());
        assert!(snapshot_from_json("{}").is_err());
        // Structurally valid JSON with a broken field type.
        let snap = sample_snapshot();
        let text = snapshot_to_json(&snap).replace("\"watermark\":", "\"watermark\":\"x\",\"w\":");
        assert!(snapshot_from_json(&text).is_err());
    }

    /// A torn write (process killed mid-checkpoint) leaves a prefix of
    /// the document on disk. Reading it back at any cut point must be a
    /// typed error — never a panic — so a restart can fall back to the
    /// previous good snapshot (the serve layer's restore path does
    /// exactly that).
    #[test]
    fn torn_checkpoint_files_are_typed_errors() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("dbp-resilience-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.ckpt.json");
        write_checkpoint(&path, &snap).unwrap();
        let full = std::fs::read(&path).unwrap();
        let n = full.len();
        // Cut at the empty file, inside the header, at several interior
        // offsets, and just short of completion (losing the closing
        // brace and/or newline).
        for cut in [0, 1, 8, n / 8, n / 4, n / 2, 3 * n / 4, n - 2] {
            std::fs::write(&path, &full[..cut]).unwrap();
            match read_checkpoint(&path) {
                Err(DbpError::Trace { .. }) => {}
                Err(e) => panic!("cut at {cut}/{n}: expected Trace error, got {e}"),
                Ok(_) => panic!("cut at {cut}/{n}: truncated checkpoint decoded successfully"),
            }
        }
        // Losing only the trailing newline keeps the document complete.
        std::fs::write(&path, &full[..n - 1]).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), snap);
        // The untruncated file still reads back bit-identically.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_survives_even_if_unsupported() {
        // The decoder preserves the version; restore() is what refuses
        // unknown versions, so forward-compatible tooling can still
        // inspect newer checkpoints.
        let snap = sample_snapshot();
        let text = snapshot_to_json(&snap).replace("\"version\":1", "\"version\":999");
        let decoded = snapshot_from_json(&text).unwrap();
        assert_eq!(decoded.version, 999);
        let mut packer = dbp_algos::online::ClassifyByDepartureTime::new(8);
        let err = StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut packer, &decoded)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, DbpError::InvalidParameter { .. }), "{err}");
    }
}
