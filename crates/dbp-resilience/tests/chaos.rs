//! Chaos-runner invariants: every job is accounted for exactly once,
//! capacity is never exceeded post-recovery, and the degenerate
//! configuration reproduces a fault-free run.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::{ClairvoyanceMode, Instance, StreamingSession};
use dbp_resilience::chaos::{run_chaos, simulate_chaos, ChaosConfig, JobOutcome};
use dbp_resilience::fault::{AdmissionPolicy, FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
use dbp_sim::unit_billing;

fn mode_for(algo: &str) -> ClairvoyanceMode {
    if matches!(algo, "cbdt" | "cbd" | "combined") {
        ClairvoyanceMode::Clairvoyant
    } else {
        ClairvoyanceMode::NonClairvoyant
    }
}

fn workload() -> Instance {
    let mut triples = Vec::new();
    let mut state = 0xD1B5_4A32u64;
    let mut t = 0i64;
    for i in 0..30 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let size = 0.1 + (state >> 40) as f64 / (1u64 << 24) as f64 * 0.8;
        let dur = 5 + (state % 60) as i64;
        triples.push((size.min(0.9), t, t + dur));
        if i % 2 == 0 {
            t += 1 + (state % 4) as i64;
        }
    }
    Instance::from_triples(&triples)
}

#[test]
fn every_roster_packer_survives_seeded_faults() {
    let inst = workload();
    let params = AlgoParams::from_instance(&inst);
    let horizon = inst.last_departure().unwrap_or(1);
    let policies = [
        RecoveryPolicy::Immediate,
        RecoveryPolicy::Backoff {
            base: 2,
            cap: 16,
            max_retries: 3,
        },
        RecoveryPolicy::DropAfter { max_retries: 1 },
    ];
    for (ai, algo) in ONLINE_ALGOS.iter().enumerate() {
        let cfg = ChaosConfig {
            plan: FaultPlan::seeded(41 + ai as u64, horizon, 6),
            policy: policies[ai % policies.len()],
            fleet_cap: None,
            admission: AdmissionPolicy::Reject,
        };
        let mut packer = online_packer(algo, params);
        let rep = run_chaos(&inst, &mut *packer, mode_for(algo), &cfg).unwrap();
        rep.verify(&inst)
            .unwrap_or_else(|e| panic!("{algo}: oracle rejected the run: {e}"));
        assert_eq!(rep.outcomes.len(), inst.len(), "{algo}");
        assert_eq!(rep.faults_applied, 6, "{algo}");
        let c = rep.retry_counters();
        assert_eq!(
            c.jobs_completed + c.jobs_retried + c.jobs_dropped + c.jobs_rejected,
            inst.len() as u64,
            "{algo}: outcomes must partition the jobs"
        );
    }
}

#[test]
fn no_faults_no_cap_reproduces_the_plain_run() {
    let inst = workload();
    let params = AlgoParams::from_instance(&inst);
    for algo in ONLINE_ALGOS {
        let cfg = ChaosConfig::default();
        let mut packer = online_packer(algo, params);
        let rep = run_chaos(&inst, &mut *packer, mode_for(algo), &cfg).unwrap();
        rep.verify(&inst).unwrap();
        assert!(rep.outcomes.iter().all(|o| *o == JobOutcome::Completed));
        assert_eq!(rep.servers_killed, 0);
        // The run matches a plain streaming session fed the same items.
        let mut items = inst.items().to_vec();
        items.sort_by_key(|i| (i.arrival(), i.id()));
        let mut plain = online_packer(algo, params);
        let mut s = StreamingSession::new(mode_for(algo), &mut *plain);
        for item in &items {
            s.arrive(item).unwrap();
        }
        assert_eq!(rep.run, s.finish().unwrap(), "{algo}");
    }
}

#[test]
fn crash_with_no_retries_drops_every_live_job() {
    // All three jobs are running at t=10 when the fleet crashes.
    let inst = Instance::from_triples(&[(0.4, 0, 30), (0.4, 2, 25), (0.5, 5, 40)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::new(
            0,
            vec![FaultEvent {
                at: 10,
                kind: FaultKind::Crash,
            }],
        ),
        policy: RecoveryPolicy::DropAfter { max_retries: 0 },
        fleet_cap: None,
        admission: AdmissionPolicy::Reject,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert!(rep
        .outcomes
        .iter()
        .all(|o| *o == JobOutcome::Dropped { retries: 0 }));
    assert_eq!(rep.jobs_displaced, 3);
    // Usage stops at the crash: both bins' lifetimes truncate to t=10.
    assert!(rep.run.bins.iter().all(|b| b.closed_at == 10));
}

#[test]
fn immediate_recovery_restarts_displaced_jobs() {
    let inst = Instance::from_triples(&[(0.6, 0, 20)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::new(
            0,
            vec![FaultEvent {
                at: 5,
                kind: FaultKind::Crash,
            }],
        ),
        policy: RecoveryPolicy::Immediate,
        fleet_cap: None,
        admission: AdmissionPolicy::Reject,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert_eq!(rep.outcomes, vec![JobOutcome::Retried { retries: 1 }]);
    assert_eq!(rep.submissions.len(), 2);
    // Restart-from-scratch: the retry runs its full 20-tick duration
    // from the failure instant.
    assert_eq!(rep.submissions[1].arrival, 5);
    assert_eq!(rep.submissions[1].departure, 25);
    assert_eq!(rep.run.usage, 5 + 20);
}

#[test]
fn backoff_delays_each_retry_and_eventually_drops() {
    // Crash at t=5, then at every retry landing point, so the job burns
    // its whole retry budget: resubmissions at 5+2, 7+4, 11+8.
    let inst = Instance::from_triples(&[(0.5, 0, 100)]);
    let crash_at = |at| FaultEvent {
        at,
        kind: FaultKind::Crash,
    };
    let cfg = ChaosConfig {
        plan: FaultPlan::new(
            0,
            vec![crash_at(5), crash_at(7), crash_at(11), crash_at(19)],
        ),
        policy: RecoveryPolicy::Backoff {
            base: 2,
            cap: 64,
            max_retries: 3,
        },
        fleet_cap: None,
        admission: AdmissionPolicy::Reject,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert_eq!(rep.outcomes, vec![JobOutcome::Dropped { retries: 3 }]);
    let arrivals: Vec<i64> = rep.submissions.iter().map(|s| s.arrival).collect();
    assert_eq!(arrivals, vec![0, 7, 11, 19]);
}

#[test]
fn fleet_cap_queue_readmits_when_a_server_frees() {
    // Cap 1: the second job cannot open a second server at t=2 and is
    // queued until the first departs at t=10; it then runs 10..25.
    let inst = Instance::from_triples(&[(0.9, 0, 10), (0.9, 2, 17)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::none(),
        policy: RecoveryPolicy::Immediate,
        fleet_cap: Some(1),
        admission: AdmissionPolicy::Queue,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert_eq!(
        rep.outcomes,
        vec![JobOutcome::Completed, JobOutcome::Completed]
    );
    assert_eq!(rep.arrivals_shed, 1);
    let second = rep.submissions.last().unwrap();
    assert_eq!((second.arrival, second.departure), (10, 25));
    // Fleet never exceeded the cap.
    assert!(rep.run.fleet_series().max() <= 1);
}

#[test]
fn fleet_cap_reject_refuses_overflow_outright() {
    let inst = Instance::from_triples(&[(0.9, 0, 10), (0.9, 2, 17)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::none(),
        policy: RecoveryPolicy::Immediate,
        fleet_cap: Some(1),
        admission: AdmissionPolicy::Reject,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert_eq!(
        rep.outcomes,
        vec![JobOutcome::Completed, JobOutcome::Rejected]
    );
    assert_eq!(rep.run.bins.len(), 1);
}

#[test]
fn queue_rejects_when_no_server_will_ever_free() {
    // Cap 0: nothing is ever admitted, so queuing must not loop forever.
    let inst = Instance::from_triples(&[(0.5, 0, 10)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::none(),
        policy: RecoveryPolicy::Immediate,
        fleet_cap: Some(0),
        admission: AdmissionPolicy::Queue,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert_eq!(rep.outcomes, vec![JobOutcome::Rejected]);
}

#[test]
fn rack_failure_kills_only_the_failing_rack() {
    // Three 0.9 jobs → three bins (ids 0, 1, 2). Rack 1 of 2 holds bin 1.
    let inst = Instance::from_triples(&[(0.9, 0, 30), (0.9, 1, 30), (0.9, 2, 30)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::new(
            0,
            vec![FaultEvent {
                at: 10,
                kind: FaultKind::RackFailure { rack: 1, racks: 2 },
            }],
        ),
        policy: RecoveryPolicy::DropAfter { max_retries: 0 },
        fleet_cap: None,
        admission: AdmissionPolicy::Reject,
    };
    let mut packer = online_packer("first-fit", AlgoParams::from_instance(&inst));
    let rep = run_chaos(&inst, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg).unwrap();
    rep.verify(&inst).unwrap();
    assert_eq!(rep.servers_killed, 1);
    assert_eq!(
        rep.outcomes,
        vec![
            JobOutcome::Completed,
            JobOutcome::Dropped { retries: 0 },
            JobOutcome::Completed,
        ]
    );
}

#[test]
fn simulate_chaos_populates_retry_counters() {
    let inst = workload();
    let params = AlgoParams::from_instance(&inst);
    let horizon = inst.last_departure().unwrap_or(1);
    let cfg = ChaosConfig {
        plan: FaultPlan::seeded(9, horizon, 4),
        policy: RecoveryPolicy::Backoff {
            base: 1,
            cap: 8,
            max_retries: 2,
        },
        fleet_cap: Some(6),
        admission: AdmissionPolicy::Queue,
    };
    let mut packer = online_packer("first-fit", params);
    let rep = simulate_chaos(
        &inst,
        &mut *packer,
        ClairvoyanceMode::NonClairvoyant,
        unit_billing(),
        &cfg,
    )
    .unwrap();
    let retry = rep.retry.expect("chaos runs carry retry counters");
    assert_eq!(
        retry.jobs_completed + retry.jobs_retried + retry.jobs_dropped + retry.jobs_rejected,
        inst.len() as u64
    );
    // The observer stream saw the same failures and sheds the ledger did.
    assert_eq!(rep.counters.bins_failed, retry.servers_killed);
    assert_eq!(rep.counters.arrivals_shed, retry.arrivals_shed);
    assert_eq!(rep.cost, rep.usage as f64);
    assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
}
