//! Roster-wide checkpoint/restore differential: for every online packer
//! in the bench roster, a session checkpointed after *each* prefix of
//! arrivals — round-tripped through the JSON encoding — and resumed in a
//! fresh session must finish with an [`OnlineRun`] identical to the
//! uninterrupted run's.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::{ClairvoyanceMode, Instance, Item, OnlineRun, StreamingSession};
use dbp_resilience::{snapshot_from_json, snapshot_to_json};
use dbp_sim::NoisyEstimator;

fn mode_for(algo: &str) -> ClairvoyanceMode {
    if matches!(algo, "cbdt" | "cbd" | "combined") {
        ClairvoyanceMode::Clairvoyant
    } else {
        ClairvoyanceMode::NonClairvoyant
    }
}

/// A deterministic instance with bursts, shared departure ticks, and a
/// size mix that forces several bins for every roster algorithm.
fn workload() -> Instance {
    let mut triples = Vec::new();
    let mut state = 0x9E37_79B9u64;
    let mut t = 0i64;
    for i in 0..40 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let size = 0.05 + (state >> 33) as f64 / u32::MAX as f64 * 0.9;
        let dur = 3 + (state % 97) as i64;
        triples.push((size.min(0.95), t, t + dur));
        if i % 3 == 0 {
            t += (state % 5) as i64;
        }
    }
    Instance::from_triples(&triples)
}

fn arrivals(inst: &Instance) -> Vec<Item> {
    let mut items = inst.items().to_vec();
    items.sort_by_key(|i| (i.arrival(), i.id()));
    items
}

fn uninterrupted(algo: &str, inst: &Instance) -> OnlineRun {
    let params = AlgoParams::from_instance(inst);
    let mut packer = online_packer(algo, params);
    let mut s = StreamingSession::new(mode_for(algo), &mut *packer);
    for item in arrivals(inst) {
        s.arrive(&item).unwrap();
    }
    s.finish().unwrap()
}

#[test]
fn every_roster_packer_resumes_bit_identical_from_every_prefix() {
    let inst = workload();
    let items = arrivals(&inst);
    for algo in ONLINE_ALGOS {
        let params = AlgoParams::from_instance(&inst);
        let full = uninterrupted(algo, &inst);
        for cut in 0..=items.len() {
            let mut first = online_packer(algo, params);
            let mut s = StreamingSession::new(mode_for(algo), &mut *first);
            for item in &items[..cut] {
                s.arrive(item).unwrap();
            }
            let snap = s.snapshot();
            // Round-trip through the on-disk encoding: the resumed run
            // must not depend on anything the JSON cannot carry.
            let decoded = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
            assert_eq!(decoded, snap, "{algo}: lossy checkpoint at cut {cut}");
            drop(s);

            let mut second = online_packer(algo, params);
            let mut resumed =
                StreamingSession::restore(mode_for(algo), &mut *second, &decoded).unwrap();
            for item in &items[cut..] {
                resumed.arrive(item).unwrap();
            }
            let run = resumed.finish().unwrap();
            assert_eq!(run, full, "{algo}: resume from cut {cut} diverged");
        }
    }
}

#[test]
fn noisy_mode_resumes_bit_identical_when_estimator_is_reconstructed() {
    // The snapshot cannot carry the estimator closure; the caller must
    // reconstruct the same one. Same (seed, id) → same estimate, so the
    // resumed run is still bit-identical.
    let inst = workload();
    let items = arrivals(&inst);
    let est = NoisyEstimator::new(11, 0.3);
    let params = AlgoParams::from_instance(&inst);

    let mut base = online_packer("cbdt", params);
    let mut s = StreamingSession::new(est.mode(), &mut *base);
    for item in &items {
        s.arrive(item).unwrap();
    }
    let full = s.finish().unwrap();

    let cut = items.len() / 2;
    let mut first = online_packer("cbdt", params);
    let mut s = StreamingSession::new(est.mode(), &mut *first);
    for item in &items[..cut] {
        s.arrive(item).unwrap();
    }
    let snap = s.snapshot();
    drop(s);
    let mut second = online_packer("cbdt", params);
    let mut resumed =
        StreamingSession::restore(NoisyEstimator::new(11, 0.3).mode(), &mut *second, &snap)
            .unwrap();
    for item in &items[cut..] {
        resumed.arrive(item).unwrap();
    }
    assert_eq!(resumed.finish().unwrap(), full);
}
