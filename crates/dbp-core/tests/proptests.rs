//! Property tests for the core data structures, checked against naive
//! reference models.

use dbp_core::events::load_segments;
use dbp_core::interval::{span_of, union_components, Interval};
use dbp_core::online::{ClairvoyanceMode, Decision, ItemView, OnlinePacker, OpenBins};
use dbp_core::profile::{BTreeProfile, LevelProfile, SegTreeProfile};
use dbp_core::stats::StepSeries;
use dbp_core::stream::StreamingSession;
use dbp_core::{Instance, Item, Packing, Size};
use proptest::prelude::*;

/// Naive per-tick reference model of a level profile over [0, N).
const N: i64 = 64;

fn arb_ops() -> impl Strategy<Value = Vec<(Interval, Size)>> {
    proptest::collection::vec(
        (0i64..N - 1, 1i64..16, 1u64..=32).prop_map(|(a, len, s)| {
            (
                Interval::of(a, (a + len).min(N)),
                Size::from_ratio(s, 64).unwrap(),
            )
        }),
        0..20,
    )
}

fn naive_levels(ops: &[(Interval, Size)]) -> Vec<u64> {
    let mut lv = vec![0u64; N as usize];
    for (iv, s) in ops {
        for (t, lvl) in lv.iter_mut().enumerate() {
            if iv.contains(t as i64) {
                *lvl += s.raw();
            }
        }
    }
    lv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both profile backends agree with the per-tick reference model on
    /// level queries and window maxima.
    #[test]
    fn profiles_match_reference(ops in arb_ops()) {
        let reference = naive_levels(&ops);
        let mut bt = BTreeProfile::new();
        let mut st = SegTreeProfile::from_times((0..=N).collect());
        for (iv, s) in &ops {
            bt.add(*iv, *s);
            st.add(*iv, *s);
        }
        for t in 0..N {
            let want = Size::from_raw(reference[t as usize]);
            prop_assert_eq!(bt.level_at(t), want, "btree level at {}", t);
            prop_assert_eq!(st.level_at(t), want, "segtree level at {}", t);
        }
        // A few windows.
        for (a, b) in [(0i64, N), (3, 17), (10, 11), (40, 64)] {
            let want = Size::from_raw(
                reference[a as usize..b as usize].iter().copied().max().unwrap_or(0),
            );
            let iv = Interval::of(a, b);
            prop_assert_eq!(bt.max_in(iv), want);
            prop_assert_eq!(st.max_in(iv), want);
        }
    }

    /// `span_of` equals the per-tick count of covered ticks, and
    /// `union_components` is disjoint, sorted, and covers the same set.
    #[test]
    fn span_matches_reference(ops in arb_ops()) {
        let ivs: Vec<Interval> = ops.iter().map(|(iv, _)| *iv).collect();
        let mut covered = vec![false; N as usize];
        for iv in &ivs {
            for (t, c) in covered.iter_mut().enumerate() {
                if iv.contains(t as i64) {
                    *c = true;
                }
            }
        }
        let want = covered.iter().filter(|&&c| c).count() as i64;
        prop_assert_eq!(span_of(ivs.iter().copied()), want);

        let comps = union_components(ivs.iter().copied());
        for w in comps.windows(2) {
            prop_assert!(w[0].end() < w[1].start(), "components must be separated");
        }
        let total: i64 = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, want);
    }

    /// `load_segments` partitions the span and conserves total time–space
    /// area (`Σ segment_size·len == Σ item demand`).
    #[test]
    fn load_segments_conserve_area(ops in arb_ops()) {
        let items: Vec<Item> = ops
            .iter()
            .enumerate()
            .map(|(i, (iv, s))| Item::new(i as u32, *s, iv.start(), iv.end()))
            .collect();
        let segs = load_segments(&items);
        // Disjoint and ordered.
        for w in segs.windows(2) {
            prop_assert!(w[0].interval.end() <= w[1].interval.start());
        }
        let seg_area: u128 = segs
            .iter()
            .map(|s| s.total_size.raw() as u128 * s.interval.len() as u128)
            .sum();
        let demand: u128 = items.iter().map(|r| r.demand()).sum();
        prop_assert_eq!(seg_area, demand);
        let seg_span: i64 = segs.iter().map(|s| s.interval.len()).sum();
        prop_assert_eq!(seg_span, span_of(items.iter().map(|r| r.interval())));
    }

    /// The packing validator agrees with a brute-force per-tick check.
    #[test]
    fn validator_matches_bruteforce(ops in arb_ops(), split in 1usize..4) {
        let items: Vec<Item> = ops
            .iter()
            .enumerate()
            .map(|(i, (iv, s))| Item::new(i as u32, *s, iv.start(), iv.end()))
            .collect();
        let inst = Instance::from_items(items.clone()).unwrap();
        // Round-robin items into `split` bins (may or may not be valid).
        let mut bins = vec![Vec::new(); split];
        for (i, r) in items.iter().enumerate() {
            bins[i % split].push(r.id());
        }
        let packing = Packing::from_bins(bins.clone());
        let valid = packing.validate(&inst).is_ok();

        // Brute force: per tick, per bin level.
        let mut brute_ok = true;
        for bin in &bins {
            for t in 0..N {
                let level: u64 = items
                    .iter()
                    .filter(|r| bin.contains(&r.id()) && r.active_at(t))
                    .map(|r| r.size().raw())
                    .sum();
                if level > Size::SCALE {
                    brute_ok = false;
                }
            }
        }
        prop_assert_eq!(valid, brute_ok);
    }

    /// StepSeries built from deltas matches a running per-tick sum.
    #[test]
    fn step_series_matches_reference(
        deltas in proptest::collection::vec((0i64..N, -3i64..=3), 0..24)
    ) {
        let series = StepSeries::from_deltas(deltas.clone());
        for t in -1..N + 1 {
            let want: i64 = deltas.iter().filter(|(dt, _)| *dt <= t).map(|(_, d)| d).sum();
            prop_assert_eq!(series.value_at(t), want, "at t={}", t);
        }
    }
}

/// One step of the open-fleet interleaving driven below: an arrival, a
/// clock advance (departure pruning), or a server failure. The raw
/// discriminant is mapped so roughly 3/5 of the steps are arrivals —
/// deep enough fleets to matter, with churn on top.
#[derive(Clone, Debug)]
enum FleetOp {
    Arrive { size_64ths: u64, dur: i64 },
    Advance { dt: i64 },
    Fail { pick: usize },
}

fn arb_fleet_ops() -> impl Strategy<Value = Vec<FleetOp>> {
    proptest::collection::vec(
        (0u8..5, 1u64..=64, 1i64..=12, 0usize..32).prop_map(|(kind, size_64ths, dur, pick)| {
            match kind {
                0..=2 => FleetOp::Arrive { size_64ths, dur },
                3 => FleetOp::Advance { dt: dur / 2 },
                _ => FleetOp::Fail { pick },
            }
        }),
        0..80,
    )
}

/// A deliberately adversarial packer for the index-consistency property:
/// it round-robins across three tags and four query kinds, so every fit
/// structure (per-tag gap tree, per-tag residual-ordered set) is active
/// on a fleet that is concurrently mutated by the engine's arrivals,
/// departures, and failures.
struct MixedFit {
    n: u64,
}

impl OnlinePacker for MixedFit {
    fn name(&self) -> String {
        "mixed-fit".into()
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        self.n += 1;
        let tag = self.n % 3;
        let hit = match self.n % 4 {
            0 => open_bins.first_fit(tag, item.size).0,
            1 => open_bins.best_fit(tag, item.size).0,
            2 => open_bins.worst_fit(tag, item.size).0,
            _ => open_bins
                .iter_tag(tag)
                .find(|b| b.fits(item.size))
                .map(|b| b.id()),
        };
        hit.map(Decision::Existing).unwrap_or(Decision::New { tag })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite invariant for the indexed fit queries: interleaving
    /// open/close/`fail_bin`/departure-prune, the `OpenBins` internals
    /// (residual-order index, gap trees, free list, intrusive tag lists
    /// — all via `validate()`) never disagree with each other, and the
    /// indexed queries never disagree with the linear scan over the
    /// intrusive lists — including after slab slots are recycled
    /// through the free list.
    #[test]
    fn open_bins_index_never_disagrees_with_the_linear_model(ops in arb_fleet_ops()) {
        let mut packer = MixedFit { n: 0 };
        let mut session =
            StreamingSession::new(ClairvoyanceMode::NonClairvoyant, &mut packer);
        let mut now = 0i64;
        let mut next_id = 0u32;
        for op in &ops {
            match op {
                FleetOp::Arrive { size_64ths, dur } => {
                    let size = Size::from_ratio(*size_64ths, 64).unwrap();
                    session.advance_to(now).unwrap();
                    session.arrive(&Item::new(next_id, size, now, now + dur)).unwrap();
                    next_id += 1;
                }
                FleetOp::Advance { dt } => {
                    now += dt;
                    session.advance_to(now).unwrap();
                }
                FleetOp::Fail { pick } => {
                    let victim = {
                        let open = session.open_set();
                        if open.is_empty() {
                            continue;
                        }
                        open.iter().nth(pick % open.len()).unwrap().id()
                    };
                    session.fail_bin(victim, now).unwrap();
                }
            }

            let open = session.open_set();
            if let Err(why) = open.validate() {
                prop_assert!(false, "index invariants broken after {:?}: {}", op, why);
            }
            // The linear reference model is the walk over the intrusive
            // tag lists — an independent code path from the fit index.
            for tag in 0..3u64 {
                for s in [1u64, 16, 33, 64] {
                    let size = Size::from_ratio(s, 64).unwrap();
                    let lin_first =
                        open.iter_tag(tag).find(|b| b.fits(size)).map(|b| b.id());
                    let lin_best = open
                        .iter_tag(tag)
                        .filter(|b| b.fits(size))
                        .max_by_key(|b| b.level())
                        .map(|b| b.id());
                    let lin_worst = open
                        .iter_tag(tag)
                        .filter(|b| b.fits(size))
                        .min_by_key(|b| b.level())
                        .map(|b| b.id());
                    prop_assert_eq!(
                        open.first_fit(tag, size).0, lin_first,
                        "first-fit tag {} size {}/64", tag, s
                    );
                    prop_assert_eq!(
                        open.best_fit(tag, size).0, lin_best,
                        "best-fit tag {} size {}/64", tag, s
                    );
                    prop_assert_eq!(
                        open.worst_fit(tag, size).0, lin_worst,
                        "worst-fit tag {} size {}/64", tag, s
                    );
                }
            }
        }
        session.finish().unwrap();
    }
}
