//! Property tests for the core data structures, checked against naive
//! reference models.

use dbp_core::events::load_segments;
use dbp_core::interval::{span_of, union_components, Interval};
use dbp_core::profile::{BTreeProfile, LevelProfile, SegTreeProfile};
use dbp_core::stats::StepSeries;
use dbp_core::{Instance, Item, Packing, Size};
use proptest::prelude::*;

/// Naive per-tick reference model of a level profile over [0, N).
const N: i64 = 64;

fn arb_ops() -> impl Strategy<Value = Vec<(Interval, Size)>> {
    proptest::collection::vec(
        (0i64..N - 1, 1i64..16, 1u64..=32).prop_map(|(a, len, s)| {
            (
                Interval::of(a, (a + len).min(N)),
                Size::from_ratio(s, 64).unwrap(),
            )
        }),
        0..20,
    )
}

fn naive_levels(ops: &[(Interval, Size)]) -> Vec<u64> {
    let mut lv = vec![0u64; N as usize];
    for (iv, s) in ops {
        for (t, lvl) in lv.iter_mut().enumerate() {
            if iv.contains(t as i64) {
                *lvl += s.raw();
            }
        }
    }
    lv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both profile backends agree with the per-tick reference model on
    /// level queries and window maxima.
    #[test]
    fn profiles_match_reference(ops in arb_ops()) {
        let reference = naive_levels(&ops);
        let mut bt = BTreeProfile::new();
        let mut st = SegTreeProfile::from_times((0..=N).collect());
        for (iv, s) in &ops {
            bt.add(*iv, *s);
            st.add(*iv, *s);
        }
        for t in 0..N {
            let want = Size::from_raw(reference[t as usize]);
            prop_assert_eq!(bt.level_at(t), want, "btree level at {}", t);
            prop_assert_eq!(st.level_at(t), want, "segtree level at {}", t);
        }
        // A few windows.
        for (a, b) in [(0i64, N), (3, 17), (10, 11), (40, 64)] {
            let want = Size::from_raw(
                reference[a as usize..b as usize].iter().copied().max().unwrap_or(0),
            );
            let iv = Interval::of(a, b);
            prop_assert_eq!(bt.max_in(iv), want);
            prop_assert_eq!(st.max_in(iv), want);
        }
    }

    /// `span_of` equals the per-tick count of covered ticks, and
    /// `union_components` is disjoint, sorted, and covers the same set.
    #[test]
    fn span_matches_reference(ops in arb_ops()) {
        let ivs: Vec<Interval> = ops.iter().map(|(iv, _)| *iv).collect();
        let mut covered = vec![false; N as usize];
        for iv in &ivs {
            for (t, c) in covered.iter_mut().enumerate() {
                if iv.contains(t as i64) {
                    *c = true;
                }
            }
        }
        let want = covered.iter().filter(|&&c| c).count() as i64;
        prop_assert_eq!(span_of(ivs.iter().copied()), want);

        let comps = union_components(ivs.iter().copied());
        for w in comps.windows(2) {
            prop_assert!(w[0].end() < w[1].start(), "components must be separated");
        }
        let total: i64 = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, want);
    }

    /// `load_segments` partitions the span and conserves total time–space
    /// area (`Σ segment_size·len == Σ item demand`).
    #[test]
    fn load_segments_conserve_area(ops in arb_ops()) {
        let items: Vec<Item> = ops
            .iter()
            .enumerate()
            .map(|(i, (iv, s))| Item::new(i as u32, *s, iv.start(), iv.end()))
            .collect();
        let segs = load_segments(&items);
        // Disjoint and ordered.
        for w in segs.windows(2) {
            prop_assert!(w[0].interval.end() <= w[1].interval.start());
        }
        let seg_area: u128 = segs
            .iter()
            .map(|s| s.total_size.raw() as u128 * s.interval.len() as u128)
            .sum();
        let demand: u128 = items.iter().map(|r| r.demand()).sum();
        prop_assert_eq!(seg_area, demand);
        let seg_span: i64 = segs.iter().map(|s| s.interval.len()).sum();
        prop_assert_eq!(seg_span, span_of(items.iter().map(|r| r.interval())));
    }

    /// The packing validator agrees with a brute-force per-tick check.
    #[test]
    fn validator_matches_bruteforce(ops in arb_ops(), split in 1usize..4) {
        let items: Vec<Item> = ops
            .iter()
            .enumerate()
            .map(|(i, (iv, s))| Item::new(i as u32, *s, iv.start(), iv.end()))
            .collect();
        let inst = Instance::from_items(items.clone()).unwrap();
        // Round-robin items into `split` bins (may or may not be valid).
        let mut bins = vec![Vec::new(); split];
        for (i, r) in items.iter().enumerate() {
            bins[i % split].push(r.id());
        }
        let packing = Packing::from_bins(bins.clone());
        let valid = packing.validate(&inst).is_ok();

        // Brute force: per tick, per bin level.
        let mut brute_ok = true;
        for bin in &bins {
            for t in 0..N {
                let level: u64 = items
                    .iter()
                    .filter(|r| bin.contains(&r.id()) && r.active_at(t))
                    .map(|r| r.size().raw())
                    .sum();
                if level > Size::SCALE {
                    brute_ok = false;
                }
            }
        }
        prop_assert_eq!(valid, brute_ok);
    }

    /// StepSeries built from deltas matches a running per-tick sum.
    #[test]
    fn step_series_matches_reference(
        deltas in proptest::collection::vec((0i64..N, -3i64..=3), 0..24)
    ) {
        let series = StepSeries::from_deltas(deltas.clone());
        for t in -1..N + 1 {
            let want: i64 = deltas.iter().filter(|(dt, _)| *dt <= t).map(|(_, d)| d).sum();
            prop_assert_eq!(series.value_at(t), want, "at t={}", t);
        }
    }
}
