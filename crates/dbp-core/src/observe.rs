//! Packing-decision observability: structured events and the observer
//! hook the engines emit them through.
//!
//! The paper's analysis (§5, Figures 6–8) reasons about *when* bins open,
//! how levels evolve, and how usage decomposes over time — aggregate
//! numbers alone cannot answer those questions after the fact. This
//! module defines the event vocabulary ([`PackEvent`]) and the observer
//! trait ([`PackObserver`]) through which [`crate::OnlineEngine`] and
//! [`crate::stream::StreamingSession`] expose every packing decision as
//! it happens.
//!
//! ## Zero cost when disabled
//!
//! Observers are **monomorphized**: the engine is generic over the
//! observer type and every emission site is guarded by the associated
//! constant [`PackObserver::ENABLED`]. With the default
//! [`NoopObserver`], `ENABLED` is `false`, the guards constant-fold away,
//! and the compiled packing loop is identical to an unobserved one — no
//! timestamps are taken, no events are constructed.
//!
//! Rich consumers (JSONL trace writing, time-series metrics, replay
//! validation) live in the `dbp-obs` crate; this module holds only what
//! the engines need to emit.

use crate::interval::Time;
use crate::item::ItemId;
use crate::packing::BinId;
use crate::size::Size;

/// How a placement was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitDecision {
    /// The item was placed in an already-open bin.
    Reused,
    /// The packer opened a new bin for the item.
    OpenedNew,
}

/// One structured packing event, in engine emission order.
///
/// For a single arrival the engine emits, in order: any departure-driven
/// [`PackEvent::LevelChanged`] / [`PackEvent::BinClosed`] events up to the
/// arrival time, then [`PackEvent::ItemArrived`] (plus
/// [`PackEvent::EstimateUsed`] under noisy clairvoyance), then
/// [`PackEvent::BinOpened`] if the decision opened a bin, then
/// [`PackEvent::PlacementDecided`], then the placement's
/// [`PackEvent::LevelChanged`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackEvent {
    /// An item was revealed to the packer.
    ItemArrived {
        /// The item id.
        id: ItemId,
        /// The item size.
        size: Size,
        /// Arrival time (current simulation time).
        at: Time,
        /// The *true* departure time driving the simulation.
        departure: Time,
        /// The departure the packer saw (`None` when non-clairvoyant).
        visible_departure: Option<Time>,
    },
    /// Noisy clairvoyance substituted an estimate for the true departure
    /// (emitted only under [`crate::ClairvoyanceMode::Noisy`]).
    EstimateUsed {
        /// The item id.
        id: ItemId,
        /// The estimated departure shown to the packer.
        estimate: Time,
        /// The true departure used by the simulation.
        actual: Time,
    },
    /// The packer chose a bin for the arriving item.
    PlacementDecided {
        /// The item id.
        id: ItemId,
        /// The chosen bin.
        bin: BinId,
        /// Whether an open bin was reused or a new one opened.
        fit_rule: FitDecision,
        /// How many candidate bins the packer inspected while deciding,
        /// as reported by `OnlinePacker::last_scanned` (for a reuse this
        /// includes the chosen bin; for a new bin all candidates were
        /// rejected). Packers that don't track their scans fall back to
        /// the candidate-pool size — the number of bins open when the
        /// decision was made. Deterministic for a given stream either
        /// way, and always O(1) for the engine to produce.
        candidates_scanned: usize,
        /// Wall-clock nanoseconds the packer spent deciding (0 when the
        /// observer was attached without timing).
        decide_ns: u64,
    },
    /// A new bin was opened.
    BinOpened {
        /// The bin id (global opening order).
        bin: BinId,
        /// Opening time.
        at: Time,
        /// The packer-supplied category tag.
        tag: u64,
    },
    /// A bin's level changed (item placed or departed).
    LevelChanged {
        /// The bin whose level changed.
        bin: BinId,
        /// When.
        at: Time,
        /// The level after the change.
        level: Size,
        /// Number of bins open after the change.
        open_bins: usize,
    },
    /// A bin's last item departed and the bin closed.
    BinClosed {
        /// The bin id.
        bin: BinId,
        /// Closing time.
        at: Time,
        /// When the bin had been opened.
        opened_at: Time,
        /// Total number of items the bin ever held.
        items: usize,
    },
    /// An open server failed under fault injection
    /// ([`crate::stream::StreamingSession::fail_bin`]): the bin closed at
    /// the failure time and its still-resident items were displaced.
    /// Emitted *instead of* [`PackEvent::BinClosed`] for the failed bin.
    BinFailed {
        /// The failed bin.
        bin: BinId,
        /// Failure time (becomes the bin's `closed_at`).
        at: Time,
        /// When the bin had been opened.
        opened_at: Time,
        /// Number of live items displaced by the failure.
        displaced: usize,
        /// Number of bins still open after the failure.
        open_bins: usize,
    },
    /// Admission control shed an arrival
    /// ([`crate::stream::StreamingSession::arrive_capped`]): the packer
    /// wanted a new server but the fleet cap was reached, so the item was
    /// not admitted and no session state changed.
    ArrivalShed {
        /// The shed item's id.
        id: ItemId,
        /// Arrival time of the shed item.
        at: Time,
        /// Number of open bins (equal to the fleet cap) at the time.
        open_bins: usize,
    },
}

/// A coarse-grained session operation whose wall-clock duration an
/// observer may receive through [`PackObserver::on_op`].
///
/// Unlike [`PackEvent`]s (which describe *what* the packer decided,
/// deterministically), op timings describe *where time went* and are
/// inherently run-specific: they belong on the wall-clock side of the
/// determinism boundary and must never feed merged or golden state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Draining departures up to an arrival (the `close_until` sweep).
    Departures,
    /// A sharded session worker flushing one arrival batch.
    BatchFlush,
    /// Folding per-shard slices into the fleet report.
    Merge,
    /// The final drain in `finish` (all remaining departures).
    Finish,
}

/// A sink for [`PackEvent`]s.
///
/// Implementations are monomorphized into the engine; set
/// [`PackObserver::ENABLED`] to `false` (as [`NoopObserver`] does) to
/// compile every emission site away. The trait is deliberately not
/// dyn-compatible — composition is by type ([`Tee`], `Option<O>`), never
/// by boxing, so the disabled path stays free.
pub trait PackObserver {
    /// Whether the engine should construct and emit events at all. Guards
    /// every emission site; `false` makes observation free.
    const ENABLED: bool = true;

    /// Receives one event. Called synchronously from the packing loop, so
    /// implementations should be cheap and must not panic.
    fn on_event(&mut self, event: &PackEvent);

    /// Asked once per arrival (before any clock is read) whether this
    /// observer wants wall-clock timing for it. Returning `false` skips
    /// the `Instant` reads entirely — the arrival's
    /// [`PackEvent::PlacementDecided::decide_ns`] is 0 and no
    /// [`PackObserver::on_op`] durations are reported for it. Stateful
    /// implementations use this as a sampling hook (e.g. time 1 in 16
    /// arrivals) to keep observation overhead off the hot path; the
    /// default keeps the historical behavior of timing every arrival.
    #[inline(always)]
    fn wants_timing(&mut self) -> bool {
        true
    }

    /// Receives the wall-clock duration of one coarse session operation.
    /// Only called when the surrounding arrival (or finish) was timed per
    /// [`PackObserver::wants_timing`]. Default: ignore.
    #[inline(always)]
    fn on_op(&mut self, _op: OpKind, _ns: u64) {}
}

/// The default observer: sees nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl PackObserver for NoopObserver {
    const ENABLED: bool = false;
    #[inline(always)]
    fn on_event(&mut self, _event: &PackEvent) {}
    #[inline(always)]
    fn wants_timing(&mut self) -> bool {
        false
    }
}

impl<O: PackObserver> PackObserver for &mut O {
    const ENABLED: bool = O::ENABLED;
    #[inline(always)]
    fn on_event(&mut self, event: &PackEvent) {
        (**self).on_event(event);
    }
    #[inline(always)]
    fn wants_timing(&mut self) -> bool {
        (**self).wants_timing()
    }
    #[inline(always)]
    fn on_op(&mut self, op: OpKind, ns: u64) {
        (**self).on_op(op, ns);
    }
}

/// An observer that may be absent at runtime. `None` still pays the
/// (branch-only) enabled path; use [`NoopObserver`] when absence is known
/// at compile time.
impl<O: PackObserver> PackObserver for Option<O> {
    const ENABLED: bool = O::ENABLED;
    #[inline(always)]
    fn on_event(&mut self, event: &PackEvent) {
        if let Some(o) = self {
            o.on_event(event);
        }
    }
    #[inline(always)]
    fn wants_timing(&mut self) -> bool {
        match self {
            Some(o) => o.wants_timing(),
            None => false,
        }
    }
    #[inline(always)]
    fn on_op(&mut self, op: OpKind, ns: u64) {
        if let Some(o) = self {
            o.on_op(op, ns);
        }
    }
}

/// Fans events out to two observers in order. Nest for more:
/// `Tee(a, Tee(b, c))`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: PackObserver, B: PackObserver> PackObserver for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    #[inline(always)]
    fn on_event(&mut self, event: &PackEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
    #[inline(always)]
    fn wants_timing(&mut self) -> bool {
        // Both sides must be asked so stateful samplers tick in lockstep;
        // `|` (not `||`) keeps the second call from being short-circuited.
        self.0.wants_timing() | self.1.wants_timing()
    }
    #[inline(always)]
    fn on_op(&mut self, op: OpKind, ns: u64) {
        self.0.on_op(op, ns);
        self.1.on_op(op, ns);
    }
}

/// Collects every event into a `Vec` — the simplest real observer, used
/// by tests and by in-memory consumers (replay cross-checks).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// The recorded events, in emission order.
    pub events: Vec<PackEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PackObserver for EventLog {
    fn on_event(&mut self, event: &PackEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_forwarding_preserves_enabled() {
        // Read through a fn so the checks exercise the associated consts
        // as values (clippy rejects assert! on bare constants).
        fn enabled<O: PackObserver>() -> bool {
            O::ENABLED
        }
        assert!(!enabled::<NoopObserver>());
        assert!(!enabled::<&mut NoopObserver>());
        assert!(enabled::<EventLog>());
        assert!(enabled::<&mut EventLog>());
        assert!(enabled::<Tee<NoopObserver, EventLog>>());
        assert!(!enabled::<Tee<NoopObserver, NoopObserver>>());
        assert!(enabled::<Option<EventLog>>());
    }

    #[test]
    fn timing_hooks_forward_and_tick_samplers() {
        /// Times every other arrival and records op durations.
        #[derive(Default)]
        struct Sampler {
            tick: u64,
            ops: Vec<(OpKind, u64)>,
        }
        impl PackObserver for Sampler {
            fn on_event(&mut self, _: &PackEvent) {}
            fn wants_timing(&mut self) -> bool {
                self.tick += 1;
                self.tick % 2 == 1
            }
            fn on_op(&mut self, op: OpKind, ns: u64) {
                self.ops.push((op, ns));
            }
        }

        assert!(!NoopObserver.wants_timing());
        assert!(
            EventLog::new().wants_timing(),
            "default times every arrival"
        );
        let mut none: Option<Sampler> = None;
        assert!(!none.wants_timing(), "absent observer declines timing");

        // Tee must tick *both* samplers even when the first already said
        // yes, or nested samplers would drift out of lockstep.
        let mut tee = Tee(Sampler::default(), Sampler::default());
        assert!(tee.wants_timing());
        assert!(!tee.wants_timing());
        assert_eq!((tee.0.tick, tee.1.tick), (2, 2));
        tee.on_op(OpKind::Finish, 42);
        assert_eq!(tee.0.ops, vec![(OpKind::Finish, 42)]);
        assert_eq!(tee.1.ops, vec![(OpKind::Finish, 42)]);

        let mut s = Sampler::default();
        let borrowed = &mut s;
        assert!(borrowed.wants_timing());
        borrowed.on_op(OpKind::Departures, 7);
        assert_eq!(s.ops, vec![(OpKind::Departures, 7)]);
    }

    #[test]
    fn tee_delivers_to_both() {
        let ev = PackEvent::BinOpened {
            bin: BinId(0),
            at: 3,
            tag: 7,
        };
        let mut tee = Tee(EventLog::new(), EventLog::new());
        tee.on_event(&ev);
        assert_eq!(tee.0.events, vec![ev.clone()]);
        assert_eq!(tee.1.events, vec![ev]);
    }

    #[test]
    fn option_observer_forwards_when_present() {
        let ev = PackEvent::BinClosed {
            bin: BinId(1),
            at: 9,
            opened_at: 2,
            items: 4,
        };
        let mut none: Option<EventLog> = None;
        none.on_event(&ev); // no-op, no panic
        let mut some = Some(EventLog::new());
        some.on_event(&ev);
        assert_eq!(some.unwrap().events.len(), 1);
    }
}
