//! Items: the jobs to be packed.

use crate::error::DbpError;
use crate::interval::{Interval, Time};
use crate::size::Size;
use std::fmt;

/// Identifier of an item, unique within an [`crate::Instance`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A job/item `r`: a size `s(r) ∈ (0, 1]` active over `I(r) = [arrival,
/// departure)`.
///
/// Items are immutable once constructed; algorithms never mutate items, only
/// assign them to bins.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Item {
    id: ItemId,
    size: Size,
    interval: Interval,
}

impl Item {
    /// Constructs an item, panicking on invalid size or interval.
    ///
    /// Use [`Item::try_new`] for fallible construction from untrusted input.
    #[track_caller]
    pub fn new(id: u32, size: Size, arrival: Time, departure: Time) -> Item {
        Item::try_new(id, size, arrival, departure).expect("invalid item")
    }

    /// Fallible construction: requires `0 < size ≤ 1` and
    /// `arrival < departure`.
    pub fn try_new(id: u32, size: Size, arrival: Time, departure: Time) -> Result<Item, DbpError> {
        if !size.is_valid_item_size() {
            return Err(DbpError::InvalidSize {
                what: format!("item {id} has size {size} outside (0, 1]"),
            });
        }
        Ok(Item {
            id: ItemId(id),
            size,
            interval: Interval::new(arrival, departure)?,
        })
    }

    /// The item id.
    #[inline]
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The item size `s(r)`.
    #[inline]
    pub fn size(&self) -> Size {
        self.size
    }

    /// The active interval `I(r)`.
    #[inline]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Arrival time `I(r)⁻`.
    #[inline]
    pub fn arrival(&self) -> Time {
        self.interval.start()
    }

    /// Departure time `I(r)⁺`.
    #[inline]
    pub fn departure(&self) -> Time {
        self.interval.end()
    }

    /// Duration `l(I(r))`.
    #[inline]
    pub fn duration(&self) -> i64 {
        self.interval.len()
    }

    /// Time–space demand `s(r)·l(I(r))` in raw-size × tick units.
    #[inline]
    pub fn demand(&self) -> u128 {
        self.size.demand_over(self.duration())
    }

    /// Whether the item is active at time `t`.
    #[inline]
    pub fn active_at(&self, t: Time) -> bool {
        self.interval.contains(t)
    }

    /// A copy with a different id (used when merging instances).
    pub fn with_id(&self, id: u32) -> Item {
        Item {
            id: ItemId(id),
            ..*self
        }
    }

    /// A copy with a different departure time (used by the noisy-clairvoyance
    /// simulator to build *estimated* items).
    pub fn with_departure(&self, departure: Time) -> Result<Item, DbpError> {
        Ok(Item {
            interval: Interval::new(self.arrival(), departure)?,
            ..*self
        })
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(s={}, I={})", self.id, self.size, self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Item::try_new(0, Size::ZERO, 0, 1).is_err());
        assert!(Item::try_new(0, Size::CAPACITY + Size::EPSILON, 0, 1).is_err());
        assert!(Item::try_new(0, Size::HALF, 5, 5).is_err());
        assert!(Item::try_new(0, Size::HALF, 5, 6).is_ok());
    }

    #[test]
    fn accessors() {
        let r = Item::new(7, Size::from_f64(0.25), 10, 30);
        assert_eq!(r.id(), ItemId(7));
        assert_eq!(r.arrival(), 10);
        assert_eq!(r.departure(), 30);
        assert_eq!(r.duration(), 20);
        assert_eq!(r.demand(), Size::from_f64(0.25).raw() as u128 * 20);
        assert!(r.active_at(10));
        assert!(r.active_at(29));
        assert!(!r.active_at(30));
    }

    #[test]
    fn with_departure_revalidates() {
        let r = Item::new(0, Size::HALF, 10, 30);
        assert_eq!(r.with_departure(40).unwrap().duration(), 30);
        assert!(r.with_departure(10).is_err());
    }
}
