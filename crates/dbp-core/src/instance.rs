//! Problem instances: an item list `R` plus derived quantities.

use crate::error::DbpError;
use crate::interval::{span_of, Interval, Time};
use crate::item::{Item, ItemId};
use crate::size::Size;
use std::collections::HashSet;

/// An immutable list of items `R` with unique ids.
///
/// Construction validates the items (unique ids, sizes in `(0,1]`,
/// non-empty intervals). Items are stored sorted by `(arrival, id)` — the
/// order in which an online algorithm sees them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    items: Vec<Item>,
}

impl Instance {
    /// Builds an instance from items, sorting them by arrival time
    /// (ties broken by id, matching "input order" for simultaneous
    /// arrivals).
    pub fn from_items(items: Vec<Item>) -> Result<Instance, DbpError> {
        let mut seen = HashSet::with_capacity(items.len());
        for it in &items {
            if !seen.insert(it.id()) {
                return Err(DbpError::DuplicateItemId { id: it.id().0 });
            }
        }
        let mut items = items;
        items.sort_by_key(|r| (r.arrival(), r.id()));
        Ok(Instance { items })
    }

    /// Convenience builder from `(size_fraction, arrival, departure)`
    /// triples; ids are assigned 0..n in input order. Panics on invalid
    /// data — intended for tests and examples.
    #[track_caller]
    pub fn from_triples(triples: &[(f64, Time, Time)]) -> Instance {
        Instance::try_from_triples(triples).expect("invalid triples")
    }

    /// Fallible [`Instance::from_triples`]: the same dense id
    /// assignment, but index overflow and construction failures come
    /// back as typed errors instead of a panic or — worse — a silent
    /// `as u32` wrap into already-used ids.
    pub fn try_from_triples(triples: &[(f64, Time, Time)]) -> Result<Instance, DbpError> {
        let mut items = Vec::with_capacity(triples.len());
        for (i, &(s, a, d)) in triples.iter().enumerate() {
            items.push(Item::try_new(
                Instance::id_for_index(i)?,
                Size::from_f64(s),
                a,
                d,
            )?);
        }
        Instance::from_items(items)
    }

    /// Checked dense-index → item-id conversion: index `i` becomes id
    /// `i`, and indexes past `u32::MAX` are a typed error rather than a
    /// truncating cast (which would collide with id `i mod 2³²` and be
    /// dropped by the id-watermark dedupe downstream).
    pub fn id_for_index(i: usize) -> Result<u32, DbpError> {
        u32::try_from(i).map_err(|_| DbpError::InvalidParameter {
            what: format!("item index {i} exceeds the u32 id space"),
        })
    }

    /// The items, sorted by `(arrival, id)`.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the instance has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Looks up an item by id (O(n); build an index for hot paths).
    pub fn item(&self, id: ItemId) -> Option<&Item> {
        self.items.iter().find(|r| r.id() == id)
    }

    /// The span `span(R)`: measure of the union of active intervals
    /// (Proposition 2 lower bound).
    pub fn span(&self) -> i64 {
        span_of(self.items.iter().map(|r| r.interval()))
    }

    /// Total time–space demand `d(R) = Σ s(r)·l(I(r))` in raw-size × tick
    /// units (Proposition 1 lower bound, scaled by `Size::SCALE`).
    pub fn demand(&self) -> u128 {
        self.items.iter().map(|r| r.demand()).sum()
    }

    /// Minimum item duration `Δ`; `None` for an empty instance.
    pub fn min_duration(&self) -> Option<i64> {
        self.items.iter().map(|r| r.duration()).min()
    }

    /// Maximum item duration `μΔ`; `None` for an empty instance.
    pub fn max_duration(&self) -> Option<i64> {
        self.items.iter().map(|r| r.duration()).max()
    }

    /// The max/min duration ratio `μ ≥ 1`; `None` for an empty instance.
    pub fn mu(&self) -> Option<f64> {
        Some(self.max_duration()? as f64 / self.min_duration()? as f64)
    }

    /// Earliest arrival; `None` if empty.
    pub fn first_arrival(&self) -> Option<Time> {
        self.items.first().map(|r| r.arrival())
    }

    /// Latest departure; `None` if empty.
    pub fn last_departure(&self) -> Option<Time> {
        self.items.iter().map(|r| r.departure()).max()
    }

    /// The convex hull of all active intervals; `None` if empty.
    pub fn horizon(&self) -> Option<Interval> {
        Interval::new(self.first_arrival()?, self.last_departure()?).ok()
    }

    /// Splits into (small, large) item lists at the `1/2` threshold used by
    /// Dual Coloring (§4.2). Small items have `s(r) ≤ 1/2`.
    pub fn split_small_large(&self) -> (Vec<Item>, Vec<Item>) {
        self.items.iter().partition(|r| r.size().is_small())
    }

    /// A new instance with every interval shifted by `delta` ticks.
    pub fn shifted(&self, delta: i64) -> Instance {
        let items = self
            .items
            .iter()
            .map(|r| {
                Item::new(
                    r.id().0,
                    r.size(),
                    r.arrival() + delta,
                    r.departure() + delta,
                )
            })
            .collect();
        Instance { items }
    }

    /// Merges instances, reassigning ids to keep them unique. Panics if
    /// the combined item count exceeds the `u32` id space.
    pub fn concat(parts: &[Instance]) -> Instance {
        let mut items = Vec::new();
        let mut next = 0usize;
        for p in parts {
            for r in &p.items {
                let id = Instance::id_for_index(next).expect("concat exceeds the u32 id space");
                items.push(r.with_id(id));
                next += 1;
            }
        }
        Instance::from_items(items).expect("concat preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_triples(&[(0.5, 0, 10), (0.25, 5, 8), (0.75, 20, 24)])
    }

    #[test]
    fn sorted_by_arrival() {
        let inst = Instance::from_triples(&[(0.5, 10, 20), (0.5, 0, 5)]);
        assert_eq!(inst.items()[0].arrival(), 0);
        assert_eq!(inst.items()[1].arrival(), 10);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let items = vec![
            Item::new(1, Size::HALF, 0, 5),
            Item::new(1, Size::HALF, 5, 9),
        ];
        assert!(matches!(
            Instance::from_items(items),
            Err(DbpError::DuplicateItemId { id: 1 })
        ));
    }

    #[test]
    fn span_demand_mu() {
        let inst = sample();
        // span: [0,10) ∪ [5,8) ∪ [20,24) = 10 + 4
        assert_eq!(inst.span(), 14);
        let expected = Size::from_f64(0.5).raw() as u128 * 10
            + Size::from_f64(0.25).raw() as u128 * 3
            + Size::from_f64(0.75).raw() as u128 * 4;
        assert_eq!(inst.demand(), expected);
        assert_eq!(inst.min_duration(), Some(3));
        assert_eq!(inst.max_duration(), Some(10));
        assert!((inst.mu().unwrap() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_items(vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.span(), 0);
        assert_eq!(inst.demand(), 0);
        assert_eq!(inst.mu(), None);
        assert_eq!(inst.horizon(), None);
    }

    #[test]
    fn split_small_large_threshold() {
        let inst = sample();
        let (small, large) = inst.split_small_large();
        assert_eq!(small.len(), 2); // 0.5 and 0.25 are small (≤ 1/2)
        assert_eq!(large.len(), 1);
        assert_eq!(large[0].size(), Size::from_f64(0.75));
    }

    #[test]
    fn index_to_id_conversion_is_checked_at_the_boundary() {
        // Regression: `from_triples` used `i as u32`, so item 2³² would
        // silently wrap to id 0 and collide. The checked helper accepts
        // exactly the u32 id space and errors one past it.
        assert_eq!(Instance::id_for_index(0), Ok(0));
        assert_eq!(Instance::id_for_index(u32::MAX as usize), Ok(u32::MAX));
        assert!(matches!(
            Instance::id_for_index(u32::MAX as usize + 1),
            Err(DbpError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn try_from_triples_matches_the_panicking_builder() {
        let triples = [(0.5, 0, 10), (0.25, 5, 8), (0.75, 20, 24)];
        assert_eq!(Instance::try_from_triples(&triples).unwrap(), sample());
        // Invalid data surfaces as a typed error, not a panic.
        assert!(Instance::try_from_triples(&[(0.5, 9, 3)]).is_err());
    }

    #[test]
    fn shift_and_concat() {
        let a = sample();
        let b = a.shifted(100);
        assert_eq!(b.first_arrival(), Some(100));
        let c = Instance::concat(&[a.clone(), b]);
        assert_eq!(c.len(), 6);
        // ids reassigned uniquely
        let ids: HashSet<_> = c.items().iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), 6);
    }
}
