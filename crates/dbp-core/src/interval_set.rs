//! Sets of disjoint half-open intervals with exact boolean operations.
//!
//! Several algorithms manipulate one-dimensional point sets: the Dual
//! Coloring line decomposition (domain minus colored regions), span
//! accounting, and gap analysis. [`IntervalSet`] maintains the canonical
//! form — sorted, pairwise-disjoint, non-touching intervals — and
//! provides union, intersection, difference, and complement-within in
//! `O(n + m)` per operation.

use crate::interval::Interval;
use crate::interval::Time;

/// A set of times represented as disjoint, sorted, maximal half-open
/// intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Canonical: sorted by start, pairwise non-overlapping and
    /// non-touching (`a.end < b.start` for consecutive a, b).
    parts: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from arbitrary intervals (they are merged into canonical
    /// form; touching intervals coalesce).
    pub fn from_intervals(intervals: impl IntoIterator<Item = Interval>) -> Self {
        IntervalSet {
            parts: crate::interval::union_components(intervals),
        }
    }

    /// The canonical parts.
    pub fn parts(&self) -> &[Interval] {
        &self.parts
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total measure (sum of part lengths).
    pub fn measure(&self) -> i64 {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Whether `t` belongs to the set.
    pub fn contains(&self, t: Time) -> bool {
        // Binary search on start.
        match self.parts.binary_search_by_key(&t, |p| p.start()) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.parts[i - 1].contains(t),
        }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.parts.iter().chain(other.parts.iter()).copied())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.parts.len() && j < other.parts.len() {
            let a = self.parts[i];
            let b = other.parts[j];
            if let Some(x) = a.intersection(&b) {
                out.push(x);
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { parts: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.parts {
            let mut cursor = a.start();
            while j < other.parts.len() && other.parts[j].end() <= cursor {
                j += 1;
            }
            let mut k = j;
            while k < other.parts.len() && other.parts[k].start() < a.end() {
                let c = other.parts[k];
                if c.start() > cursor {
                    out.push(Interval::of(cursor, c.start().min(a.end())));
                }
                cursor = cursor.max(c.end());
                if cursor >= a.end() {
                    break;
                }
                k += 1;
            }
            if cursor < a.end() {
                out.push(Interval::of(cursor, a.end()));
            }
        }
        IntervalSet { parts: out }
    }

    /// Whether the two sets share any point.
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Whether `other ⊆ self`.
    pub fn contains_set(&self, other: &IntervalSet) -> bool {
        other.difference(self).is_empty()
    }

    /// The gaps of the set within its own hull (maximal uncovered
    /// intervals strictly between the first start and last end).
    pub fn gaps(&self) -> IntervalSet {
        if self.parts.len() < 2 {
            return IntervalSet::new();
        }
        let hull = Interval::of(
            self.parts.first().expect("nonempty").start(),
            self.parts.last().expect("nonempty").end(),
        );
        IntervalSet::from_intervals([hull]).difference(self)
    }

    /// Adds one interval (merging as needed).
    pub fn insert(&mut self, iv: Interval) {
        *self = self.union(&IntervalSet::from_intervals([iv]));
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(spec: &[(Time, Time)]) -> IntervalSet {
        IntervalSet::from_intervals(spec.iter().map(|&(a, b)| Interval::of(a, b)))
    }

    #[test]
    fn canonical_form_merges_touching() {
        let s = set(&[(0, 5), (5, 8), (10, 12), (11, 14)]);
        assert_eq!(s.parts(), &[Interval::of(0, 8), Interval::of(10, 14)]);
        assert_eq!(s.measure(), 12);
    }

    #[test]
    fn membership() {
        let s = set(&[(0, 5), (10, 15)]);
        assert!(s.contains(0));
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert!(!s.contains(7));
        assert!(s.contains(10));
        assert!(!s.contains(15));
    }

    #[test]
    fn boolean_ops() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.union(&b), set(&[(0, 30)]));
        assert_eq!(a.intersection(&b), set(&[(5, 10), (20, 25)]));
        assert_eq!(a.difference(&b), set(&[(0, 5), (25, 30)]));
        assert_eq!(b.difference(&a), set(&[(10, 20)]));
        assert!(a.intersects(&b));
        assert!(!set(&[(0, 5)]).intersects(&set(&[(5, 10)])));
    }

    #[test]
    fn difference_edge_cases() {
        let a = set(&[(0, 10)]);
        assert_eq!(a.difference(&set(&[])), a);
        assert!(a.difference(&set(&[(0, 10)])).is_empty());
        assert!(a.difference(&set(&[(-5, 15)])).is_empty());
        assert_eq!(
            a.difference(&set(&[(3, 4), (6, 7)])),
            set(&[(0, 3), (4, 6), (7, 10)])
        );
    }

    #[test]
    fn containment_and_gaps() {
        let a = set(&[(0, 10), (20, 30)]);
        assert!(a.contains_set(&set(&[(2, 5), (25, 30)])));
        assert!(!a.contains_set(&set(&[(5, 15)])));
        assert_eq!(a.gaps(), set(&[(10, 20)]));
        assert!(set(&[(0, 5)]).gaps().is_empty());
        assert!(set(&[]).gaps().is_empty());
    }

    #[test]
    fn insert_maintains_canon() {
        let mut s = set(&[(0, 5)]);
        s.insert(Interval::of(7, 9));
        s.insert(Interval::of(4, 8));
        assert_eq!(s.parts(), &[Interval::of(0, 9)]);
    }

    #[test]
    fn algebraic_identities_randomized() {
        // Deterministic xorshift; verify A = (A∩B) ∪ (A\B) and
        // measure(A∪B) = measure(A)+measure(B)−measure(A∩B).
        let mut state = 0xABCDEFu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..200 {
            let mk = |next: &mut dyn FnMut(u64) -> u64| {
                let n = next(6);
                IntervalSet::from_intervals((0..n).map(|_| {
                    let a = next(50) as Time;
                    Interval::of(a, a + 1 + next(20) as Time)
                }))
            };
            let a = mk(&mut next);
            let b = mk(&mut next);
            let recombined = a.intersection(&b).union(&a.difference(&b));
            assert_eq!(recombined, a, "A != (A∩B)∪(A\\B) for {a:?} {b:?}");
            assert_eq!(
                a.union(&b).measure(),
                a.measure() + b.measure() - a.intersection(&b).measure()
            );
        }
    }
}
