//! Instance and run statistics for reports and capacity planning.
//!
//! These summaries back the experiment tables and give downstream users a
//! quick structural fingerprint of a trace: duration and size spreads,
//! concurrency over time, and the theoretical server-count floor.

use crate::events::load_segments;
use crate::instance::Instance;
use crate::interval::Time;
use crate::size::Size;

/// A structural summary of an instance.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// Number of items.
    pub items: usize,
    /// Minimum item duration `Δ`.
    pub min_duration: i64,
    /// Maximum item duration `μΔ`.
    pub max_duration: i64,
    /// Duration ratio `μ`.
    pub mu: f64,
    /// Mean item duration.
    pub mean_duration: f64,
    /// Smallest item size (fraction of capacity).
    pub min_size: f64,
    /// Largest item size (fraction of capacity).
    pub max_size: f64,
    /// Mean item size.
    pub mean_size: f64,
    /// Span of the instance in ticks.
    pub span: i64,
    /// Peak total active size `max_t S(t)` (fraction of capacity).
    pub peak_load: f64,
    /// Peak number of simultaneously active items.
    pub peak_concurrency: usize,
    /// Mean total active size over the span.
    pub mean_load: f64,
    /// The minimum possible number of concurrently open servers at the
    /// peak: `⌈max_t S(t)⌉`.
    pub peak_server_floor: u64,
}

/// Computes [`InstanceStats`]. Returns `None` for an empty instance.
pub fn instance_stats(inst: &Instance) -> Option<InstanceStats> {
    if inst.is_empty() {
        return None;
    }
    let items = inst.items();
    let n = items.len();
    let durations: Vec<i64> = items.iter().map(|r| r.duration()).collect();
    let sizes: Vec<f64> = items.iter().map(|r| r.size().as_f64()).collect();
    let segs = load_segments(items);
    let span: i64 = segs.iter().map(|s| s.interval.len()).sum();
    let peak = segs
        .iter()
        .map(|s| s.total_size)
        .max()
        .unwrap_or(Size::ZERO);
    let area: f64 = segs
        .iter()
        .map(|s| s.total_size.as_f64() * s.interval.len() as f64)
        .sum();
    let min_duration = *durations.iter().min().expect("nonempty");
    let max_duration = *durations.iter().max().expect("nonempty");
    Some(InstanceStats {
        items: n,
        min_duration,
        max_duration,
        mu: max_duration as f64 / min_duration as f64,
        mean_duration: durations.iter().sum::<i64>() as f64 / n as f64,
        min_size: sizes.iter().cloned().fold(f64::INFINITY, f64::min),
        max_size: sizes.iter().cloned().fold(0.0, f64::max),
        mean_size: sizes.iter().sum::<f64>() / n as f64,
        span,
        peak_load: peak.as_f64(),
        peak_concurrency: segs.iter().map(|s| s.count).max().unwrap_or(0),
        mean_load: if span > 0 { area / span as f64 } else { 0.0 },
        peak_server_floor: peak.ceil_units(),
    })
}

/// A step function of time (piecewise-constant), e.g. the open-server
/// count of a run. Points are `(time, value)` with the value holding until
/// the next point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepSeries {
    /// `(time, value)` breakpoints in ascending time order.
    pub points: Vec<(Time, i64)>,
}

impl StepSeries {
    /// Builds a step series from `(time, delta)` events (e.g. +1 per
    /// server open, −1 per close). Events at equal times are merged.
    pub fn from_deltas(mut deltas: Vec<(Time, i64)>) -> StepSeries {
        deltas.sort_unstable();
        let mut points = Vec::new();
        let mut value = 0i64;
        let mut i = 0;
        while i < deltas.len() {
            let t = deltas[i].0;
            while i < deltas.len() && deltas[i].0 == t {
                value += deltas[i].1;
                i += 1;
            }
            match points.last() {
                Some(&(_, prev)) if prev == value => {}
                _ => points.push((t, value)),
            }
        }
        StepSeries { points }
    }

    /// The value at time `t` (0 before the first point).
    pub fn value_at(&self, t: Time) -> i64 {
        match self.points.binary_search_by_key(&t, |p| p.0) {
            Ok(i) => self.points[i].1,
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Maximum value ever attained (0 for empty series).
    pub fn max(&self) -> i64 {
        self.points.iter().map(|p| p.1).max().unwrap_or(0)
    }

    /// Time-weighted integral between the first and last breakpoints.
    pub fn integral(&self) -> i128 {
        let mut total: i128 = 0;
        for w in self.points.windows(2) {
            total += (w[1].0 - w[0].0) as i128 * w[0].1 as i128;
        }
        total
    }

    /// Renders `time,value` CSV lines (for plotting fleet timelines).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,value\n");
        for (t, v) in &self.points {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }
}

/// Per-bin diagnostics of a finished packing.
#[derive(Clone, Debug, PartialEq)]
pub struct BinReport {
    /// Bin id.
    pub bin: crate::packing::BinId,
    /// Number of items ever placed in the bin.
    pub items: usize,
    /// Bin usage time (span of its items) in ticks.
    pub span: i64,
    /// Utilization: time–space demand of the bin's items divided by
    /// `span × capacity` (1.0 = perfectly full whenever open).
    pub utilization: f64,
    /// Idle gap time inside the bin's hull (hull length − span): periods
    /// the bin sat empty between uses (only offline packers produce gaps;
    /// online bins close when empty).
    pub gap_ticks: i64,
}

/// Computes per-bin diagnostics for a packing. Bins with no items are
/// skipped. Useful for spotting fragmentation: many low-utilization bins
/// mean the packer is stranding capacity.
pub fn packing_report(inst: &Instance, packing: &crate::packing::Packing) -> Vec<BinReport> {
    let mut out = Vec::new();
    for (bin, ids) in packing.iter_bins() {
        if ids.is_empty() {
            continue;
        }
        let items: Vec<&crate::item::Item> = ids
            .iter()
            .map(|id| inst.item(*id).expect("packed item exists"))
            .collect();
        let span = crate::interval::span_of(items.iter().map(|r| r.interval()));
        let hull = items
            .iter()
            .map(|r| r.interval())
            .reduce(|a, b| a.hull(&b))
            .expect("nonempty");
        let demand: u128 = items.iter().map(|r| r.demand()).sum();
        let capacity_time = span as u128 * Size::SCALE as u128;
        out.push(BinReport {
            bin,
            items: items.len(),
            span,
            utilization: if capacity_time == 0 {
                1.0
            } else {
                demand as f64 / capacity_time as f64
            },
            gap_ticks: hull.len() - span,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let inst = Instance::from_triples(&[(0.25, 0, 10), (0.5, 5, 25), (0.75, 8, 12)]);
        let s = instance_stats(&inst).unwrap();
        assert_eq!(s.items, 3);
        assert_eq!(s.min_duration, 4);
        assert_eq!(s.max_duration, 20);
        assert_eq!(s.mu, 5.0);
        assert_eq!(s.span, 25);
        assert_eq!(s.peak_concurrency, 3);
        assert!((s.peak_load - 1.5).abs() < 1e-6);
        assert_eq!(s.peak_server_floor, 2);
        assert!(s.mean_load > 0.0 && s.mean_load < s.peak_load);
    }

    #[test]
    fn stats_empty() {
        let inst = Instance::from_items(vec![]).unwrap();
        assert_eq!(instance_stats(&inst), None);
    }

    #[test]
    fn step_series_from_deltas() {
        let s = StepSeries::from_deltas(vec![(0, 1), (5, 1), (5, -1), (10, -1)]);
        // t=5 nets to zero change → merged away.
        assert_eq!(s.points, vec![(0, 1), (10, 0)]);
        assert_eq!(s.value_at(-1), 0);
        assert_eq!(s.value_at(0), 1);
        assert_eq!(s.value_at(7), 1);
        assert_eq!(s.value_at(10), 0);
        assert_eq!(s.max(), 1);
        assert_eq!(s.integral(), 10);
    }

    #[test]
    fn step_series_csv() {
        let s = StepSeries::from_deltas(vec![(2, 3), (4, -3)]);
        assert_eq!(s.to_csv(), "time,value\n2,3\n4,0\n");
    }

    #[test]
    fn packing_report_diagnostics() {
        use crate::packing::Packing;
        use crate::ItemId;
        let inst = Instance::from_triples(&[
            (0.5, 0, 10),   // r0
            (0.5, 0, 10),   // r1: full bin with r0
            (0.25, 20, 30), // r2: reused bin after a gap
        ]);
        let p = Packing::from_bins(vec![vec![ItemId(0), ItemId(1), ItemId(2)]]);
        p.validate(&inst).unwrap();
        let rep = packing_report(&inst, &p);
        assert_eq!(rep.len(), 1);
        let b = &rep[0];
        assert_eq!(b.items, 3);
        assert_eq!(b.span, 20); // [0,10) ∪ [20,30)
        assert_eq!(b.gap_ticks, 10); // idle [10,20)
                                     // demand = (0.5+0.5)·10 + 0.25·10 = 12.5 capacity-ticks over span
                                     // 20 → utilization 0.625.
        assert!((b.utilization - 0.625).abs() < 1e-6);
    }

    #[test]
    fn packing_report_skips_empty_bins() {
        use crate::packing::Packing;
        use crate::ItemId;
        let inst = Instance::from_triples(&[(0.5, 0, 10)]);
        let p = Packing::from_bins(vec![vec![], vec![ItemId(0)]]);
        let rep = packing_report(&inst, &p);
        assert_eq!(rep.len(), 1);
        assert_eq!(rep[0].bin.0, 1);
        assert!((rep[0].utilization - 0.5).abs() < 1e-6);
        assert_eq!(rep[0].gap_ticks, 0);
    }
}
