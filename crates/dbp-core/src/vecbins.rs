//! The indexed open-bin set for **vector** packing.
//!
//! [`VecOpenBins`] is the multi-resource twin of [`crate::OpenBins`]:
//! the same slab + free list, the same `BinId → slot` index, the same
//! two intrusive lists (global opening order and per-tag opening order),
//! and the same lazily-built, incrementally-maintained fit structures —
//! but levels, gaps, and feasibility are per-axis [`SizeVec`]s, and an
//! item fits a bin only when it fits on **every** axis.
//!
//! ## Indexed vector fit queries
//!
//! * [`VecOpenBins::first_fit`] — earliest-opened bin of a tag feasible
//!   on all axes, via a **componentwise-max** tournament tree: each
//!   internal node holds the per-axis maximum gap of its subtree. A
//!   subtree whose max gap is infeasible on *some* axis cannot contain a
//!   feasible leaf, so the query prunes it; a leaf's stored gap vector
//!   is exact, so the leftmost surviving leaf is exactly the bin a
//!   linear opening-order scan would pick. Unlike the scalar tree the
//!   node test is only *necessary* (per-axis maxima may come from
//!   different bins), so the walk is a pruned DFS rather than a single
//!   root-to-leaf path — O(log B) when one axis dominates, degrading
//!   gracefully toward the linear scan on adversarial mixes, never
//!   scanning more than the tree.
//! * [`VecOpenBins::best_fit`] / [`VecOpenBins::worst_fit`] — ranked by
//!   a caller-selected [`Scalarization`] of the level vector, walking a
//!   level-ordered set from the fullest (best) or emptiest (worst) end
//!   and returning the first entry feasible on all axes. Vector
//!   feasibility cannot be range-queried on a scalar key, so these
//!   inspect entries until one fits; the probe count reports exactly how
//!   many.
//!
//! Tie-breaks replicate the linear foils bit for bit: Best Fit resolves
//! equal scalarized levels to the **latest** opened (a linear
//! `max_by_key` keeps the last maximum), Worst Fit to the **earliest**
//! (`min_by_key` keeps the first minimum); `seq` — the per-tag opening
//! sequence number — encodes that order in the set key. At `dims == 1`
//! every scalarization collapses to the scalar level and the predicates
//! coincide with the scalar queries, which the dim-1 differential suite
//! exercises end to end.

use crate::error::DbpError;
use crate::interval::Time;
use crate::item::ItemId;
use crate::packing::BinId;
use crate::sizevec::{Scalarization, SizeVec, MAX_DIMS};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// A resident multi-resource item: what a vector packer can see of the
/// jobs already placed in a bin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VecActiveItem {
    /// The item's id.
    pub id: ItemId,
    /// The item's demand vector.
    pub size: SizeVec,
    /// The item's departure time, if the engine is clairvoyant.
    pub departure: Option<Time>,
}

/// One open bin holding multi-resource items; unit capacity per axis.
#[derive(Clone, Debug)]
pub struct VecOpenBin {
    id: BinId,
    opened_at: Time,
    tag: u64,
    level: SizeVec,
    items: Vec<VecActiveItem>,
}

impl VecOpenBin {
    pub(crate) fn new(id: BinId, opened_at: Time, tag: u64, first: VecActiveItem) -> VecOpenBin {
        VecOpenBin {
            id,
            opened_at,
            tag,
            level: first.size,
            items: vec![first],
        }
    }

    pub(crate) fn push_item(&mut self, active: VecActiveItem, size: SizeVec) -> crate::Result<()> {
        if !self.fits(&size) {
            return Err(DbpError::BadDecision {
                what: format!(
                    "item {} of size {size:?} does not fit bin {:?} (level {:?})",
                    active.id, self.id, self.level
                ),
            });
        }
        self.level = self.level.add(&size);
        self.items.push(active);
        Ok(())
    }

    /// Removes a departing item, returning whether the bin became empty.
    pub(crate) fn remove_item(&mut self, id: ItemId) -> crate::Result<bool> {
        let pos = self
            .items
            .iter()
            .position(|r| r.id == id)
            .ok_or_else(|| DbpError::Internal {
                what: format!("item {id} missing from its bin at departure"),
            })?;
        let removed = self.items.swap_remove(pos);
        self.level = self.level.sub(&removed.size);
        Ok(self.items.is_empty())
    }

    /// The bin id.
    pub fn id(&self) -> BinId {
        self.id
    }

    /// When the bin opened.
    pub fn opened_at(&self) -> Time {
        self.opened_at
    }

    /// The classification tag the bin was opened under.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Current level vector (sum of resident demands, per axis).
    pub fn level(&self) -> SizeVec {
        self.level
    }

    /// Residual gap vector (`1 - level` per axis).
    pub fn gap(&self) -> SizeVec {
        SizeVec::capacity(self.level.dims()).sub(&self.level)
    }

    /// Whether an item of demand `size` fits on **every** axis.
    pub fn fits(&self, size: &SizeVec) -> bool {
        self.level.fits_with(size)
    }

    /// Number of resource axes.
    pub fn dims(&self) -> usize {
        self.level.dims()
    }

    /// Resident items, in placement order modulo departures.
    pub fn items(&self) -> &[VecActiveItem] {
        &self.items
    }
}

/// Per-slot traversal links and index keys (mirrors the scalar slab).
#[derive(Clone, Copy, Debug)]
struct Links {
    prev: u32,
    next: u32,
    tag_prev: u32,
    tag_next: u32,
    /// Per-tag opening sequence number: the fit index's tie-break key.
    seq: u64,
}

/// Head/tail of one tag's opening-order list plus its sequence counter.
#[derive(Clone, Copy, Debug)]
struct TagList {
    head: u32,
    tail: u32,
    next_seq: u64,
}

/// A level-ordered entry: `(scalarized level, per-tag seq, slot)`.
/// Ascending order puts the emptiest bins first; `seq` is unique within
/// a tag so the key is total.
type LevelKey = (u64, u64, u32);

/// The lazily-built fit structures of one tag.
#[derive(Clone, Debug, Default)]
struct FitIndex {
    /// Componentwise-max gap tournament tree (First Fit).
    seg: Option<VecGapTree>,
    /// Level-ordered set under one scalarization (Best/Worst Fit);
    /// rebuilt if a query asks for a different scalarization.
    ordered: Option<(Scalarization, BTreeSet<LevelKey>)>,
}

/// Interior-mutable index state (queries take `&VecOpenBins`).
#[derive(Clone, Debug, Default)]
struct FitState {
    by_tag: HashMap<u64, FitIndex>,
    /// slot → leaf position in its tag's [`VecGapTree`].
    pos: Vec<u32>,
}

/// A componentwise-max gap tournament tree over one tag's opening order.
///
/// Leaf `p` holds the gap **vector** of the `p`-th-opened live bin;
/// internal nodes hold the per-axis maximum over their children — a
/// *necessary* feasibility envelope: if `max_gap_d < size_d` on any axis
/// the subtree holds no feasible bin. Dead leaves hold the zero vector,
/// which no valid demand (axis raw ≥ 1) can satisfy.
#[derive(Clone, Debug)]
struct VecGapTree {
    /// Heap layout: `node[1]` is the root, leaf `p` lives at `node[cap + p]`.
    node: Vec<[u64; MAX_DIMS]>,
    cap: usize,
    /// Leaf position → slab slot; [`NIL`] marks dead positions.
    slot_at: Vec<u32>,
    live: usize,
}

/// Componentwise `a_d ≥ b_d` on every axis (trailing dead axes are 0 on
/// both sides, so they never reject).
#[inline]
fn covers(a: &[u64; MAX_DIMS], b: &[u64; MAX_DIMS]) -> bool {
    a[0] >= b[0] && a[1] >= b[1] && a[2] >= b[2] && a[3] >= b[3]
}

/// Componentwise max.
#[inline]
fn cmax(a: [u64; MAX_DIMS], b: [u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
    [
        a[0].max(b[0]),
        a[1].max(b[1]),
        a[2].max(b[2]),
        a[3].max(b[3]),
    ]
}

const ZVEC: [u64; MAX_DIMS] = [0; MAX_DIMS];

impl VecGapTree {
    fn new() -> VecGapTree {
        VecGapTree {
            node: vec![ZVEC; 2],
            cap: 1,
            slot_at: Vec::new(),
            live: 0,
        }
    }

    /// Appends a live leaf in opening order, returning its position.
    fn append(&mut self, slot: u32, gap: [u64; MAX_DIMS], moved: impl FnMut(u32, u32)) -> u32 {
        if self.slot_at.len() == self.cap {
            self.rebuild(self.cap * 2, moved);
        }
        let p = self.slot_at.len() as u32;
        self.slot_at.push(slot);
        self.live += 1;
        self.set(p, gap);
        p
    }

    /// Updates the gap vector at `pos` and repairs the max envelope upward.
    fn set(&mut self, pos: u32, gap: [u64; MAX_DIMS]) {
        let mut i = self.cap + pos as usize;
        self.node[i] = gap;
        while i > 1 {
            i /= 2;
            let m = cmax(self.node[2 * i], self.node[2 * i + 1]);
            if self.node[i] == m {
                break;
            }
            self.node[i] = m;
        }
    }

    /// Kills the leaf at `pos` (bin closed).
    fn kill(&mut self, pos: u32) {
        self.slot_at[pos as usize] = NIL;
        self.set(pos, ZVEC);
        self.live -= 1;
    }

    /// Whether dead positions outnumber live ones enough to compact.
    fn needs_compact(&self) -> bool {
        self.slot_at.len() >= 64 && self.live * 2 < self.slot_at.len()
    }

    /// Rebuilds with capacity ≥ `min_cap`, dropping dead positions while
    /// preserving relative (opening) order.
    fn rebuild(&mut self, min_cap: usize, mut moved: impl FnMut(u32, u32)) {
        let entries: Vec<(u32, [u64; MAX_DIMS])> = self
            .slot_at
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != NIL)
            .map(|(p, &s)| (s, self.node[self.cap + p]))
            .collect();
        let cap = entries.len().max(min_cap).max(1).next_power_of_two();
        self.node.clear();
        self.node.resize(2 * cap, ZVEC);
        self.cap = cap;
        self.slot_at.clear();
        self.live = entries.len();
        for (p, (slot, gap)) in entries.into_iter().enumerate() {
            self.slot_at.push(slot);
            self.node[cap + p] = gap;
            moved(slot, p as u32);
        }
        for i in (1..cap).rev() {
            self.node[i] = cmax(self.node[2 * i], self.node[2 * i + 1]);
        }
    }

    /// The leftmost (earliest-opened) live leaf whose gap covers `size`
    /// on every axis, together with the number of tree nodes probed.
    ///
    /// Pruned left-first DFS: a node is expanded only if its max
    /// envelope covers `size` (necessary condition); a passing **leaf**
    /// is exact, so the first leaf reached is the leftmost feasible bin.
    fn query(&self, size: &[u64; MAX_DIMS]) -> (Option<u32>, usize) {
        if self.live == 0 {
            return (None, 0);
        }
        let mut probes = 1usize;
        if !covers(&self.node[1], size) {
            return (None, probes);
        }
        // Stack of nodes whose envelope covers `size`; right child pushed
        // first so the left child pops first (leftmost leaf wins).
        let mut stack = vec![1usize];
        while let Some(i) = stack.pop() {
            if i >= self.cap {
                return (Some(self.slot_at[i - self.cap]), probes);
            }
            let (l, r) = (2 * i, 2 * i + 1);
            probes += 2;
            if covers(&self.node[r], size) {
                stack.push(r);
            }
            if covers(&self.node[l], size) {
                stack.push(l);
            }
        }
        (None, probes)
    }

    fn approx_bytes(&self) -> usize {
        self.node.capacity() * std::mem::size_of::<[u64; MAX_DIMS]>()
            + self.slot_at.capacity() * std::mem::size_of::<u32>()
    }
}

/// The set of currently open vector bins, ordered by opening time.
///
/// Vector packers receive `&VecOpenBins` in
/// [`crate::vecstream::VecOnlinePacker::place`]. Iteration, tag lists,
/// and O(1) lookup mirror [`crate::OpenBins`]; the indexed fit queries
/// answer the vector Any-Fit rules against the same tie-break contract
/// as a linear scan.
#[derive(Clone, Debug)]
pub struct VecOpenBins {
    /// Slab payload (cold half).
    bins: Vec<Option<VecOpenBin>>,
    /// Slab links and index keys (hot half).
    links: Vec<Links>,
    free: Vec<u32>,
    index: HashMap<BinId, u32>,
    head: u32,
    tail: u32,
    tags: HashMap<u64, TagList>,
    fit: RefCell<FitState>,
}

impl Default for VecOpenBins {
    fn default() -> Self {
        Self::new()
    }
}

impl VecOpenBins {
    /// An empty open set.
    pub fn new() -> VecOpenBins {
        VecOpenBins {
            bins: Vec::new(),
            links: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            tags: HashMap::new(),
            fit: RefCell::new(FitState::default()),
        }
    }

    /// Number of open bins.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no bin is open.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn bin_at(&self, s: u32) -> &VecOpenBin {
        self.bins[s as usize].as_ref().expect("linked slot")
    }

    /// The bin with this id, if it is open. O(1).
    pub fn get(&self, id: BinId) -> Option<&VecOpenBin> {
        self.index.get(&id).map(|&s| self.bin_at(s))
    }

    /// Whether the bin with this id is open. O(1).
    pub fn contains(&self, id: BinId) -> bool {
        self.index.contains_key(&id)
    }

    /// The earliest-opened bin.
    pub fn first(&self) -> Option<&VecOpenBin> {
        self.iter().next()
    }

    /// The latest-opened bin.
    pub fn last(&self) -> Option<&VecOpenBin> {
        self.iter().next_back()
    }

    /// All open bins in opening order.
    pub fn iter(&self) -> VecIter<'_> {
        VecIter {
            bins: &self.bins,
            links: &self.links,
            front: self.head,
            back: self.tail,
            by_tag: false,
            done: self.head == NIL,
        }
    }

    /// The open bins carrying `tag`, in opening order.
    pub fn iter_tag(&self, tag: u64) -> VecIter<'_> {
        let (head, tail) = self
            .tags
            .get(&tag)
            .map(|t| (t.head, t.tail))
            .unwrap_or((NIL, NIL));
        VecIter {
            bins: &self.bins,
            links: &self.links,
            front: head,
            back: tail,
            by_tag: true,
            done: head == NIL,
        }
    }

    /// The slots of `tag`'s bins in opening order.
    fn tag_slots(&self, tag: u64) -> impl Iterator<Item = u32> + '_ {
        let head = self.tags.get(&tag).map(|t| t.head).unwrap_or(NIL);
        std::iter::successors((head != NIL).then_some(head), move |&s| {
            let n = self.links[s as usize].tag_next;
            (n != NIL).then_some(n)
        })
    }

    // ------------------------------------------------------------------
    // Indexed vector fit queries
    // ------------------------------------------------------------------

    /// Indexed vector First Fit within `tag`: the earliest-opened bin
    /// feasible on **all** axes, or `None`. Returns the decision and the
    /// number of tree nodes probed. `size` must be a valid demand vector.
    pub fn first_fit(&self, tag: u64, size: &SizeVec) -> (Option<BinId>, usize) {
        debug_assert!(
            size.is_valid_item_size(),
            "fit queries require a valid demand"
        );
        let mut st = self.fit.borrow_mut();
        let FitState { by_tag, pos } = &mut *st;
        let entry = by_tag.entry(tag).or_default();
        if entry.seg.is_none() {
            let mut tree = VecGapTree::new();
            for s in self.tag_slots(tag) {
                let p = tree.append(s, self.bin_at(s).gap().raw(), |sl, pp| {
                    pos[sl as usize] = pp
                });
                pos[s as usize] = p;
            }
            entry.seg = Some(tree);
        }
        let (slot, probes) = entry.seg.as_ref().expect("just built").query(&size.raw());
        (slot.map(|s| self.bin_at(s).id()), probes)
    }

    /// Indexed vector Best Fit within `tag`: among bins feasible on all
    /// axes, the one with the **highest** scalarized level, ties to the
    /// latest opened — exactly what a linear scan through
    /// `max_by_key(scalarized level)` keeps. Walks the level-ordered set
    /// from the fullest end until an entry fits; the probe count is the
    /// number of entries inspected.
    pub fn best_fit(
        &self,
        tag: u64,
        size: &SizeVec,
        scal: Scalarization,
    ) -> (Option<BinId>, usize) {
        debug_assert!(
            size.is_valid_item_size(),
            "fit queries require a valid demand"
        );
        let mut st = self.fit.borrow_mut();
        let set = self.ordered_set(&mut st, tag, scal);
        let mut probes = 0;
        for &(_, _, slot) in set.iter().rev() {
            probes += 1;
            if self.bin_at(slot).fits(size) {
                return (Some(self.bin_at(slot).id()), probes);
            }
        }
        (None, probes)
    }

    /// Indexed vector Worst Fit within `tag`: among bins feasible on all
    /// axes, the one with the **lowest** scalarized level, ties to the
    /// earliest opened — exactly what a linear `min_by_key` keeps. Walks
    /// the level-ordered set from the emptiest end until an entry fits.
    pub fn worst_fit(
        &self,
        tag: u64,
        size: &SizeVec,
        scal: Scalarization,
    ) -> (Option<BinId>, usize) {
        debug_assert!(
            size.is_valid_item_size(),
            "fit queries require a valid demand"
        );
        let mut st = self.fit.borrow_mut();
        let set = self.ordered_set(&mut st, tag, scal);
        let mut probes = 0;
        for &(_, _, slot) in set.iter() {
            probes += 1;
            if self.bin_at(slot).fits(size) {
                return (Some(self.bin_at(slot).id()), probes);
            }
        }
        (None, probes)
    }

    /// The level-ordered set of `tag` under `scal`, (re)built on first
    /// use or on a scalarization switch.
    fn ordered_set<'a>(
        &self,
        st: &'a mut FitState,
        tag: u64,
        scal: Scalarization,
    ) -> &'a BTreeSet<LevelKey> {
        let entry = st.by_tag.entry(tag).or_default();
        if entry.ordered.as_ref().map(|(s, _)| *s) != Some(scal) {
            entry.ordered = Some((
                scal,
                self.tag_slots(tag)
                    .map(|s| {
                        let b = self.bin_at(s);
                        (scal.key(&b.level()), self.links[s as usize].seq, s)
                    })
                    .collect(),
            ));
        }
        &entry.ordered.as_ref().expect("just built").1
    }

    // ------------------------------------------------------------------
    // Engine-internal mutation
    // ------------------------------------------------------------------

    /// Adds an item to an open bin, enforcing per-axis capacity. Returns
    /// `None` if the bin is not open; otherwise the level vector after
    /// the push.
    pub(crate) fn push_to(
        &mut self,
        id: BinId,
        active: VecActiveItem,
        size: SizeVec,
    ) -> Option<crate::Result<SizeVec>> {
        let s = *self.index.get(&id)?;
        let bin = self.bins[s as usize].as_mut().expect("indexed slot");
        let old_level = bin.level();
        if let Err(e) = bin.push_item(active, size) {
            return Some(Err(e));
        }
        let (level, gap, tag) = (bin.level(), bin.gap().raw(), bin.tag());
        let seq = self.links[s as usize].seq;
        self.fit_level_changed(tag, s, seq, old_level, level, gap);
        Some(Ok(level))
    }

    /// Removes a departing item from an open bin. Returns `None` if the
    /// bin is not open; otherwise `(became_empty, level_after)`.
    pub(crate) fn remove_from(
        &mut self,
        id: BinId,
        item: ItemId,
    ) -> Option<crate::Result<(bool, SizeVec)>> {
        let s = *self.index.get(&id)?;
        let bin = self.bins[s as usize].as_mut().expect("indexed slot");
        let old_level = bin.level();
        let became_empty = match bin.remove_item(item) {
            Ok(e) => e,
            Err(e) => return Some(Err(e)),
        };
        let (level, gap, tag) = (bin.level(), bin.gap().raw(), bin.tag());
        let seq = self.links[s as usize].seq;
        self.fit_level_changed(tag, s, seq, old_level, level, gap);
        Some(Ok((became_empty, level)))
    }

    /// Propagates a level change into the tag's active fit structures.
    fn fit_level_changed(
        &mut self,
        tag: u64,
        slot: u32,
        seq: u64,
        old_level: SizeVec,
        new_level: SizeVec,
        new_gap: [u64; MAX_DIMS],
    ) {
        let FitState { by_tag, pos } = self.fit.get_mut();
        if by_tag.is_empty() {
            return;
        }
        let Some(entry) = by_tag.get_mut(&tag) else {
            return;
        };
        if let Some(tree) = entry.seg.as_mut() {
            tree.set(pos[slot as usize], new_gap);
        }
        if let Some((scal, set)) = entry.ordered.as_mut() {
            set.remove(&(scal.key(&old_level), seq, slot));
            set.insert((scal.key(&new_level), seq, slot));
        }
    }

    /// Appends a newly opened bin (engine-internal).
    pub(crate) fn insert(&mut self, bin: VecOpenBin) {
        let id = bin.id();
        let tag = bin.tag();
        let gap = bin.gap().raw();
        let level = bin.level();
        debug_assert!(!self.index.contains_key(&id), "bin {id:?} already open");

        let s = match self.free.pop() {
            Some(s) => s,
            None => {
                self.bins.push(None);
                self.links.push(Links {
                    prev: NIL,
                    next: NIL,
                    tag_prev: NIL,
                    tag_next: NIL,
                    seq: 0,
                });
                self.fit.get_mut().pos.push(NIL);
                (self.bins.len() - 1) as u32
            }
        };

        let (tag_prev, seq) = match self.tags.get_mut(&tag) {
            Some(entry) => {
                let old_tail = entry.tail;
                entry.tail = s;
                let seq = entry.next_seq;
                entry.next_seq += 1;
                (old_tail, seq)
            }
            None => {
                self.tags.insert(
                    tag,
                    TagList {
                        head: s,
                        tail: s,
                        next_seq: 1,
                    },
                );
                (NIL, 0)
            }
        };
        if tag_prev != NIL {
            self.links[tag_prev as usize].tag_next = s;
        }

        let prev = self.tail;
        if prev != NIL {
            self.links[prev as usize].next = s;
        } else {
            self.head = s;
        }
        self.tail = s;

        self.links[s as usize] = Links {
            prev,
            next: NIL,
            tag_prev,
            tag_next: NIL,
            seq,
        };
        self.bins[s as usize] = Some(bin);
        self.index.insert(id, s);
        self.fit_on_insert(tag, s, gap, level, seq);
    }

    fn fit_on_insert(
        &mut self,
        tag: u64,
        slot: u32,
        gap: [u64; MAX_DIMS],
        level: SizeVec,
        seq: u64,
    ) {
        let FitState { by_tag, pos } = self.fit.get_mut();
        if by_tag.is_empty() {
            return;
        }
        let Some(entry) = by_tag.get_mut(&tag) else {
            return;
        };
        if let Some(tree) = entry.seg.as_mut() {
            let p = tree.append(slot, gap, |sl, pp| pos[sl as usize] = pp);
            pos[slot as usize] = p;
        }
        if let Some((scal, set)) = entry.ordered.as_mut() {
            set.insert((scal.key(&level), seq, slot));
        }
    }

    /// Removes a closed bin and returns it (engine-internal).
    pub(crate) fn remove(&mut self, id: BinId) -> Option<VecOpenBin> {
        let s = self.index.remove(&id)?;
        let bin = self.bins[s as usize].take().expect("indexed slot");
        let links = self.links[s as usize];

        // Unlink from the global opening-order list.
        if links.prev != NIL {
            self.links[links.prev as usize].next = links.next;
        } else {
            self.head = links.next;
        }
        if links.next != NIL {
            self.links[links.next as usize].prev = links.prev;
        } else {
            self.tail = links.prev;
        }

        // Unlink from the tag list, dropping the tag entry when it empties.
        let tag = bin.tag();
        if links.tag_prev != NIL {
            self.links[links.tag_prev as usize].tag_next = links.tag_next;
        }
        if links.tag_next != NIL {
            self.links[links.tag_next as usize].tag_prev = links.tag_prev;
        }
        let entry = self.tags.get_mut(&tag).expect("open tag entry");
        let mut tag_died = false;
        if entry.head == s && entry.tail == s {
            self.tags.remove(&tag);
            tag_died = true;
        } else if entry.head == s {
            entry.head = links.tag_next;
        } else if entry.tail == s {
            entry.tail = links.tag_prev;
        }

        self.free.push(s);
        self.fit_on_remove(tag, s, bin.level(), links.seq, tag_died);
        Some(bin)
    }

    fn fit_on_remove(&mut self, tag: u64, slot: u32, level: SizeVec, seq: u64, tag_died: bool) {
        let FitState { by_tag, pos } = self.fit.get_mut();
        if by_tag.is_empty() {
            return;
        }
        if tag_died {
            by_tag.remove(&tag);
            return;
        }
        let Some(entry) = by_tag.get_mut(&tag) else {
            return;
        };
        if let Some(tree) = entry.seg.as_mut() {
            tree.kill(pos[slot as usize]);
            if tree.needs_compact() {
                tree.rebuild(0, |sl, pp| pos[sl as usize] = pp);
            }
        }
        if let Some((scal, set)) = entry.ordered.as_mut() {
            set.remove(&(scal.key(&level), seq, slot));
        }
    }

    /// Bytes of heap-adjacent state held per open slot (bench RSS proxy).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let fit = self.fit.borrow();
        let fit_bytes: usize = fit.pos.capacity() * size_of::<u32>()
            + fit
                .by_tag
                .values()
                .map(|e| {
                    e.seg.as_ref().map(VecGapTree::approx_bytes).unwrap_or(0)
                        + e.ordered
                            .as_ref()
                            .map(|(_, s)| s.len() * size_of::<LevelKey>())
                            .unwrap_or(0)
                })
                .sum::<usize>();
        self.bins.capacity() * size_of::<Option<VecOpenBin>>()
            + self.links.capacity() * size_of::<Links>()
            + self.free.capacity() * size_of::<u32>()
            + self.index.capacity() * (size_of::<BinId>() + size_of::<u32>())
            + self.tags.capacity() * (size_of::<u64>() + size_of::<TagList>())
            + fit_bytes
            + self
                .iter()
                .map(|b| std::mem::size_of_val(b.items()))
                .sum::<usize>()
    }

    /// Exhaustively checks every internal invariant, including exact
    /// agreement of every active fit structure with the bins it indexes.
    /// O(everything); for tests and the audit differential, never the
    /// hot path.
    #[doc(hidden)]
    pub fn validate(&self) -> std::result::Result<(), String> {
        let err = |what: String| Err(what);
        if self.bins.len() != self.links.len() {
            return err(format!(
                "SoA skew: {} bins vs {} links",
                self.bins.len(),
                self.links.len()
            ));
        }
        let live: Vec<u32> = (0..self.bins.len() as u32)
            .filter(|&s| self.bins[s as usize].is_some())
            .collect();
        if live.len() != self.index.len() {
            return err(format!(
                "{} live slots but {} index entries",
                live.len(),
                self.index.len()
            ));
        }
        for (&id, &s) in &self.index {
            match self.bins.get(s as usize).and_then(Option::as_ref) {
                Some(b) if b.id() == id => {}
                _ => return err(format!("index maps {id:?} to a bad slot {s}")),
            }
        }
        let mut free_set = std::collections::HashSet::new();
        for &f in &self.free {
            if !free_set.insert(f) {
                return err(format!("slot {f} on the free list twice"));
            }
            if self.bins.get(f as usize).map(Option::is_some) != Some(false) {
                return err(format!("free slot {f} is live or out of range"));
            }
        }
        if free_set.len() + live.len() != self.bins.len() {
            return err("free list and live slots do not partition the slab".into());
        }
        let mut order = Vec::new();
        let mut cur = self.head;
        let mut prev = NIL;
        while cur != NIL {
            if self.bins[cur as usize].is_none() {
                return err(format!("global list visits dead slot {cur}"));
            }
            if self.links[cur as usize].prev != prev {
                return err(format!("slot {cur} has a bad prev link"));
            }
            order.push(cur);
            prev = cur;
            cur = self.links[cur as usize].next;
            if order.len() > self.bins.len() {
                return err("global list cycles".into());
            }
        }
        if self.tail != prev {
            return err("tail does not end the global list".into());
        }
        if order.len() != live.len() {
            return err(format!(
                "global list visits {} of {} live bins",
                order.len(),
                live.len()
            ));
        }
        let rank: HashMap<u32, usize> = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut tagged = 0usize;
        for (&tag, list) in &self.tags {
            let mut cur = list.head;
            let mut prev = NIL;
            let mut last_rank = None;
            let mut last_seq = None;
            while cur != NIL {
                let b = self
                    .bins
                    .get(cur as usize)
                    .and_then(Option::as_ref)
                    .ok_or_else(|| format!("tag {tag} list visits dead slot {cur}"))?;
                if b.tag() != tag {
                    return err(format!("tag {tag} list holds a bin tagged {}", b.tag()));
                }
                if self.links[cur as usize].tag_prev != prev {
                    return err(format!("slot {cur} has a bad tag_prev link"));
                }
                let r = rank[&cur];
                if last_rank.is_some_and(|lr| lr >= r) {
                    return err(format!("tag {tag} list breaks opening order"));
                }
                let seq = self.links[cur as usize].seq;
                if last_seq.is_some_and(|ls| ls >= seq) {
                    return err(format!("tag {tag} sequence numbers not increasing"));
                }
                if seq >= list.next_seq {
                    return err(format!("tag {tag} holds seq {seq} >= next_seq"));
                }
                last_rank = Some(r);
                last_seq = Some(seq);
                tagged += 1;
                prev = cur;
                cur = self.links[cur as usize].tag_next;
                if tagged > live.len() {
                    return err("tag lists cycle".into());
                }
            }
            if list.tail != prev {
                return err(format!("tag {tag} tail does not end its list"));
            }
            if list.head == NIL {
                return err(format!("tag {tag} entry is empty but retained"));
            }
        }
        if tagged != live.len() {
            return err(format!(
                "tag lists cover {tagged} of {} live bins",
                live.len()
            ));
        }
        let fit = self.fit.borrow();
        for (&tag, entry) in &fit.by_tag {
            let slots: Vec<u32> = self.tag_slots(tag).collect();
            if let Some(tree) = entry.seg.as_ref() {
                if tree.live != slots.len() {
                    return err(format!(
                        "tag {tag} tree tracks {} of {} bins",
                        tree.live,
                        slots.len()
                    ));
                }
                let mut last_pos = None;
                for &s in &slots {
                    let p = fit.pos[s as usize];
                    if tree.slot_at.get(p as usize) != Some(&s) {
                        return err(format!("tag {tag} slot {s} lost its tree leaf"));
                    }
                    if tree.node[tree.cap + p as usize] != self.bin_at(s).gap().raw() {
                        return err(format!("tag {tag} slot {s} leaf gap is stale"));
                    }
                    if last_pos.is_some_and(|lp| lp >= p) {
                        return err(format!("tag {tag} tree breaks opening order"));
                    }
                    last_pos = Some(p);
                }
                for (p, &s) in tree.slot_at.iter().enumerate() {
                    if s != NIL && !slots.contains(&s) {
                        return err(format!("tag {tag} tree leaf {p} points at a foreign slot"));
                    }
                }
                for i in 1..tree.cap {
                    if tree.node[i] != cmax(tree.node[2 * i], tree.node[2 * i + 1]) {
                        return err(format!("tag {tag} tree node {i} violates max property"));
                    }
                }
            }
            if let Some((scal, set)) = entry.ordered.as_ref() {
                let expect: BTreeSet<LevelKey> = slots
                    .iter()
                    .map(|&s| {
                        let b = self.bin_at(s);
                        (scal.key(&b.level()), self.links[s as usize].seq, s)
                    })
                    .collect();
                if *set != expect {
                    return err(format!("tag {tag} level-ordered set is stale"));
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a VecOpenBins {
    type Item = &'a VecOpenBin;
    type IntoIter = VecIter<'a>;

    fn into_iter(self) -> VecIter<'a> {
        self.iter()
    }
}

/// Double-ended iterator over open vector bins in opening order.
#[derive(Clone)]
pub struct VecIter<'a> {
    bins: &'a [Option<VecOpenBin>],
    links: &'a [Links],
    front: u32,
    back: u32,
    by_tag: bool,
    done: bool,
}

impl fmt::Debug for VecIter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VecIter")
            .field("front", &self.front)
            .field("back", &self.back)
            .field("by_tag", &self.by_tag)
            .finish()
    }
}

impl<'a> VecIter<'a> {
    fn bin(&self, s: u32) -> &'a VecOpenBin {
        self.bins[s as usize].as_ref().expect("linked slot")
    }
}

impl<'a> Iterator for VecIter<'a> {
    type Item = &'a VecOpenBin;

    fn next(&mut self) -> Option<&'a VecOpenBin> {
        if self.done {
            return None;
        }
        let cur = self.front;
        if cur == self.back {
            self.done = true;
        } else {
            let links = &self.links[cur as usize];
            self.front = if self.by_tag {
                links.tag_next
            } else {
                links.next
            };
        }
        Some(self.bin(cur))
    }
}

impl<'a> DoubleEndedIterator for VecIter<'a> {
    fn next_back(&mut self) -> Option<&'a VecOpenBin> {
        if self.done {
            return None;
        }
        let cur = self.back;
        if cur == self.front {
            self.done = true;
        } else {
            let links = &self.links[cur as usize];
            self.back = if self.by_tag {
                links.tag_prev
            } else {
                links.prev
            };
        }
        Some(self.bin(cur))
    }
}

impl std::iter::FusedIterator for VecIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(fracs: &[f64]) -> SizeVec {
        SizeVec::from_f64s(fracs)
    }

    fn bin_with(id: u32, tag: u64, level: &[f64]) -> VecOpenBin {
        VecOpenBin::new(
            BinId(id),
            id as i64,
            tag,
            VecActiveItem {
                id: ItemId(id),
                size: sv(level),
                departure: None,
            },
        )
    }

    fn ids(it: impl Iterator<Item = u32>) -> Vec<u32> {
        it.collect()
    }

    fn linear_first(open: &VecOpenBins, tag: u64, size: &SizeVec) -> Option<BinId> {
        open.iter_tag(tag).find(|b| b.fits(size)).map(|b| b.id())
    }
    fn linear_best(
        open: &VecOpenBins,
        tag: u64,
        size: &SizeVec,
        scal: Scalarization,
    ) -> Option<BinId> {
        open.iter_tag(tag)
            .filter(|b| b.fits(size))
            .max_by_key(|b| scal.key(&b.level()))
            .map(|b| b.id())
    }
    fn linear_worst(
        open: &VecOpenBins,
        tag: u64,
        size: &SizeVec,
        scal: Scalarization,
    ) -> Option<BinId> {
        open.iter_tag(tag)
            .filter(|b| b.fits(size))
            .min_by_key(|b| scal.key(&b.level()))
            .map(|b| b.id())
    }

    #[test]
    fn opening_order_and_tags_mirror_the_scalar_slab() {
        let mut open = VecOpenBins::new();
        for i in 0..6 {
            open.insert(bin_with(i, i as u64 % 2, &[0.25, 0.25]));
        }
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), vec![0, 2, 4]);
        open.remove(BinId(0)).unwrap();
        open.remove(BinId(5)).unwrap();
        open.insert(bin_with(6, 0, &[0.25, 0.25]));
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![1, 2, 3, 4, 6]);
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), vec![2, 4, 6]);
        open.validate().unwrap();
    }

    #[test]
    fn feasibility_requires_every_axis() {
        let mut open = VecOpenBins::new();
        // Bin 0 has room on axis 0 only; bin 1 has room on both.
        open.insert(bin_with(0, 0, &[0.1, 0.9]));
        open.insert(bin_with(1, 0, &[0.5, 0.5]));
        let need = sv(&[0.3, 0.3]);
        assert_eq!(open.first_fit(0, &need).0, Some(BinId(1)));
        assert_eq!(open.first_fit(0, &need).0, linear_first(&open, 0, &need));
        // On axis 0 alone, bin 0 would win — the scalar shortcut is wrong.
        let axis0_only = sv(&[0.3, 0.05]);
        assert_eq!(open.first_fit(0, &axis0_only).0, Some(BinId(0)));
        open.validate().unwrap();
    }

    #[test]
    fn indexed_queries_match_linear_scans_with_ties() {
        let mut open = VecOpenBins::new();
        let levels: &[&[f64]] = &[
            &[0.25, 0.5],
            &[0.5, 0.25],
            &[0.25, 0.5],
            &[0.75, 0.2],
            &[0.5, 0.25],
        ];
        for (i, lvl) in levels.iter().enumerate() {
            open.insert(bin_with(i as u32, 0, lvl));
        }
        for scal in [Scalarization::Sum, Scalarization::MaxAxis] {
            for size in [
                &[0.1, 0.1][..],
                &[0.26, 0.4],
                &[0.5, 0.5],
                &[0.74, 0.1],
                &[0.9, 0.9],
            ] {
                let s = sv(size);
                assert_eq!(
                    open.first_fit(0, &s).0,
                    linear_first(&open, 0, &s),
                    "ff {size:?}"
                );
                assert_eq!(
                    open.best_fit(0, &s, scal).0,
                    linear_best(&open, 0, &s, scal),
                    "bf {size:?} {scal:?}"
                );
                assert_eq!(
                    open.worst_fit(0, &s, scal).0,
                    linear_worst(&open, 0, &s, scal),
                    "wf {size:?} {scal:?}"
                );
            }
        }
        // Sum-scalarized ties: bins 0 and 2 at sum 0.75, bins 1 and 4 too.
        // Best keeps the LATEST of the fullest feasible; worst the EARLIEST.
        let s = sv(&[0.2, 0.2]);
        assert_eq!(
            open.best_fit(0, &s, Scalarization::Sum).0,
            linear_best(&open, 0, &s, Scalarization::Sum)
        );
        assert_eq!(
            open.worst_fit(0, &s, Scalarization::Sum).0,
            Some(BinId(0)),
            "worst-fit ties resolve earliest"
        );
        open.validate().unwrap();
    }

    #[test]
    fn best_fit_skips_infeasible_fuller_bins() {
        let mut open = VecOpenBins::new();
        // Fullest by sum, but axis 1 is nearly exhausted.
        open.insert(bin_with(0, 0, &[0.2, 0.95]));
        open.insert(bin_with(1, 0, &[0.5, 0.5]));
        let s = sv(&[0.2, 0.2]);
        let (hit, probes) = open.best_fit(0, &s, Scalarization::Sum);
        assert_eq!(hit, Some(BinId(1)));
        assert_eq!(probes, 2, "walked past the infeasible fuller bin");
        assert_eq!(hit, linear_best(&open, 0, &s, Scalarization::Sum));
        open.validate().unwrap();
    }

    #[test]
    fn worst_fit_cannot_use_the_scalar_shortcut() {
        let mut open = VecOpenBins::new();
        // Emptiest by sum, but infeasible on axis 1; a fuller bin fits.
        open.insert(bin_with(0, 0, &[0.05, 0.95]));
        open.insert(bin_with(1, 0, &[0.6, 0.3]));
        let s = sv(&[0.2, 0.2]);
        assert_eq!(open.worst_fit(0, &s, Scalarization::Sum).0, Some(BinId(1)));
        assert_eq!(
            open.worst_fit(0, &s, Scalarization::Sum).0,
            linear_worst(&open, 0, &s, Scalarization::Sum)
        );
        open.validate().unwrap();
    }

    #[test]
    fn queries_track_mutation_slot_reuse_and_scal_switches() {
        let mut open = VecOpenBins::new();
        for i in 0..8 {
            open.insert(bin_with(i, 7, &[0.3, 0.2]));
        }
        let s = sv(&[0.5, 0.5]);
        assert_eq!(open.first_fit(7, &s).0, Some(BinId(0)));
        assert_eq!(open.best_fit(7, &s, Scalarization::Sum).0, Some(BinId(7)));
        open.push_to(
            BinId(2),
            VecActiveItem {
                id: ItemId(100),
                size: sv(&[0.4, 0.1]),
                departure: None,
            },
            sv(&[0.4, 0.1]),
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            open.best_fit(7, &sv(&[0.3, 0.3]), Scalarization::Sum).0,
            Some(BinId(2))
        );
        // Switching scalarization rebuilds the set and stays consistent.
        assert_eq!(
            open.best_fit(7, &sv(&[0.3, 0.3]), Scalarization::MaxAxis).0,
            linear_best(&open, 7, &sv(&[0.3, 0.3]), Scalarization::MaxAxis)
        );
        open.validate().unwrap();
        open.remove(BinId(0)).unwrap();
        open.remove(BinId(2)).unwrap();
        open.insert(bin_with(20, 7, &[0.9, 0.05]));
        assert_eq!(
            open.first_fit(7, &sv(&[0.65, 0.1])).0,
            linear_first(&open, 7, &sv(&[0.65, 0.1]))
        );
        open.remove_from(BinId(20), ItemId(20)).unwrap().unwrap();
        assert_eq!(
            open.best_fit(7, &sv(&[0.05, 0.05]), Scalarization::MaxAxis)
                .0,
            linear_best(&open, 7, &sv(&[0.05, 0.05]), Scalarization::MaxAxis)
        );
        open.validate().unwrap();
    }

    #[test]
    fn empty_and_missing_tags_report_zero_probes() {
        let open = VecOpenBins::new();
        let s = sv(&[0.5, 0.5]);
        assert_eq!(open.first_fit(3, &s), (None, 0));
        assert_eq!(open.best_fit(3, &s, Scalarization::Sum), (None, 0));
        assert_eq!(open.worst_fit(3, &s, Scalarization::Sum), (None, 0));
        open.validate().unwrap();
    }

    #[test]
    fn tree_prunes_and_compacts_preserving_order() {
        let mut open = VecOpenBins::new();
        for i in 0..256 {
            open.insert(bin_with(i, 0, &[0.6, 0.6]));
        }
        let s = sv(&[0.3, 0.3]);
        assert_eq!(open.first_fit(0, &s).0, Some(BinId(0)));
        for i in (0..256).filter(|i| i % 3 != 1) {
            open.remove(BinId(i)).unwrap();
        }
        open.validate().unwrap();
        assert_eq!(open.first_fit(0, &s).0, linear_first(&open, 0, &s));
        assert_eq!(open.first_fit(0, &s).0, Some(BinId(1)));
        open.insert(bin_with(999, 0, &[0.6, 0.6]));
        assert_eq!(open.first_fit(0, &s).0, Some(BinId(1)));
        open.validate().unwrap();
        // An infeasible query is rejected at the root in one probe.
        let (hit, probes) = open.first_fit(0, &sv(&[0.9, 0.9]));
        assert_eq!(hit, None);
        assert_eq!(probes, 1);
    }

    #[test]
    fn probe_counts_stay_near_logarithmic_on_uniform_fleets() {
        let mut open = VecOpenBins::new();
        for i in 0..1000 {
            open.insert(bin_with(i, 0, &[0.999, 0.999]));
        }
        open.insert(bin_with(2000, 0, &[0.25, 0.25]));
        let (hit, probes) = open.first_fit(0, &sv(&[0.5, 0.5]));
        assert_eq!(hit, Some(BinId(2000)));
        // One root-to-leaf pruned path: every full subtree is rejected at
        // its envelope, so probes stay O(log B) here.
        assert!(probes <= 40, "{probes} probes for 1001 bins");
        open.validate().unwrap();
    }

    #[test]
    fn push_and_remove_report_missing_bins_and_overflow() {
        let mut open = VecOpenBins::new();
        open.insert(bin_with(1, 0, &[0.5, 0.5]));
        let item = VecActiveItem {
            id: ItemId(5),
            size: sv(&[0.5, 0.5]),
            departure: None,
        };
        assert!(open.push_to(BinId(9), item, sv(&[0.5, 0.5])).is_none());
        assert!(open.remove_from(BinId(9), ItemId(5)).is_none());
        let over = open.push_to(
            BinId(1),
            VecActiveItem {
                id: ItemId(6),
                size: sv(&[0.2, 0.6]),
                departure: None,
            },
            sv(&[0.2, 0.6]),
        );
        assert!(matches!(over, Some(Err(DbpError::BadDecision { .. }))));
        open.validate().unwrap();
        // Scalar embedding: a dim-1 fleet behaves like the scalar set.
        let mut one = VecOpenBins::new();
        one.insert(bin_with(0, 0, &[0.25]));
        one.insert(bin_with(1, 0, &[0.5]));
        assert_eq!(one.first_fit(0, &sv(&[0.7])).0, Some(BinId(0)));
        assert_eq!(
            one.best_fit(0, &sv(&[0.5]), Scalarization::Sum).0,
            Some(BinId(1))
        );
        one.validate().unwrap();
    }

    #[test]
    fn big_checked_size_of_items_is_nonzero() {
        let mut open = VecOpenBins::new();
        open.insert(bin_with(0, 0, &[0.5, 0.5]));
        assert!(open.approx_bytes() > 0);
    }
}
