//! Fixed-dimension vector sizes for multi-resource (vector) bin packing.
//!
//! The paper's §6 future work — and the Murhekar et al. 2023 dynamic
//! *vector* bin packing line — generalizes items to a demand **vector**
//! (CPU, memory, GPU, …): a bin has unit capacity on every axis and an
//! item fits iff it fits on *all* axes simultaneously. [`SizeVec`] is the
//! exact fixed-point vector twin of [`Size`]: up to [`MAX_DIMS`] axes,
//! each a [`Size`] (so all the exactness guarantees of the scalar type —
//! dyadic rationals, overflow-checked sums, exact capacity comparison —
//! hold per axis).
//!
//! The dimension count is part of the value (`dims`), and every
//! operation insists operands agree on it. Unused trailing axes are
//! forced to [`Size::ZERO`] so derived equality and hashing are
//! dimension-faithful.
//!
//! At `dims == 1` the vector path is **bit-identical** to the scalar
//! path: one axis, the same raw `u64` arithmetic, the same feasibility
//! predicate — which is what lets the differential suite prove the
//! vector streaming engine equal to the scalar [`crate::StreamingSession`]
//! on lifted instances.

use crate::error::DbpError;
use crate::instance::Instance;
use crate::interval::{Interval, Time};
use crate::item::{Item, ItemId};
use crate::packing::Packing;
use crate::size::Size;
use std::fmt;

/// Maximum number of resource axes a [`SizeVec`] can carry.
///
/// Four covers the cloud-trace shapes this repo targets (CPU, memory,
/// GPU, bandwidth) while keeping the value `Copy` and cache-resident —
/// the open-bin fit index stores one gap vector per tree node.
pub const MAX_DIMS: usize = 4;

/// A fixed-dimension vector of exact fixed-point sizes.
///
/// `dims` axes are live (`1 ..= MAX_DIMS`); trailing axes are always
/// [`Size::ZERO`], so derived `Eq`/`Hash` see only the live prefix plus
/// the dimension count.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeVec {
    dims: u8,
    axes: [Size; MAX_DIMS],
}

impl SizeVec {
    /// Builds a vector from per-axis sizes. Errors unless
    /// `1 <= axes.len() <= MAX_DIMS`.
    pub fn try_new(axes: &[Size]) -> Result<SizeVec, DbpError> {
        if axes.is_empty() || axes.len() > MAX_DIMS {
            return Err(DbpError::InvalidParameter {
                what: format!("size vector needs 1..={MAX_DIMS} axes, got {}", axes.len()),
            });
        }
        let mut v = [Size::ZERO; MAX_DIMS];
        v[..axes.len()].copy_from_slice(axes);
        Ok(SizeVec {
            dims: axes.len() as u8,
            axes: v,
        })
    }

    /// Builds a vector from per-axis sizes, panicking on a bad axis count.
    #[track_caller]
    pub fn new(axes: &[Size]) -> SizeVec {
        SizeVec::try_new(axes).expect("invalid size vector")
    }

    /// A `dims`-dimensional vector with every axis equal to `s`.
    #[track_caller]
    pub fn splat(dims: usize, s: Size) -> SizeVec {
        assert!(
            (1..=MAX_DIMS).contains(&dims),
            "size vector needs 1..={MAX_DIMS} axes"
        );
        let mut v = [Size::ZERO; MAX_DIMS];
        v[..dims].fill(s);
        SizeVec {
            dims: dims as u8,
            axes: v,
        }
    }

    /// The 1-dimensional vector holding the scalar `s` — the embedding
    /// under which the vector stack is bit-identical to the scalar one.
    pub fn scalar(s: Size) -> SizeVec {
        SizeVec::splat(1, s)
    }

    /// Builds a vector from per-axis capacity fractions (rounding each
    /// like [`Size::from_f64`]).
    #[track_caller]
    pub fn from_f64s(fracs: &[f64]) -> SizeVec {
        let axes: Vec<Size> = fracs.iter().map(|&f| Size::from_f64(f)).collect();
        SizeVec::new(&axes)
    }

    /// Unit capacity on every one of `dims` axes.
    #[track_caller]
    pub fn capacity(dims: usize) -> SizeVec {
        SizeVec::splat(dims, Size::CAPACITY)
    }

    /// The all-zero vector of `dims` axes (a bin level, not an item size).
    #[track_caller]
    pub fn zero(dims: usize) -> SizeVec {
        SizeVec::splat(dims, Size::ZERO)
    }

    /// Number of live axes.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// The size on axis `d` (`d < dims`).
    #[inline]
    pub fn axis(&self, d: usize) -> Size {
        debug_assert!(d < self.dims());
        self.axes[d]
    }

    /// The live axes as a slice.
    #[inline]
    pub fn axes(&self) -> &[Size] {
        &self.axes[..self.dims()]
    }

    /// The raw fixed-point value of every axis, zero-padded to
    /// [`MAX_DIMS`] — the key shape the vector fit index stores.
    #[inline]
    pub fn raw(&self) -> [u64; MAX_DIMS] {
        [
            self.axes[0].raw(),
            self.axes[1].raw(),
            self.axes[2].raw(),
            self.axes[3].raw(),
        ]
    }

    /// Whether every axis is a valid item size (`0 < s_d ≤ 1`). A job
    /// with no demand on some resource declares [`Size::EPSILON`] there,
    /// matching the all-positive convention of
    /// `dbp_multidim::MultiItem`.
    #[inline]
    pub fn is_valid_item_size(&self) -> bool {
        self.axes().iter().all(|s| s.is_valid_item_size())
    }

    /// Componentwise `self_d + rhs_d ≤ 1` on every axis: whether an item
    /// of size `rhs` fits on top of level `self`. This is *the* vector
    /// feasibility predicate — all axes must agree.
    #[inline]
    pub fn fits_with(&self, rhs: &SizeVec) -> bool {
        debug_assert_eq!(self.dims, rhs.dims, "dimension mismatch");
        self.axes()
            .iter()
            .zip(rhs.axes())
            .all(|(l, s)| *l + *s <= Size::CAPACITY)
    }

    /// Componentwise `self_d ≤ rhs_d` on every axis.
    #[inline]
    pub fn le(&self, rhs: &SizeVec) -> bool {
        debug_assert_eq!(self.dims, rhs.dims, "dimension mismatch");
        self.axes().iter().zip(rhs.axes()).all(|(a, b)| a <= b)
    }

    /// Componentwise sum (checked per axis, like scalar [`Size`] `+`).
    #[track_caller]
    pub fn add(&self, rhs: &SizeVec) -> SizeVec {
        assert_eq!(self.dims, rhs.dims, "dimension mismatch");
        let mut out = *self;
        for d in 0..self.dims() {
            out.axes[d] = self.axes[d] + rhs.axes[d];
        }
        out
    }

    /// Componentwise difference (checked per axis).
    #[track_caller]
    pub fn sub(&self, rhs: &SizeVec) -> SizeVec {
        assert_eq!(self.dims, rhs.dims, "dimension mismatch");
        let mut out = *self;
        for d in 0..self.dims() {
            out.axes[d] = self.axes[d] - rhs.axes[d];
        }
        out
    }

    /// Sum of raw axis values (`Σ_d s_d` in fixed-point units). Fits u64:
    /// at most `MAX_DIMS · 2²⁴ · (open levels)` stays far below 2⁶⁴ for
    /// any valid bin state.
    #[inline]
    pub fn sum_raw(&self) -> u64 {
        self.axes().iter().map(|s| s.raw()).sum()
    }

    /// Largest raw axis value (`max_d s_d` in fixed-point units).
    #[inline]
    pub fn max_raw(&self) -> u64 {
        self.axes().iter().map(|s| s.raw()).max().unwrap_or(0)
    }

    /// Dot product with another vector in raw units, widened to `u128`
    /// (the Murhekar et al. dot-product placement score).
    #[inline]
    pub fn dot_raw(&self, rhs: &SizeVec) -> u128 {
        debug_assert_eq!(self.dims, rhs.dims, "dimension mismatch");
        self.axes()
            .iter()
            .zip(rhs.axes())
            .map(|(a, b)| a.raw() as u128 * b.raw() as u128)
            .sum()
    }
}

impl fmt::Debug for SizeVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SizeVec[")?;
        for (d, s) in self.axes().iter().enumerate() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.6}", s.as_f64())?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for SizeVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// How a vector residual/level is collapsed to one ordering key for the
/// Best/Worst Fit rules (which need a total order the multi-axis
/// feasibility predicate cannot supply by itself).
///
/// The scalarization only drives *ranking among feasible bins*;
/// feasibility itself is always the all-axes predicate. At `dims == 1`
/// every scalarization reduces to the scalar level, so the vector
/// Best/Worst Fit coincide with the scalar rules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scalarization {
    /// Sum of axis levels `Σ_d level_d` (the default; L1 fullness).
    #[default]
    Sum,
    /// Largest axis level `max_d level_d` (L∞ fullness).
    MaxAxis,
}

impl Scalarization {
    /// The ordering key of a level vector under this scalarization.
    #[inline]
    pub fn key(&self, v: &SizeVec) -> u64 {
        match self {
            Scalarization::Sum => v.sum_raw(),
            Scalarization::MaxAxis => v.max_raw(),
        }
    }

    /// Short stable name used in packer names and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            Scalarization::Sum => "sum",
            Scalarization::MaxAxis => "max",
        }
    }
}

/// A multi-resource job: a demand vector active over `[arrival,
/// departure)`. The vector twin of [`Item`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecItem {
    id: ItemId,
    size: SizeVec,
    interval: Interval,
}

impl VecItem {
    /// Constructs an item, panicking on an invalid demand vector or
    /// interval. Use [`VecItem::try_new`] for untrusted input.
    #[track_caller]
    pub fn new(id: u32, size: SizeVec, arrival: Time, departure: Time) -> VecItem {
        VecItem::try_new(id, size, arrival, departure).expect("invalid vector item")
    }

    /// Fallible construction: every axis must lie in `(0, 1]` and
    /// `arrival < departure`.
    pub fn try_new(
        id: u32,
        size: SizeVec,
        arrival: Time,
        departure: Time,
    ) -> Result<VecItem, DbpError> {
        if !size.is_valid_item_size() {
            return Err(DbpError::InvalidSize {
                what: format!("item {id} has demand {size:?} with an axis outside (0, 1]"),
            });
        }
        Ok(VecItem {
            id: ItemId(id),
            size,
            interval: Interval::new(arrival, departure)?,
        })
    }

    /// Lifts a scalar [`Item`] to `dims` axes by replicating its size —
    /// the embedding used by the dim-1 equivalence proofs and the CLI's
    /// `--dims` plumbing.
    #[track_caller]
    pub fn lift(item: &Item, dims: usize) -> VecItem {
        VecItem {
            id: item.id(),
            size: SizeVec::splat(dims, item.size()),
            interval: item.interval(),
        }
    }

    /// The item id.
    #[inline]
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The demand vector.
    #[inline]
    pub fn size(&self) -> SizeVec {
        self.size
    }

    /// The active interval.
    #[inline]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Arrival time.
    #[inline]
    pub fn arrival(&self) -> Time {
        self.interval.start()
    }

    /// Departure time.
    #[inline]
    pub fn departure(&self) -> Time {
        self.interval.end()
    }

    /// Duration in ticks.
    #[inline]
    pub fn duration(&self) -> i64 {
        self.interval.len()
    }
}

impl fmt::Debug for VecItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VecItem({} {:?} @[{}, {}))",
            self.id,
            self.size,
            self.arrival(),
            self.departure()
        )
    }
}

/// A whole vector-packing instance: consistent dimensionality, unique
/// ids, items sorted by `(arrival, id)` — the same canonical order as
/// [`Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VecInstance {
    dims: u8,
    items: Vec<VecItem>,
}

impl VecInstance {
    /// Builds an instance, validating dimension consistency and id
    /// uniqueness, and sorting into arrival order.
    pub fn from_items(items: Vec<VecItem>) -> Result<VecInstance, DbpError> {
        let dims = items.first().map(|r| r.size.dims()).unwrap_or(1);
        let mut items = items;
        for r in &items {
            if r.size.dims() != dims {
                return Err(DbpError::InvalidParameter {
                    what: format!(
                        "item {} has {} axes in a {dims}-dimensional instance",
                        r.id(),
                        r.size.dims()
                    ),
                });
            }
        }
        items.sort_by_key(|r| (r.arrival(), r.id()));
        for w in items.windows(2) {
            if w[0].id() == w[1].id() {
                return Err(DbpError::DuplicateItemId { id: w[0].id().0 });
            }
        }
        let mut by_id: Vec<u32> = items.iter().map(|r| r.id().0).collect();
        by_id.sort_unstable();
        for w in by_id.windows(2) {
            if w[0] == w[1] {
                return Err(DbpError::DuplicateItemId { id: w[0] });
            }
        }
        Ok(VecInstance {
            dims: dims as u8,
            items,
        })
    }

    /// Lifts a scalar [`Instance`] to `dims` axes by replicating every
    /// item's size on each axis. A dim-1 lift is the identity embedding.
    #[track_caller]
    pub fn lift(inst: &Instance, dims: usize) -> VecInstance {
        VecInstance {
            dims: dims as u8,
            items: inst
                .items()
                .iter()
                .map(|r| VecItem::lift(r, dims))
                .collect(),
        }
    }

    /// Number of resource axes.
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Items in arrival order.
    pub fn items(&self) -> &[VecItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the instance holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Max/min duration ratio `μ`, if non-empty.
    pub fn mu(&self) -> Option<f64> {
        let min = self.items.iter().map(|r| r.duration()).min()?;
        let max = self.items.iter().map(|r| r.duration()).max()?;
        Some(max as f64 / min as f64)
    }

    /// Minimum item duration `Δ`, if non-empty.
    pub fn min_duration(&self) -> Option<i64> {
        self.items.iter().map(|r| r.duration()).min()
    }

    /// The max-axis Proposition 3 bound: `max_d ∫ ⌈S_d(t)⌉ dt`, where
    /// `S_d(t)` is the total axis-`d` demand active at `t`. Any valid
    /// vector packing needs at least `⌈S_d(t)⌉` bins at time `t` for
    /// every axis `d`, so its usage is at least this. At `dims == 1`
    /// this is exactly the scalar `lower_bounds(..).lb3`.
    pub fn vector_lower_bound(&self) -> u128 {
        let mut best: u128 = 0;
        for d in 0..self.dims() {
            let mut events: Vec<(Time, i128)> = Vec::with_capacity(self.items.len() * 2);
            for r in &self.items {
                events.push((r.arrival(), r.size.axis(d).raw() as i128));
                events.push((r.departure(), -(r.size.axis(d).raw() as i128)));
            }
            events.sort_unstable_by_key(|e| e.0);
            let mut lb: u128 = 0;
            let mut level: i128 = 0;
            let mut i = 0;
            while i < events.len() {
                let t = events[i].0;
                while i < events.len() && events[i].0 == t {
                    level += events[i].1;
                    i += 1;
                }
                if i < events.len() && level > 0 {
                    let len = (events[i].0 - t) as u128;
                    lb += (level as u128).div_ceil(Size::SCALE as u128) * len;
                }
            }
            best = best.max(lb);
        }
        best
    }

    /// Validates a [`Packing`] of this instance: every item placed
    /// exactly once, and every bin within capacity **on every axis** at
    /// every instant (sweep over member arrival times, which is where
    /// per-bin levels peak). The per-axis generalization of
    /// [`Packing::validate`].
    pub fn validate_packing(&self, packing: &Packing) -> Result<(), DbpError> {
        let mut seen = std::collections::HashSet::new();
        let by_id: std::collections::HashMap<ItemId, &VecItem> =
            self.items.iter().map(|r| (r.id(), r)).collect();
        let mut placed = 0usize;
        for (bin, members) in packing.iter_bins() {
            let items: Vec<&VecItem> = members
                .iter()
                .map(|id| {
                    by_id
                        .get(id)
                        .copied()
                        .ok_or_else(|| DbpError::PackingCoverage {
                            what: format!("bin {bin:?} holds unknown item {id}"),
                        })
                })
                .collect::<Result<_, _>>()?;
            for id in members {
                if !seen.insert(*id) {
                    return Err(DbpError::PackingCoverage {
                        what: format!("item {id} placed more than once"),
                    });
                }
                placed += 1;
            }
            let mut times: Vec<Time> = items.iter().map(|r| r.arrival()).collect();
            times.sort_unstable();
            times.dedup();
            for t in times {
                for d in 0..self.dims() {
                    let level: u64 = items
                        .iter()
                        .filter(|r| r.interval().contains(t))
                        .map(|r| r.size.axis(d).raw())
                        .sum();
                    if level > Size::SCALE {
                        return Err(DbpError::CapacityExceeded {
                            bin: bin.0 as usize,
                            at: t,
                            level: level as f64 / Size::SCALE as f64,
                        });
                    }
                }
            }
        }
        if placed != self.items.len() {
            return Err(DbpError::PackingCoverage {
                what: format!("{placed} of {} items placed", self.items.len()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(fracs: &[f64]) -> SizeVec {
        SizeVec::from_f64s(fracs)
    }

    #[test]
    fn dims_are_validated_and_preserved() {
        assert!(SizeVec::try_new(&[]).is_err());
        assert!(SizeVec::try_new(&[Size::HALF; 5]).is_err());
        let v = sv(&[0.25, 0.5, 0.75]);
        assert_eq!(v.dims(), 3);
        assert_eq!(v.axis(1), Size::HALF);
        assert_eq!(v.axes().len(), 3);
    }

    #[test]
    fn equality_sees_dims() {
        // Same live prefix, different dimensionality: not equal.
        assert_ne!(SizeVec::splat(1, Size::HALF), SizeVec::splat(2, Size::HALF));
        assert_eq!(sv(&[0.5, 0.25]), sv(&[0.5, 0.25]));
    }

    #[test]
    fn feasibility_needs_all_axes() {
        let level = sv(&[0.5, 0.9]);
        assert!(level.fits_with(&sv(&[0.5, 0.1])));
        assert!(!level.fits_with(&sv(&[0.1, 0.2])), "axis 1 overflows");
        let full = level.add(&sv(&[0.5, 0.1]));
        assert_eq!(full, SizeVec::capacity(2));
        assert_eq!(full.sub(&sv(&[0.5, 0.1])), level);
    }

    #[test]
    fn scalarizations_reduce_to_scalar_at_dim_1() {
        let v = SizeVec::scalar(Size::from_f64(0.3));
        assert_eq!(Scalarization::Sum.key(&v), Size::from_f64(0.3).raw());
        assert_eq!(Scalarization::MaxAxis.key(&v), Size::from_f64(0.3).raw());
    }

    #[test]
    fn scalarization_keys() {
        let v = sv(&[0.25, 0.5]);
        assert_eq!(
            Scalarization::Sum.key(&v),
            v.axis(0).raw() + v.axis(1).raw()
        );
        assert_eq!(Scalarization::MaxAxis.key(&v), Size::HALF.raw());
    }

    #[test]
    fn dot_product_is_exact() {
        let a = sv(&[0.5, 0.25]);
        let b = sv(&[0.25, 1.0]);
        let expect = a.axis(0).raw() as u128 * b.axis(0).raw() as u128
            + a.axis(1).raw() as u128 * b.axis(1).raw() as u128;
        assert_eq!(a.dot_raw(&b), expect);
    }

    #[test]
    fn vec_item_validation() {
        assert!(VecItem::try_new(0, sv(&[0.5, 0.5]), 0, 10).is_ok());
        let zero_axis = SizeVec::new(&[Size::HALF, Size::ZERO]);
        assert!(matches!(
            VecItem::try_new(1, zero_axis, 0, 10),
            Err(DbpError::InvalidSize { .. })
        ));
        assert!(matches!(
            VecItem::try_new(2, sv(&[0.5]), 10, 10),
            Err(DbpError::EmptyInterval { .. })
        ));
    }

    #[test]
    fn instance_rejects_mixed_dims_and_duplicate_ids() {
        let a = VecItem::new(0, sv(&[0.5, 0.5]), 0, 10);
        let b = VecItem::new(1, sv(&[0.5]), 0, 10);
        assert!(matches!(
            VecInstance::from_items(vec![a, b]),
            Err(DbpError::InvalidParameter { .. })
        ));
        let c = VecItem::new(0, sv(&[0.5, 0.5]), 5, 15);
        assert!(matches!(
            VecInstance::from_items(vec![a, c]),
            Err(DbpError::DuplicateItemId { id: 0 })
        ));
    }

    #[test]
    fn instance_sorts_by_arrival_then_id() {
        let inst = VecInstance::from_items(vec![
            VecItem::new(2, sv(&[0.1]), 5, 10),
            VecItem::new(1, sv(&[0.1]), 5, 12),
            VecItem::new(0, sv(&[0.1]), 3, 10),
        ])
        .unwrap();
        let ids: Vec<u32> = inst.items().iter().map(|r| r.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn lift_replicates_scalar_sizes() {
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.25, 2, 8)]);
        let lifted = VecInstance::lift(&inst, 3);
        assert_eq!(lifted.dims(), 3);
        for (v, s) in lifted.items().iter().zip(inst.items()) {
            assert_eq!(v.id(), s.id());
            assert_eq!(v.size(), SizeVec::splat(3, s.size()));
            assert_eq!(v.interval(), s.interval());
        }
    }

    #[test]
    fn vector_lower_bound_takes_max_axis() {
        // Axis 0 needs 1 bin over [0,10); axis 1 needs 2 bins over [0,10).
        let inst = VecInstance::from_items(vec![
            VecItem::new(0, sv(&[0.3, 0.9]), 0, 10),
            VecItem::new(1, sv(&[0.3, 0.9]), 0, 10),
        ])
        .unwrap();
        assert_eq!(inst.vector_lower_bound(), 20);
    }

    #[test]
    fn dim1_lower_bound_matches_scalar_lb3() {
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.1, 5, 20), (0.9, 7, 9)]);
        let lifted = VecInstance::lift(&inst, 1);
        let lb = crate::accounting::lower_bounds(&inst);
        assert_eq!(lifted.vector_lower_bound(), lb.lb3);
    }

    #[test]
    fn validate_packing_catches_axis_overflow() {
        let inst = VecInstance::from_items(vec![
            VecItem::new(0, sv(&[0.2, 0.8]), 0, 10),
            VecItem::new(1, sv(&[0.2, 0.8]), 0, 10),
        ])
        .unwrap();
        // Sharing one bin overflows axis 1.
        let shared = Packing::from_bins(vec![vec![ItemId(0), ItemId(1)]]);
        assert!(matches!(
            inst.validate_packing(&shared),
            Err(DbpError::CapacityExceeded { .. })
        ));
        let split = Packing::from_bins(vec![vec![ItemId(0)], vec![ItemId(1)]]);
        inst.validate_packing(&split).unwrap();
        // Missing an item is a coverage error.
        let partial = Packing::from_bins(vec![vec![ItemId(0)]]);
        assert!(matches!(
            inst.validate_packing(&partial),
            Err(DbpError::PackingCoverage { .. })
        ));
    }
}
