//! The indexed open-bin set presented to packers.
//!
//! The seed engine kept open bins in a plain `Vec<OpenBin>`, which made
//! every departure an O(open) scan plus an O(open) `Vec::remove` shift,
//! and gave classification packers (CBD, CBDT, combined) no better option
//! than scanning the whole fleet and filtering by tag. [`OpenBins`] keeps
//! the same *observable* contract — bins iterate in opening order — on
//! top of O(1) indexed storage:
//!
//! * a slab of slots with a free list, so insert/remove never shift;
//! * a `BinId → slot` hash index, so lookups by id are O(1);
//! * an intrusive doubly-linked list through the slots in opening order,
//!   driving [`OpenBins::iter`];
//! * a second intrusive list per tag, driving [`OpenBins::iter_tag`] so a
//!   classification packer visits only its own category.
//!
//! The slab is laid out struct-of-arrays: the traversal links and index
//! keys ([`Links`]) live in one dense array, the bin payloads (levels,
//! resident item lists) in another, so order walks and index maintenance
//! touch small contiguous records instead of dragging every bin's item
//! vector through the cache.
//!
//! ## Indexed fit queries
//!
//! On top of the order lists, `OpenBins` answers the three Any-Fit
//! placement queries in O(log B) instead of O(B):
//!
//! * [`OpenBins::first_fit`] — earliest-opened bin of a tag with
//!   residual ≥ size, via a max-gap tournament tree over the tag's
//!   opening order;
//! * [`OpenBins::best_fit`] — minimum residual ≥ size, via a residual-
//!   ordered set keyed `(gap, opening-order)`;
//! * [`OpenBins::worst_fit`] — maximum residual, same set.
//!
//! The keys are chosen so ties break *identically* to a linear
//! `iter_tag` scan through `Iterator::max_by_key`/`min_by_key`:
//!
//! * First Fit takes the **earliest-opened** feasible bin (leftmost
//!   feasible leaf in opening order).
//! * Best Fit takes the fullest feasible bin, resolving level ties to
//!   the **latest** opened (`max_by_key` keeps the last maximum), so the
//!   set is ordered by `(gap, Reverse(seq))` and the query takes the
//!   *smallest* element with `gap ≥ size`.
//! * Worst Fit takes the emptiest bin, resolving ties to the
//!   **earliest** opened (`min_by_key` keeps the first minimum) — the
//!   *largest* element of the same set.
//!
//! `seq` is a per-tag opening sequence number, so both structures order
//! bins exactly as the tag list iterates them. The structures are built
//! lazily per `(tag, query kind)` on first use and maintained
//! incrementally afterwards; a session that never issues a query (or
//! only uses Next Fit, which reads the tag list tail in O(1)) pays
//! nothing beyond one hash probe per level change. Each per-tag index is
//! dropped when its tag's last bin closes. Decisions are proven
//! bit-identical to the linear scan by the dbp-audit differential
//! harness and the indexed-vs-linear proptest family.

use crate::error::DbpError;
use crate::item::ItemId;
use crate::online::{ActiveItem, OpenBin};
use crate::packing::BinId;
use crate::size::Size;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Per-slot traversal links and index keys, kept apart from the bin
/// payload (struct-of-arrays) so order walks stay cache-dense.
#[derive(Clone, Copy, Debug)]
struct Links {
    /// Opening-order list links.
    prev: u32,
    next: u32,
    /// Per-tag opening-order list links.
    tag_prev: u32,
    tag_next: u32,
    /// Per-tag opening sequence number: the fit index's tie-break key.
    seq: u64,
}

/// Head/tail of one tag's opening-order list plus its sequence counter.
#[derive(Clone, Copy, Debug)]
struct TagList {
    head: u32,
    tail: u32,
    next_seq: u64,
}

/// A residual-ordered entry: `(gap, Reverse(per-tag seq), slot)`. The
/// first two fields are unique per bin; the slot rides along for O(1)
/// resolution of the chosen bin.
type GapKey = (u64, Reverse<u64>, u32);

/// The lazily-built fit structures of one tag.
#[derive(Clone, Debug, Default)]
struct FitIndex {
    /// Max-gap tournament tree over the tag's opening order (First Fit).
    seg: Option<GapTree>,
    /// Residual-ordered set (Best/Worst Fit).
    ordered: Option<BTreeSet<GapKey>>,
}

/// Interior-mutable index state: queries take `&OpenBins` (packers hold a
/// shared borrow inside `place`) but must be able to build structures on
/// first use.
#[derive(Clone, Debug, Default)]
struct FitState {
    by_tag: HashMap<u64, FitIndex>,
    /// slot → leaf position in its tag's [`GapTree`] (meaningful only
    /// while that tree exists).
    pos: Vec<u32>,
}

/// A max-gap tournament (segment) tree over one tag's opening order.
///
/// Leaf `p` holds the residual gap of the `p`-th-opened live bin of the
/// tag; internal nodes hold the max of their children. Dead or
/// unallocated leaves hold gap 0, which no valid item size (raw ≥ 1) can
/// match, so removals are O(log) leaf kills and the leftmost-feasible
/// descent never lands on a closed bin. When more than half the
/// positions are dead the tree compacts, preserving relative order, so
/// memory stays proportional to the live fleet.
#[derive(Clone, Debug)]
struct GapTree {
    /// Heap layout: `node[1]` is the root, leaf `p` lives at `node[cap + p]`.
    node: Vec<u64>,
    cap: usize,
    /// Leaf position → slab slot; [`NIL`] marks dead positions.
    slot_at: Vec<u32>,
    live: usize,
}

impl GapTree {
    fn new() -> GapTree {
        GapTree {
            node: vec![0; 2],
            cap: 1,
            slot_at: Vec::new(),
            live: 0,
        }
    }

    /// Appends a live leaf in opening order, returning its position.
    /// `moved` is invoked with `(slot, new_pos)` for every relocated
    /// leaf if the append forces a rebuild.
    fn append(&mut self, slot: u32, gap: u64, moved: impl FnMut(u32, u32)) -> u32 {
        if self.slot_at.len() == self.cap {
            self.rebuild(self.cap * 2, moved);
        }
        let p = self.slot_at.len() as u32;
        self.slot_at.push(slot);
        self.live += 1;
        self.set(p, gap);
        p
    }

    /// Updates the gap at `pos` and restores the max property upward.
    fn set(&mut self, pos: u32, gap: u64) {
        let mut i = self.cap + pos as usize;
        self.node[i] = gap;
        while i > 1 {
            i /= 2;
            let m = self.node[2 * i].max(self.node[2 * i + 1]);
            if self.node[i] == m {
                break;
            }
            self.node[i] = m;
        }
    }

    /// Kills the leaf at `pos` (bin closed).
    fn kill(&mut self, pos: u32) {
        self.slot_at[pos as usize] = NIL;
        self.set(pos, 0);
        self.live -= 1;
    }

    /// Whether dead positions outnumber live ones enough to compact.
    /// The floor keeps tiny tags from churning.
    fn needs_compact(&self) -> bool {
        self.slot_at.len() >= 64 && self.live * 2 < self.slot_at.len()
    }

    /// Rebuilds with capacity ≥ `min_cap`, dropping dead positions while
    /// preserving relative (opening) order. `moved` receives every
    /// surviving leaf's `(slot, new_pos)`.
    fn rebuild(&mut self, min_cap: usize, mut moved: impl FnMut(u32, u32)) {
        let entries: Vec<(u32, u64)> = self
            .slot_at
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != NIL)
            .map(|(p, &s)| (s, self.node[self.cap + p]))
            .collect();
        let cap = entries.len().max(min_cap).max(1).next_power_of_two();
        self.node.clear();
        self.node.resize(2 * cap, 0);
        self.cap = cap;
        self.slot_at.clear();
        self.live = entries.len();
        for (p, (slot, gap)) in entries.into_iter().enumerate() {
            self.slot_at.push(slot);
            self.node[cap + p] = gap;
            moved(slot, p as u32);
        }
        for i in (1..cap).rev() {
            self.node[i] = self.node[2 * i].max(self.node[2 * i + 1]);
        }
    }

    /// The leftmost (earliest-opened) live leaf with gap ≥ `size`,
    /// together with the number of tree nodes probed.
    fn query(&self, size: u64) -> (Option<u32>, usize) {
        if self.live == 0 {
            return (None, 0);
        }
        let mut probes = 1;
        if self.node[1] < size {
            return (None, probes);
        }
        let mut i = 1;
        while i < self.cap {
            probes += 1;
            i *= 2;
            if self.node[i] < size {
                i += 1;
            }
        }
        (Some(self.slot_at[i - self.cap]), probes)
    }

    fn approx_bytes(&self) -> usize {
        self.node.capacity() * std::mem::size_of::<u64>()
            + self.slot_at.capacity() * std::mem::size_of::<u32>()
    }
}

/// The set of currently open bins, ordered by opening time.
///
/// Packers receive `&OpenBins` in [`crate::online::OnlinePacker::place`].
/// Use [`OpenBins::iter`] (or `for bin in open_bins`) to scan the whole
/// fleet in opening order, [`OpenBins::iter_tag`] to scan one category,
/// [`OpenBins::get`] for O(1) lookup by id, and the indexed fit queries
/// ([`OpenBins::first_fit`], [`OpenBins::best_fit`],
/// [`OpenBins::worst_fit`]) for O(log category) placement decisions that
/// match the linear scan bit for bit.
#[derive(Clone, Debug)]
pub struct OpenBins {
    /// Slab payload (struct-of-arrays: cold half).
    bins: Vec<Option<OpenBin>>,
    /// Slab links and index keys (struct-of-arrays: hot half). Entries
    /// for free slots are stale and rewritten on insert.
    links: Vec<Links>,
    free: Vec<u32>,
    index: HashMap<BinId, u32>,
    /// Head/tail of the global opening-order list.
    head: u32,
    tail: u32,
    /// Tag → that tag's opening-order list. Entries are removed when a
    /// tag's last bin closes, so the map tracks *live* tags only.
    tags: HashMap<u64, TagList>,
    /// Lazily-built fit-query structures (see module docs).
    fit: RefCell<FitState>,
}

impl Default for OpenBins {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenBins {
    /// An empty open set.
    pub fn new() -> OpenBins {
        OpenBins {
            bins: Vec::new(),
            links: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            tags: HashMap::new(),
            fit: RefCell::new(FitState::default()),
        }
    }

    /// Number of open bins.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no bin is open.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn bin_at(&self, s: u32) -> &OpenBin {
        self.bins[s as usize].as_ref().expect("linked slot")
    }

    /// The bin with this id, if it is open. O(1).
    pub fn get(&self, id: BinId) -> Option<&OpenBin> {
        self.index.get(&id).map(|&s| self.bin_at(s))
    }

    /// Whether the bin with this id is open. O(1).
    pub fn contains(&self, id: BinId) -> bool {
        self.index.contains_key(&id)
    }

    /// The earliest-opened bin.
    pub fn first(&self) -> Option<&OpenBin> {
        self.iter().next()
    }

    /// The latest-opened bin.
    pub fn last(&self) -> Option<&OpenBin> {
        self.iter().next_back()
    }

    /// All open bins in opening order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            bins: &self.bins,
            links: &self.links,
            front: self.head,
            back: self.tail,
            by_tag: false,
            done: self.head == NIL,
        }
    }

    /// The open bins carrying `tag`, in opening order. Scans only that
    /// category: cost is proportional to the category's size, not the
    /// fleet's.
    pub fn iter_tag(&self, tag: u64) -> Iter<'_> {
        let (head, tail) = self
            .tags
            .get(&tag)
            .map(|t| (t.head, t.tail))
            .unwrap_or((NIL, NIL));
        Iter {
            bins: &self.bins,
            links: &self.links,
            front: head,
            back: tail,
            by_tag: true,
            done: head == NIL,
        }
    }

    /// Position of the bin in opening order (0-based), if open. O(open):
    /// a diagnostic convenience for tests and tools — the engine itself
    /// never calls this (per-placement probe counts are reported by the
    /// packer via `OnlinePacker::last_scanned`, which is O(1) to read).
    pub fn position(&self, id: BinId) -> Option<usize> {
        self.iter().position(|b| b.id() == id)
    }

    /// The slots of `tag`'s bins in opening order.
    fn tag_slots(&self, tag: u64) -> impl Iterator<Item = u32> + '_ {
        let head = self.tags.get(&tag).map(|t| t.head).unwrap_or(NIL);
        std::iter::successors((head != NIL).then_some(head), move |&s| {
            let n = self.links[s as usize].tag_next;
            (n != NIL).then_some(n)
        })
    }

    // ------------------------------------------------------------------
    // Indexed fit queries
    // ------------------------------------------------------------------

    /// Indexed First Fit within `tag`: the earliest-opened bin with
    /// residual ≥ `size`, or `None` if no bin of the tag fits. Returns
    /// the decision together with the number of index nodes probed
    /// (surfaced through `OnlinePacker::last_scanned`). O(log category);
    /// the first call on a tag builds its tree in O(category).
    ///
    /// `size` must be a valid (positive) item size.
    pub fn first_fit(&self, tag: u64, size: Size) -> (Option<BinId>, usize) {
        debug_assert!(size.raw() >= 1, "fit queries require a positive size");
        let mut st = self.fit.borrow_mut();
        let FitState { by_tag, pos } = &mut *st;
        let entry = by_tag.entry(tag).or_default();
        if entry.seg.is_none() {
            let mut tree = GapTree::new();
            for s in self.tag_slots(tag) {
                let p = tree.append(s, self.bin_at(s).gap().raw(), |sl, pp| {
                    pos[sl as usize] = pp
                });
                pos[s as usize] = p;
            }
            entry.seg = Some(tree);
        }
        let (slot, probes) = entry
            .seg
            .as_ref()
            .expect("just built")
            .query(size.raw().max(1));
        (slot.map(|s| self.bin_at(s).id()), probes)
    }

    /// Indexed Best Fit within `tag`: the fullest bin with residual ≥
    /// `size`, level ties resolved to the **latest** opened — exactly the
    /// bin a linear opening-order scan through `max_by_key(level)` keeps.
    /// Returns the decision and the probe count. O(log category) after a
    /// first-use O(category·log) build.
    pub fn best_fit(&self, tag: u64, size: Size) -> (Option<BinId>, usize) {
        debug_assert!(size.raw() >= 1, "fit queries require a positive size");
        let mut st = self.fit.borrow_mut();
        let set = self.ordered_set(&mut st, tag);
        let probes = usize::from(!set.is_empty());
        match set.range((size.raw(), Reverse(u64::MAX), 0u32)..).next() {
            Some(&(_, _, slot)) => (Some(self.bin_at(slot).id()), probes),
            None => (None, probes),
        }
    }

    /// Indexed Worst Fit within `tag`: the emptiest bin if it fits,
    /// level ties resolved to the **earliest** opened — exactly the bin
    /// a linear scan through `min_by_key(level)` keeps. (If the
    /// emptiest bin cannot take `size`, no bin can.) Returns the
    /// decision and the probe count.
    pub fn worst_fit(&self, tag: u64, size: Size) -> (Option<BinId>, usize) {
        debug_assert!(size.raw() >= 1, "fit queries require a positive size");
        let mut st = self.fit.borrow_mut();
        let set = self.ordered_set(&mut st, tag);
        let probes = usize::from(!set.is_empty());
        match set.iter().next_back() {
            Some(&(gap, _, slot)) if gap >= size.raw() => (Some(self.bin_at(slot).id()), probes),
            _ => (None, probes),
        }
    }

    /// The residual-ordered set of `tag`, built on first use.
    fn ordered_set<'a>(&self, st: &'a mut FitState, tag: u64) -> &'a BTreeSet<GapKey> {
        let entry = st.by_tag.entry(tag).or_default();
        if entry.ordered.is_none() {
            entry.ordered = Some(
                self.tag_slots(tag)
                    .map(|s| {
                        let b = self.bin_at(s);
                        (b.gap().raw(), Reverse(self.links[s as usize].seq), s)
                    })
                    .collect(),
            );
        }
        entry.ordered.as_ref().expect("just built")
    }

    // ------------------------------------------------------------------
    // Engine-internal mutation (every level change flows through here so
    // the fit structures can never drift from the bins)
    // ------------------------------------------------------------------

    /// Adds an item to an open bin, enforcing capacity. Returns `None`
    /// if the bin is not open; otherwise the bin's level after the push.
    pub(crate) fn push_to(
        &mut self,
        id: BinId,
        active: ActiveItem,
        size: Size,
    ) -> Option<Result<Size, DbpError>> {
        let s = *self.index.get(&id)?;
        let bin = self.bins[s as usize].as_mut().expect("indexed slot");
        let old_gap = bin.gap().raw();
        if let Err(e) = bin.push_item(active, size) {
            return Some(Err(e));
        }
        let (level, new_gap, tag) = (bin.level(), bin.gap().raw(), bin.tag());
        let seq = self.links[s as usize].seq;
        self.fit_level_changed(tag, s, seq, old_gap, new_gap);
        Some(Ok(level))
    }

    /// Removes a departing item from an open bin. Returns `None` if the
    /// bin is not open; otherwise `(became_empty, level_after)`. The
    /// caller still owns closing the bin (via [`OpenBins::remove`]) when
    /// it emptied.
    pub(crate) fn remove_from(
        &mut self,
        id: BinId,
        item: ItemId,
    ) -> Option<Result<(bool, Size), DbpError>> {
        let s = *self.index.get(&id)?;
        let bin = self.bins[s as usize].as_mut().expect("indexed slot");
        let old_gap = bin.gap().raw();
        let became_empty = match bin.remove_item(item) {
            Ok(e) => e,
            Err(e) => return Some(Err(e)),
        };
        let (level, new_gap, tag) = (bin.level(), bin.gap().raw(), bin.tag());
        let seq = self.links[s as usize].seq;
        self.fit_level_changed(tag, s, seq, old_gap, new_gap);
        Some(Ok((became_empty, level)))
    }

    /// Propagates a level change into the tag's active fit structures.
    fn fit_level_changed(&mut self, tag: u64, slot: u32, seq: u64, old_gap: u64, new_gap: u64) {
        let FitState { by_tag, pos } = self.fit.get_mut();
        if by_tag.is_empty() {
            return;
        }
        let Some(entry) = by_tag.get_mut(&tag) else {
            return;
        };
        if let Some(tree) = entry.seg.as_mut() {
            tree.set(pos[slot as usize], new_gap);
        }
        if let Some(set) = entry.ordered.as_mut() {
            set.remove(&(old_gap, Reverse(seq), slot));
            set.insert((new_gap, Reverse(seq), slot));
        }
    }

    /// Appends a newly opened bin (engine-internal). O(1) plus O(log)
    /// per active fit structure of the tag.
    pub(crate) fn insert(&mut self, bin: OpenBin) {
        let id = bin.id();
        let tag = bin.tag();
        let gap = bin.gap().raw();
        debug_assert!(!self.index.contains_key(&id), "bin {id:?} already open");

        let s = match self.free.pop() {
            Some(s) => s,
            None => {
                self.bins.push(None);
                self.links.push(Links {
                    prev: NIL,
                    next: NIL,
                    tag_prev: NIL,
                    tag_next: NIL,
                    seq: 0,
                });
                self.fit.get_mut().pos.push(NIL);
                (self.bins.len() - 1) as u32
            }
        };

        let (tag_prev, seq) = match self.tags.get_mut(&tag) {
            Some(entry) => {
                let old_tail = entry.tail;
                entry.tail = s;
                let seq = entry.next_seq;
                entry.next_seq += 1;
                (old_tail, seq)
            }
            None => {
                self.tags.insert(
                    tag,
                    TagList {
                        head: s,
                        tail: s,
                        next_seq: 1,
                    },
                );
                (NIL, 0)
            }
        };
        if tag_prev != NIL {
            self.links[tag_prev as usize].tag_next = s;
        }

        let prev = self.tail;
        if prev != NIL {
            self.links[prev as usize].next = s;
        } else {
            self.head = s;
        }
        self.tail = s;

        self.links[s as usize] = Links {
            prev,
            next: NIL,
            tag_prev,
            tag_next: NIL,
            seq,
        };
        self.bins[s as usize] = Some(bin);
        self.index.insert(id, s);
        self.fit_on_insert(tag, s, gap, seq);
    }

    fn fit_on_insert(&mut self, tag: u64, slot: u32, gap: u64, seq: u64) {
        let FitState { by_tag, pos } = self.fit.get_mut();
        if by_tag.is_empty() {
            return;
        }
        let Some(entry) = by_tag.get_mut(&tag) else {
            return;
        };
        if let Some(tree) = entry.seg.as_mut() {
            let p = tree.append(slot, gap, |sl, pp| pos[sl as usize] = pp);
            pos[slot as usize] = p;
        }
        if let Some(set) = entry.ordered.as_mut() {
            set.insert((gap, Reverse(seq), slot));
        }
    }

    /// Removes a closed bin and returns it (engine-internal). O(1) plus
    /// amortized O(log) per active fit structure of the tag.
    pub(crate) fn remove(&mut self, id: BinId) -> Option<OpenBin> {
        let s = self.index.remove(&id)?;
        let bin = self.bins[s as usize].take().expect("indexed slot");
        let links = self.links[s as usize];

        // Unlink from the global opening-order list.
        if links.prev != NIL {
            self.links[links.prev as usize].next = links.next;
        } else {
            self.head = links.next;
        }
        if links.next != NIL {
            self.links[links.next as usize].prev = links.prev;
        } else {
            self.tail = links.prev;
        }

        // Unlink from the tag list, dropping the tag entry when it empties.
        let tag = bin.tag();
        if links.tag_prev != NIL {
            self.links[links.tag_prev as usize].tag_next = links.tag_next;
        }
        if links.tag_next != NIL {
            self.links[links.tag_next as usize].tag_prev = links.tag_prev;
        }
        let entry = self.tags.get_mut(&tag).expect("open tag entry");
        let mut tag_died = false;
        if entry.head == s && entry.tail == s {
            self.tags.remove(&tag);
            tag_died = true;
        } else if entry.head == s {
            entry.head = links.tag_next;
        } else if entry.tail == s {
            entry.tail = links.tag_prev;
        }

        self.free.push(s);
        self.fit_on_remove(tag, s, bin.gap().raw(), links.seq, tag_died);
        Some(bin)
    }

    fn fit_on_remove(&mut self, tag: u64, slot: u32, gap: u64, seq: u64, tag_died: bool) {
        let FitState { by_tag, pos } = self.fit.get_mut();
        if by_tag.is_empty() {
            return;
        }
        if tag_died {
            // The tag's structures die with it: memory stays bounded by
            // the live fleet (CBDT retires categories forever), and a
            // revived tag rebuilds from its then-live bins.
            by_tag.remove(&tag);
            return;
        }
        let Some(entry) = by_tag.get_mut(&tag) else {
            return;
        };
        if let Some(tree) = entry.seg.as_mut() {
            tree.kill(pos[slot as usize]);
            if tree.needs_compact() {
                tree.rebuild(0, |sl, pp| pos[sl as usize] = pp);
            }
        }
        if let Some(set) = entry.ordered.as_mut() {
            set.remove(&(gap, Reverse(seq), slot));
        }
    }

    /// Bytes of heap-adjacent state held per open slot — a cheap live-state
    /// proxy used by the benchmark's RSS estimate.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let fit = self.fit.borrow();
        let fit_bytes: usize = fit.pos.capacity() * size_of::<u32>()
            + fit
                .by_tag
                .values()
                .map(|e| {
                    e.seg.as_ref().map(GapTree::approx_bytes).unwrap_or(0)
                        + e.ordered
                            .as_ref()
                            .map(|s| s.len() * size_of::<GapKey>())
                            .unwrap_or(0)
                })
                .sum::<usize>();
        self.bins.capacity() * size_of::<Option<OpenBin>>()
            + self.links.capacity() * size_of::<Links>()
            + self.free.capacity() * size_of::<u32>()
            + self.index.capacity() * (size_of::<BinId>() + size_of::<u32>())
            + self.tags.capacity() * (size_of::<u64>() + size_of::<TagList>())
            + fit_bytes
            + self
                .iter()
                .map(|b| std::mem::size_of_val(b.items()))
                .sum::<usize>()
    }

    /// Exhaustively checks every internal invariant: slab/index/free-list
    /// agreement, both intrusive lists, per-tag sequence monotonicity,
    /// and — for every active fit structure — exact agreement with the
    /// bins it indexes. O(everything); meant for tests and the
    /// index-consistency proptests, never the hot path.
    #[doc(hidden)]
    pub fn validate(&self) -> Result<(), String> {
        let err = |what: String| Err(what);
        if self.bins.len() != self.links.len() {
            return err(format!(
                "SoA skew: {} bins vs {} links",
                self.bins.len(),
                self.links.len()
            ));
        }
        let live: Vec<u32> = (0..self.bins.len() as u32)
            .filter(|&s| self.bins[s as usize].is_some())
            .collect();
        if live.len() != self.index.len() {
            return err(format!(
                "{} live slots but {} index entries",
                live.len(),
                self.index.len()
            ));
        }
        for (&id, &s) in &self.index {
            match self.bins.get(s as usize).and_then(Option::as_ref) {
                Some(b) if b.id() == id => {}
                _ => return err(format!("index maps {id:?} to a bad slot {s}")),
            }
        }
        // Free list covers exactly the dead slots, once each.
        let mut free_set = std::collections::HashSet::new();
        for &f in &self.free {
            if !free_set.insert(f) {
                return err(format!("slot {f} on the free list twice"));
            }
            if self.bins.get(f as usize).map(Option::is_some) != Some(false) {
                return err(format!("free slot {f} is live or out of range"));
            }
        }
        if free_set.len() + live.len() != self.bins.len() {
            return err("free list and live slots do not partition the slab".into());
        }
        // Global list: a consistent double-linked walk over all live slots.
        let mut order = Vec::new();
        let mut cur = self.head;
        let mut prev = NIL;
        while cur != NIL {
            if self.bins[cur as usize].is_none() {
                return err(format!("global list visits dead slot {cur}"));
            }
            if self.links[cur as usize].prev != prev {
                return err(format!("slot {cur} has a bad prev link"));
            }
            order.push(cur);
            prev = cur;
            cur = self.links[cur as usize].next;
            if order.len() > self.bins.len() {
                return err("global list cycles".into());
            }
        }
        if self.tail != prev {
            return err("tail does not end the global list".into());
        }
        if order.len() != live.len() {
            return err(format!(
                "global list visits {} of {} live bins",
                order.len(),
                live.len()
            ));
        }
        let rank: HashMap<u32, usize> = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // Tag lists: partition the fleet, preserve global order, and
        // carry strictly increasing sequence numbers.
        let mut tagged = 0usize;
        for (&tag, list) in &self.tags {
            let mut cur = list.head;
            let mut prev = NIL;
            let mut last_rank = None;
            let mut last_seq = None;
            while cur != NIL {
                let b = self
                    .bins
                    .get(cur as usize)
                    .and_then(Option::as_ref)
                    .ok_or_else(|| format!("tag {tag} list visits dead slot {cur}"))?;
                if b.tag() != tag {
                    return err(format!("tag {tag} list holds a bin tagged {}", b.tag()));
                }
                if self.links[cur as usize].tag_prev != prev {
                    return err(format!("slot {cur} has a bad tag_prev link"));
                }
                let r = rank[&cur];
                if last_rank.is_some_and(|lr| lr >= r) {
                    return err(format!("tag {tag} list breaks opening order"));
                }
                let seq = self.links[cur as usize].seq;
                if last_seq.is_some_and(|ls| ls >= seq) {
                    return err(format!("tag {tag} sequence numbers not increasing"));
                }
                if seq >= list.next_seq {
                    return err(format!("tag {tag} holds seq {seq} >= next_seq"));
                }
                last_rank = Some(r);
                last_seq = Some(seq);
                tagged += 1;
                prev = cur;
                cur = self.links[cur as usize].tag_next;
                if tagged > live.len() {
                    return err("tag lists cycle".into());
                }
            }
            if list.tail != prev {
                return err(format!("tag {tag} tail does not end its list"));
            }
            if list.head == NIL {
                return err(format!("tag {tag} entry is empty but retained"));
            }
        }
        if tagged != live.len() {
            return err(format!(
                "tag lists cover {tagged} of {} live bins",
                live.len()
            ));
        }
        // Fit structures: exact agreement with the bins they index.
        let fit = self.fit.borrow();
        for (&tag, entry) in &fit.by_tag {
            let slots: Vec<u32> = self.tag_slots(tag).collect();
            if let Some(tree) = entry.seg.as_ref() {
                if tree.live != slots.len() {
                    return err(format!(
                        "tag {tag} tree tracks {} of {} bins",
                        tree.live,
                        slots.len()
                    ));
                }
                let mut last_pos = None;
                for &s in &slots {
                    let p = fit.pos[s as usize];
                    if tree.slot_at.get(p as usize) != Some(&s) {
                        return err(format!("tag {tag} slot {s} lost its tree leaf"));
                    }
                    if tree.node[tree.cap + p as usize] != self.bin_at(s).gap().raw() {
                        return err(format!("tag {tag} slot {s} leaf gap is stale"));
                    }
                    if last_pos.is_some_and(|lp| lp >= p) {
                        return err(format!("tag {tag} tree breaks opening order"));
                    }
                    last_pos = Some(p);
                }
                for (p, &s) in tree.slot_at.iter().enumerate() {
                    if s != NIL && !slots.contains(&s) {
                        return err(format!("tag {tag} tree leaf {p} points at a foreign slot"));
                    }
                }
                for i in 1..tree.cap {
                    if tree.node[i] != tree.node[2 * i].max(tree.node[2 * i + 1]) {
                        return err(format!("tag {tag} tree node {i} violates max property"));
                    }
                }
            }
            if let Some(set) = entry.ordered.as_ref() {
                let expect: BTreeSet<GapKey> = slots
                    .iter()
                    .map(|&s| {
                        let b = self.bin_at(s);
                        (b.gap().raw(), Reverse(self.links[s as usize].seq), s)
                    })
                    .collect();
                if *set != expect {
                    return err(format!("tag {tag} residual-ordered set is stale"));
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a OpenBins {
    type Item = &'a OpenBin;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Double-ended iterator over open bins in opening order.
///
/// Returned by [`OpenBins::iter`] (whole fleet) and [`OpenBins::iter_tag`]
/// (one category).
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    bins: &'a [Option<OpenBin>],
    links: &'a [Links],
    front: u32,
    back: u32,
    by_tag: bool,
    done: bool,
}

impl<'a> Iter<'a> {
    fn bin(&self, s: u32) -> &'a OpenBin {
        self.bins[s as usize].as_ref().expect("linked slot")
    }
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a OpenBin;

    fn next(&mut self) -> Option<&'a OpenBin> {
        if self.done {
            return None;
        }
        let cur = self.front;
        if cur == self.back {
            self.done = true;
        } else {
            let links = &self.links[cur as usize];
            self.front = if self.by_tag {
                links.tag_next
            } else {
                links.next
            };
        }
        Some(self.bin(cur))
    }
}

impl<'a> DoubleEndedIterator for Iter<'a> {
    fn next_back(&mut self) -> Option<&'a OpenBin> {
        if self.done {
            return None;
        }
        let cur = self.back;
        if cur == self.front {
            self.done = true;
        } else {
            let links = &self.links[cur as usize];
            self.back = if self.by_tag {
                links.tag_prev
            } else {
                links.prev
            };
        }
        Some(self.bin(cur))
    }
}

impl std::iter::FusedIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;
    use crate::online::ActiveItem;
    use crate::size::Size;

    fn bin(id: u32, tag: u64) -> OpenBin {
        OpenBin::new(
            BinId(id),
            id as i64,
            tag,
            ActiveItem {
                id: ItemId(id),
                size: Size::from_f64(0.25),
                departure: None,
            },
        )
    }

    fn bin_sized(id: u32, tag: u64, size: f64) -> OpenBin {
        OpenBin::new(
            BinId(id),
            id as i64,
            tag,
            ActiveItem {
                id: ItemId(id),
                size: Size::from_f64(size),
                departure: None,
            },
        )
    }

    fn ids(it: impl Iterator<Item = u32>) -> Vec<u32> {
        it.collect()
    }

    #[test]
    fn opening_order_is_preserved_through_removals() {
        let mut open = OpenBins::new();
        for i in 0..6 {
            open.insert(bin(i, i as u64 % 2));
        }
        assert_eq!(open.len(), 6);
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![0, 1, 2, 3, 4, 5]);

        open.remove(BinId(0)).unwrap(); // head
        open.remove(BinId(3)).unwrap(); // middle
        open.remove(BinId(5)).unwrap(); // tail
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![1, 2, 4]);
        assert_eq!(open.first().unwrap().id(), BinId(1));
        assert_eq!(open.last().unwrap().id(), BinId(4));

        // Slab reuses freed slots without disturbing order.
        open.insert(bin(6, 1));
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![1, 2, 4, 6]);
        assert_eq!(open.position(BinId(4)), Some(2));
        assert_eq!(open.position(BinId(0)), None);
        open.validate().unwrap();
    }

    #[test]
    fn tag_partitions_track_membership() {
        let mut open = OpenBins::new();
        for i in 0..6 {
            open.insert(bin(i, i as u64 % 3));
        }
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), vec![0, 3]);
        assert_eq!(ids(open.iter_tag(1).map(|b| b.id().0)), vec![1, 4]);
        assert_eq!(ids(open.iter_tag(2).map(|b| b.id().0)), vec![2, 5]);
        assert_eq!(ids(open.iter_tag(9).map(|b| b.id().0)), Vec::<u32>::new());

        open.remove(BinId(0)).unwrap();
        open.remove(BinId(3)).unwrap();
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), Vec::<u32>::new());
        assert_eq!(ids(open.iter_tag(1).map(|b| b.id().0)), vec![1, 4]);

        open.insert(bin(7, 0));
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), vec![7]);
        open.validate().unwrap();
    }

    #[test]
    fn double_ended_iteration_meets_in_the_middle() {
        let mut open = OpenBins::new();
        for i in 0..4 {
            open.insert(bin(i, 0));
        }
        assert_eq!(ids(open.iter().rev().map(|b| b.id().0)), vec![3, 2, 1, 0]);
        let mut it = open.iter();
        assert_eq!(it.next().unwrap().id(), BinId(0));
        assert_eq!(it.next_back().unwrap().id(), BinId(3));
        assert_eq!(it.next().unwrap().id(), BinId(1));
        assert_eq!(it.next_back().unwrap().id(), BinId(2));
        assert!(it.next().is_none());
        assert!(it.next_back().is_none());
        assert_eq!(
            ids(open.iter_tag(0).rev().map(|b| b.id().0)),
            vec![3, 2, 1, 0]
        );
    }

    #[test]
    fn get_is_indexed_and_removal_returns_the_bin() {
        let mut open = OpenBins::new();
        open.insert(bin(10, 7));
        open.insert(bin(11, 7));
        assert!(open.contains(BinId(10)));
        assert_eq!(open.get(BinId(11)).unwrap().tag(), 7);
        assert!(open.get(BinId(12)).is_none());
        let removed = open.remove(BinId(10)).unwrap();
        assert_eq!(removed.id(), BinId(10));
        assert!(open.remove(BinId(10)).is_none());
        assert_eq!(open.len(), 1);
    }

    /// The linear scans the indexed queries must reproduce bit for bit.
    fn linear_first(open: &OpenBins, tag: u64, size: Size) -> Option<BinId> {
        open.iter_tag(tag).find(|b| b.fits(size)).map(|b| b.id())
    }
    fn linear_best(open: &OpenBins, tag: u64, size: Size) -> Option<BinId> {
        open.iter_tag(tag)
            .filter(|b| b.fits(size))
            .max_by_key(|b| b.level())
            .map(|b| b.id())
    }
    fn linear_worst(open: &OpenBins, tag: u64, size: Size) -> Option<BinId> {
        open.iter_tag(tag)
            .filter(|b| b.fits(size))
            .min_by_key(|b| b.level())
            .map(|b| b.id())
    }

    #[test]
    fn fit_queries_match_linear_scans() {
        let mut open = OpenBins::new();
        // Levels: 0.25, 0.5, 0.25, 0.75, 0.5 — duplicate levels force the
        // tie-break rules to matter.
        for (i, lvl) in [0.25, 0.5, 0.25, 0.75, 0.5].iter().enumerate() {
            open.insert(bin_sized(i as u32, 0, *lvl));
        }
        for size in [0.1, 0.26, 0.5, 0.74, 0.76, 1.0] {
            let s = Size::from_f64(size);
            assert_eq!(
                open.first_fit(0, s).0,
                linear_first(&open, 0, s),
                "ff {size}"
            );
            assert_eq!(open.best_fit(0, s).0, linear_best(&open, 0, s), "bf {size}");
            assert_eq!(
                open.worst_fit(0, s).0,
                linear_worst(&open, 0, s),
                "wf {size}"
            );
        }
        // Best fit level ties resolve to the LATEST opened (ids 1 and 4
        // both at 0.5): max_by_key keeps the last maximum.
        let s = Size::from_f64(0.4);
        assert_eq!(open.best_fit(0, s).0, Some(BinId(4)));
        // Worst fit level ties resolve to the EARLIEST opened (ids 0 and
        // 2 both at 0.25): min_by_key keeps the first minimum.
        assert_eq!(open.worst_fit(0, s).0, Some(BinId(0)));
        open.validate().unwrap();
    }

    #[test]
    fn fit_queries_track_mutation_and_slot_reuse() {
        let mut open = OpenBins::new();
        for i in 0..8 {
            open.insert(bin_sized(i, 7, 0.3));
        }
        // Activate both structures, then mutate through every path.
        let s = Size::from_f64(0.5);
        assert_eq!(open.first_fit(7, s).0, Some(BinId(0)));
        assert_eq!(open.best_fit(7, s).0, Some(BinId(7)));
        // Push an item into bin 2: its level rises, gap falls.
        open.push_to(
            BinId(2),
            ActiveItem {
                id: ItemId(100),
                size: Size::from_f64(0.4),
                departure: None,
            },
            Size::from_f64(0.4),
        )
        .unwrap()
        .unwrap();
        assert_eq!(open.best_fit(7, Size::from_f64(0.3)).0, Some(BinId(2)));
        open.validate().unwrap();
        // Remove bins, reuse slots, re-query.
        open.remove(BinId(0)).unwrap();
        open.remove(BinId(2)).unwrap();
        open.insert(bin_sized(20, 7, 0.9));
        assert_eq!(open.first_fit(7, Size::from_f64(0.65)).0, Some(BinId(1)));
        assert_eq!(open.best_fit(7, Size::from_f64(0.05)).0, Some(BinId(20)));
        assert_eq!(open.worst_fit(7, Size::from_f64(0.05)).0, Some(BinId(1)));
        // Departure shrinks a level back down.
        open.remove_from(BinId(20), ItemId(20)).unwrap().unwrap();
        assert_eq!(
            open.best_fit(7, Size::from_f64(0.05)).0,
            linear_best(&open, 7, Size::from_f64(0.05))
        );
        open.validate().unwrap();
    }

    #[test]
    fn empty_and_missing_tags_report_zero_probes() {
        let open = OpenBins::new();
        let s = Size::from_f64(0.5);
        assert_eq!(open.first_fit(3, s), (None, 0));
        assert_eq!(open.best_fit(3, s), (None, 0));
        assert_eq!(open.worst_fit(3, s), (None, 0));
        open.validate().unwrap();
    }

    #[test]
    fn probe_counts_stay_logarithmic() {
        let mut open = OpenBins::new();
        for i in 0..1000 {
            open.insert(bin_sized(i, 0, 0.999));
        }
        // Nothing fits 0.5: first-fit still answers in one root probe,
        // best/worst in one ordered probe.
        let s = Size::from_f64(0.5);
        let (hit, probes) = open.first_fit(0, s);
        assert_eq!(hit, None);
        assert_eq!(probes, 1);
        assert_eq!(open.best_fit(0, s), (None, 1));
        // A feasible query walks one root-to-leaf path: ~log2(1000).
        open.insert(bin_sized(2000, 0, 0.25));
        let (hit, probes) = open.first_fit(0, s);
        assert_eq!(hit, Some(BinId(2000)));
        assert!(probes <= 12, "{probes} probes for 1001 bins");
        open.validate().unwrap();
    }

    #[test]
    fn tree_compaction_preserves_order() {
        let mut open = OpenBins::new();
        for i in 0..256 {
            open.insert(bin_sized(i, 0, 0.6));
        }
        let s = Size::from_f64(0.3);
        assert_eq!(open.first_fit(0, s).0, Some(BinId(0)));
        // Close most of the fleet to force compaction, in a scattered order.
        for i in (0..256).filter(|i| i % 3 != 1) {
            open.remove(BinId(i)).unwrap();
        }
        open.validate().unwrap();
        assert_eq!(open.first_fit(0, s).0, linear_first(&open, 0, s));
        assert_eq!(open.first_fit(0, s).0, Some(BinId(1)));
        // Inserts after compaction still land behind the survivors.
        open.insert(bin_sized(999, 0, 0.6));
        assert_eq!(open.first_fit(0, s).0, Some(BinId(1)));
        open.validate().unwrap();
    }

    #[test]
    fn push_and_remove_report_missing_bins() {
        let mut open = OpenBins::new();
        open.insert(bin(1, 0));
        assert!(open
            .push_to(
                BinId(9),
                ActiveItem {
                    id: ItemId(5),
                    size: Size::HALF,
                    departure: None
                },
                Size::HALF
            )
            .is_none());
        assert!(open.remove_from(BinId(9), ItemId(5)).is_none());
        // Capacity violations surface as the engine's BadDecision.
        let over = open.push_to(
            BinId(1),
            ActiveItem {
                id: ItemId(6),
                size: Size::CAPACITY,
                departure: None,
            },
            Size::CAPACITY,
        );
        assert!(matches!(over, Some(Err(_))));
        open.validate().unwrap();
    }
}
