//! The indexed open-bin set presented to packers.
//!
//! The seed engine kept open bins in a plain `Vec<OpenBin>`, which made
//! every departure an O(open) scan plus an O(open) `Vec::remove` shift,
//! and gave classification packers (CBD, CBDT, combined) no better option
//! than scanning the whole fleet and filtering by tag. [`OpenBins`] keeps
//! the same *observable* contract — bins iterate in opening order — on
//! top of O(1) indexed storage:
//!
//! * a slab of slots with a free list, so insert/remove never shift;
//! * a `BinId → slot` hash index, so lookups by id are O(1);
//! * an intrusive doubly-linked list through the slots in opening order,
//!   driving [`OpenBins::iter`];
//! * a second intrusive list per tag, driving [`OpenBins::iter_tag`] so a
//!   classification packer visits only its own category.
//!
//! Both iterators are double-ended (Next Fit takes the newest bin via
//! `next_back`) and yield bins in exactly the order the seed's `Vec` did,
//! which is what keeps indexed runs bit-identical to the seed engine —
//! First Fit's "earliest opened" is still simply the first element, and
//! `max_by_key`/`min_by_key` tie-breaking is unchanged.

use crate::online::OpenBin;
use crate::packing::BinId;
use std::collections::HashMap;

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Slot {
    bin: OpenBin,
    /// Opening-order list links.
    prev: u32,
    next: u32,
    /// Per-tag opening-order list links.
    tag_prev: u32,
    tag_next: u32,
}

/// The set of currently open bins, ordered by opening time.
///
/// Packers receive `&OpenBins` in [`crate::online::OnlinePacker::place`].
/// Use [`OpenBins::iter`] (or `for bin in open_bins`) to scan the whole
/// fleet in opening order, [`OpenBins::iter_tag`] to scan one category,
/// and [`OpenBins::get`] for O(1) lookup by id.
#[derive(Clone, Debug, Default)]
pub struct OpenBins {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    index: HashMap<BinId, u32>,
    /// Head/tail of the global opening-order list.
    head: u32,
    tail: u32,
    /// Tag → (head, tail) of that tag's opening-order list. Entries are
    /// removed when a tag's last bin closes, so the map tracks *live*
    /// tags only.
    tags: HashMap<u64, (u32, u32)>,
}

impl OpenBins {
    /// An empty open set.
    pub fn new() -> OpenBins {
        OpenBins {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            tags: HashMap::new(),
        }
    }

    /// Number of open bins.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no bin is open.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The bin with this id, if it is open. O(1).
    pub fn get(&self, id: BinId) -> Option<&OpenBin> {
        self.index
            .get(&id)
            .map(|&s| &self.slots[s as usize].as_ref().expect("indexed slot").bin)
    }

    /// Whether the bin with this id is open. O(1).
    pub fn contains(&self, id: BinId) -> bool {
        self.index.contains_key(&id)
    }

    /// The earliest-opened bin.
    pub fn first(&self) -> Option<&OpenBin> {
        self.iter().next()
    }

    /// The latest-opened bin.
    pub fn last(&self) -> Option<&OpenBin> {
        self.iter().next_back()
    }

    /// All open bins in opening order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            slots: &self.slots,
            front: self.head,
            back: self.tail,
            by_tag: false,
            done: self.head == NIL,
        }
    }

    /// The open bins carrying `tag`, in opening order. Scans only that
    /// category: cost is proportional to the category's size, not the
    /// fleet's.
    pub fn iter_tag(&self, tag: u64) -> Iter<'_> {
        let (head, tail) = self.tags.get(&tag).copied().unwrap_or((NIL, NIL));
        Iter {
            slots: &self.slots,
            front: head,
            back: tail,
            by_tag: true,
            done: head == NIL,
        }
    }

    /// Position of the bin in opening order (0-based), if open. O(open):
    /// a diagnostic convenience for tests and tools — the engine itself
    /// never calls this (per-placement scan depth is reported by the
    /// packer via `OnlinePacker::last_scanned`, which is O(1) to read).
    pub fn position(&self, id: BinId) -> Option<usize> {
        self.iter().position(|b| b.id() == id)
    }

    /// Mutable access for the engine. O(1).
    pub(crate) fn get_mut(&mut self, id: BinId) -> Option<&mut OpenBin> {
        let s = *self.index.get(&id)?;
        Some(&mut self.slots[s as usize].as_mut().expect("indexed slot").bin)
    }

    /// Appends a newly opened bin (engine-internal). O(1).
    pub(crate) fn insert(&mut self, bin: OpenBin) {
        let id = bin.id();
        let tag = bin.tag();
        debug_assert!(!self.index.contains_key(&id), "bin {id:?} already open");

        let s = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };

        let (tag_prev, _) = match self.tags.get_mut(&tag) {
            Some(entry) => {
                let old_tail = entry.1;
                entry.1 = s;
                (old_tail, ())
            }
            None => {
                self.tags.insert(tag, (s, s));
                (NIL, ())
            }
        };
        if tag_prev != NIL {
            self.slots[tag_prev as usize]
                .as_mut()
                .expect("tag tail slot")
                .tag_next = s;
        }

        let prev = self.tail;
        if prev != NIL {
            self.slots[prev as usize].as_mut().expect("tail slot").next = s;
        } else {
            self.head = s;
        }
        self.tail = s;

        self.slots[s as usize] = Some(Slot {
            bin,
            prev,
            next: NIL,
            tag_prev,
            tag_next: NIL,
        });
        self.index.insert(id, s);
    }

    /// Removes a closed bin and returns it (engine-internal). O(1).
    pub(crate) fn remove(&mut self, id: BinId) -> Option<OpenBin> {
        let s = self.index.remove(&id)?;
        let slot = self.slots[s as usize].take().expect("indexed slot");

        // Unlink from the global opening-order list.
        if slot.prev != NIL {
            self.slots[slot.prev as usize]
                .as_mut()
                .expect("prev slot")
                .next = slot.next;
        } else {
            self.head = slot.next;
        }
        if slot.next != NIL {
            self.slots[slot.next as usize]
                .as_mut()
                .expect("next slot")
                .prev = slot.prev;
        } else {
            self.tail = slot.prev;
        }

        // Unlink from the tag list, dropping the tag entry when it empties.
        let tag = slot.bin.tag();
        if slot.tag_prev != NIL {
            self.slots[slot.tag_prev as usize]
                .as_mut()
                .expect("tag prev slot")
                .tag_next = slot.tag_next;
        }
        if slot.tag_next != NIL {
            self.slots[slot.tag_next as usize]
                .as_mut()
                .expect("tag next slot")
                .tag_prev = slot.tag_prev;
        }
        let entry = self.tags.get_mut(&tag).expect("open tag entry");
        if entry.0 == s && entry.1 == s {
            self.tags.remove(&tag);
        } else if entry.0 == s {
            entry.0 = slot.tag_next;
        } else if entry.1 == s {
            entry.1 = slot.tag_prev;
        }

        self.free.push(s);
        Some(slot.bin)
    }

    /// Bytes of heap-adjacent state held per open slot — a cheap live-state
    /// proxy used by the benchmark's RSS estimate.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.capacity() * size_of::<Option<Slot>>()
            + self.free.capacity() * size_of::<u32>()
            + self.index.capacity() * (size_of::<BinId>() + size_of::<u32>())
            + self.tags.capacity() * (size_of::<u64>() + 2 * size_of::<u32>())
            + self
                .iter()
                .map(|b| std::mem::size_of_val(b.items()))
                .sum::<usize>()
    }
}

impl<'a> IntoIterator for &'a OpenBins {
    type Item = &'a OpenBin;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Double-ended iterator over open bins in opening order.
///
/// Returned by [`OpenBins::iter`] (whole fleet) and [`OpenBins::iter_tag`]
/// (one category).
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    slots: &'a [Option<Slot>],
    front: u32,
    back: u32,
    by_tag: bool,
    done: bool,
}

impl<'a> Iter<'a> {
    fn slot(&self, s: u32) -> &'a Slot {
        self.slots[s as usize].as_ref().expect("linked slot")
    }
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a OpenBin;

    fn next(&mut self) -> Option<&'a OpenBin> {
        if self.done {
            return None;
        }
        let cur = self.front;
        let slot = self.slot(cur);
        if cur == self.back {
            self.done = true;
        } else {
            self.front = if self.by_tag {
                slot.tag_next
            } else {
                slot.next
            };
        }
        Some(&slot.bin)
    }
}

impl<'a> DoubleEndedIterator for Iter<'a> {
    fn next_back(&mut self) -> Option<&'a OpenBin> {
        if self.done {
            return None;
        }
        let cur = self.back;
        let slot = self.slot(cur);
        if cur == self.front {
            self.done = true;
        } else {
            self.back = if self.by_tag {
                slot.tag_prev
            } else {
                slot.prev
            };
        }
        Some(&slot.bin)
    }
}

impl std::iter::FusedIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;
    use crate::online::ActiveItem;
    use crate::size::Size;

    fn bin(id: u32, tag: u64) -> OpenBin {
        OpenBin::new(
            BinId(id),
            id as i64,
            tag,
            ActiveItem {
                id: ItemId(id),
                size: Size::from_f64(0.25),
                departure: None,
            },
        )
    }

    fn ids(it: impl Iterator<Item = u32>) -> Vec<u32> {
        it.collect()
    }

    #[test]
    fn opening_order_is_preserved_through_removals() {
        let mut open = OpenBins::new();
        for i in 0..6 {
            open.insert(bin(i, i as u64 % 2));
        }
        assert_eq!(open.len(), 6);
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![0, 1, 2, 3, 4, 5]);

        open.remove(BinId(0)).unwrap(); // head
        open.remove(BinId(3)).unwrap(); // middle
        open.remove(BinId(5)).unwrap(); // tail
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![1, 2, 4]);
        assert_eq!(open.first().unwrap().id(), BinId(1));
        assert_eq!(open.last().unwrap().id(), BinId(4));

        // Slab reuses freed slots without disturbing order.
        open.insert(bin(6, 1));
        assert_eq!(ids(open.iter().map(|b| b.id().0)), vec![1, 2, 4, 6]);
        assert_eq!(open.position(BinId(4)), Some(2));
        assert_eq!(open.position(BinId(0)), None);
    }

    #[test]
    fn tag_partitions_track_membership() {
        let mut open = OpenBins::new();
        for i in 0..6 {
            open.insert(bin(i, i as u64 % 3));
        }
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), vec![0, 3]);
        assert_eq!(ids(open.iter_tag(1).map(|b| b.id().0)), vec![1, 4]);
        assert_eq!(ids(open.iter_tag(2).map(|b| b.id().0)), vec![2, 5]);
        assert_eq!(ids(open.iter_tag(9).map(|b| b.id().0)), Vec::<u32>::new());

        open.remove(BinId(0)).unwrap();
        open.remove(BinId(3)).unwrap();
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), Vec::<u32>::new());
        assert_eq!(ids(open.iter_tag(1).map(|b| b.id().0)), vec![1, 4]);

        open.insert(bin(7, 0));
        assert_eq!(ids(open.iter_tag(0).map(|b| b.id().0)), vec![7]);
    }

    #[test]
    fn double_ended_iteration_meets_in_the_middle() {
        let mut open = OpenBins::new();
        for i in 0..4 {
            open.insert(bin(i, 0));
        }
        assert_eq!(ids(open.iter().rev().map(|b| b.id().0)), vec![3, 2, 1, 0]);
        let mut it = open.iter();
        assert_eq!(it.next().unwrap().id(), BinId(0));
        assert_eq!(it.next_back().unwrap().id(), BinId(3));
        assert_eq!(it.next().unwrap().id(), BinId(1));
        assert_eq!(it.next_back().unwrap().id(), BinId(2));
        assert!(it.next().is_none());
        assert!(it.next_back().is_none());
        assert_eq!(
            ids(open.iter_tag(0).rev().map(|b| b.id().0)),
            vec![3, 2, 1, 0]
        );
    }

    #[test]
    fn get_is_indexed_and_removal_returns_the_bin() {
        let mut open = OpenBins::new();
        open.insert(bin(10, 7));
        open.insert(bin(11, 7));
        assert!(open.contains(BinId(10)));
        assert_eq!(open.get(BinId(11)).unwrap().tag(), 7);
        assert!(open.get(BinId(12)).is_none());
        let removed = open.remove(BinId(10)).unwrap();
        assert_eq!(removed.id(), BinId(10));
        assert!(open.remove(BinId(10)).is_none());
        assert_eq!(open.len(), 1);
    }
}
