//! Streaming online **vector** packing: feed multi-resource arrivals one
//! at a time.
//!
//! [`VecStreamingSession`] is the vector twin of
//! [`crate::StreamingSession`]: call [`VecStreamingSession::arrive`] per
//! job (non-decreasing arrival times, unique ids), and the session
//! returns the bin the packer chose; [`VecStreamingSession::finish`]
//! flushes the remaining departures and returns the **same**
//! [`OnlineRun`] type the scalar engine produces — bins are identified,
//! recorded, and accounted identically, which is what lets the dim-1
//! differential suite assert `OnlineRun == OnlineRun` between a lifted
//! vector session and a scalar one.
//!
//! The mechanics mirror the scalar session exactly: departures due at or
//! before an arrival close first (half-open intervals), a bin is removed
//! from the open set the moment its last item departs, usage accounts
//! `closed_at - opened_at` per bin, duplicate ids are rejected through
//! the same watermark scheme, and out-of-order arrivals are refused with
//! the same error. What it deliberately does **not** carry over:
//! snapshots, fleet caps, and fault injection — the scalar session owns
//! those; the vector session is scoped to the packing semantics the
//! differential and audit layers prove.
//!
//! ## Observability
//!
//! The session is generic over a [`VecPackObserver`] receiving a
//! [`VecPackEvent`] per arrival, placement, level change, opening, and
//! closure — per-axis levels included, which `dbp-obs`'s vector trace
//! writer serializes. [`VecNoopObserver`] compiles every emission site
//! away.

use crate::error::DbpError;
use crate::interval::Time;
use crate::item::ItemId;
use crate::online::{BinRecord, Decision, OnlineRun};
use crate::packing::{BinId, Packing};
use crate::sizevec::{SizeVec, VecInstance, VecItem};
use crate::vecbins::{VecActiveItem, VecOpenBin, VecOpenBins};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Whether departure times are visible to the packer.
///
/// The vector session supports the paper's clairvoyant setting and the
/// blind baseline; the noisy-estimator middle ground remains
/// scalar-only ([`crate::ClairvoyanceMode::Noisy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VecClairvoyance {
    /// Departures are visible on arrival (the paper's setting).
    #[default]
    Clairvoyant,
    /// Departures are hidden; classification packers cannot run.
    NonClairvoyant,
}

/// What a vector packer sees of an arriving item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VecItemView {
    /// The item's id.
    pub id: ItemId,
    /// The item's demand vector.
    pub size: SizeVec,
    /// Arrival time.
    pub arrival: Time,
    /// Departure time, if the session is clairvoyant.
    pub departure: Option<Time>,
}

impl VecItemView {
    /// Duration in ticks, if the departure is visible.
    pub fn duration(&self) -> Option<i64> {
        self.departure.map(|d| d - self.arrival)
    }
}

/// An online vector-packing algorithm: inspects the open bins and
/// decides where each arrival goes. The vector twin of
/// [`crate::OnlinePacker`]; decisions reuse the scalar [`Decision`]
/// type.
pub trait VecOnlinePacker {
    /// Short name for reports and bench labels.
    fn name(&self) -> String;

    /// Forgets all cross-run state; called when a session starts.
    fn reset(&mut self) {}

    /// Chooses a bin for `item` given the open set.
    fn place(&mut self, item: &VecItemView, open_bins: &VecOpenBins) -> Decision;

    /// How many candidates/index nodes the last `place` probed, if the
    /// packer tracks it.
    fn last_scanned(&self) -> Option<usize> {
        None
    }
}

/// One vector packing event (see [`VecPackObserver`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VecPackEvent {
    /// An item was admitted into the session.
    ItemArrived {
        /// The item's id.
        id: ItemId,
        /// The item's demand vector.
        size: SizeVec,
        /// Arrival time.
        at: Time,
        /// The departure visible to the packer (`None` when blind).
        departure: Option<Time>,
    },
    /// A new bin was opened.
    BinOpened {
        /// The new bin.
        bin: BinId,
        /// Opening time.
        at: Time,
        /// The packer-supplied category tag.
        tag: u64,
    },
    /// The packer's decision for an arrival was committed.
    PlacementDecided {
        /// The placed item.
        id: ItemId,
        /// The chosen bin.
        bin: BinId,
        /// Whether the decision opened a new bin.
        opened: bool,
        /// Candidates/index nodes probed by the packer's `place`.
        scanned: usize,
    },
    /// A bin's level vector changed (placement or departure).
    LevelChanged {
        /// The bin whose level changed.
        bin: BinId,
        /// When.
        at: Time,
        /// The level vector after the change (zero when the bin closed).
        level: SizeVec,
        /// Open bins after the change.
        open_bins: usize,
    },
    /// A bin's last item departed and the bin closed.
    BinClosed {
        /// The closed bin.
        bin: BinId,
        /// Closing time.
        at: Time,
        /// When the bin had opened (usage = `at - opened_at`).
        opened_at: Time,
        /// How many items the bin served over its lifetime.
        items: usize,
    },
}

/// Receives [`VecPackEvent`]s from a [`VecStreamingSession`].
pub trait VecPackObserver {
    /// Guards every emission site; `false` makes observation free.
    const ENABLED: bool = true;

    /// Receives one event; called synchronously from the packing loop.
    fn on_event(&mut self, event: &VecPackEvent);
}

/// The do-nothing observer: all emission sites compile away.
#[derive(Clone, Copy, Debug, Default)]
pub struct VecNoopObserver;

impl VecPackObserver for VecNoopObserver {
    const ENABLED: bool = false;
    fn on_event(&mut self, _event: &VecPackEvent) {}
}

impl<O: VecPackObserver> VecPackObserver for &mut O {
    const ENABLED: bool = O::ENABLED;
    fn on_event(&mut self, event: &VecPackEvent) {
        (**self).on_event(event);
    }
}

/// An observer that records every event (tests, traces).
#[derive(Clone, Debug, Default)]
pub struct VecEventLog {
    /// The recorded events, in emission order.
    pub events: Vec<VecPackEvent>,
}

impl VecEventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl VecPackObserver for VecEventLog {
    fn on_event(&mut self, event: &VecPackEvent) {
        self.events.push(event.clone());
    }
}

/// An in-progress online vector packing over a stream of arrivals.
pub struct VecStreamingSession<'p, O: VecPackObserver = VecNoopObserver> {
    mode: VecClairvoyance,
    packer: &'p mut dyn VecOnlinePacker,
    obs: O,
    open: VecOpenBins,
    /// Indexed by `BinId` (bins are numbered in opening order).
    records: Vec<BinRecord>,
    /// Bin of each *live* item; entries are pruned at departure.
    placement: HashMap<ItemId, BinId>,
    departures: BinaryHeap<Reverse<(Time, ItemId)>>,
    next_bin: u32,
    last_arrival: Option<Time>,
    /// Every id `< watermark` has been seen.
    watermark: u32,
    /// The exact set of seen ids `≥ watermark`.
    above: HashSet<u32>,
}

impl<'p> VecStreamingSession<'p, VecNoopObserver> {
    /// Starts an unobserved session; the packer's
    /// [`VecOnlinePacker::reset`] is invoked.
    pub fn new(mode: VecClairvoyance, packer: &'p mut dyn VecOnlinePacker) -> Self {
        Self::with_observer(mode, packer, VecNoopObserver)
    }
}

impl<'p, O: VecPackObserver> VecStreamingSession<'p, O> {
    /// Starts a session reporting every packing event to `obs` (pass
    /// `&mut observer` to keep ownership).
    pub fn with_observer(
        mode: VecClairvoyance,
        packer: &'p mut dyn VecOnlinePacker,
        obs: O,
    ) -> Self {
        packer.reset();
        VecStreamingSession {
            mode,
            packer,
            obs,
            open: VecOpenBins::new(),
            records: Vec::new(),
            placement: HashMap::new(),
            departures: BinaryHeap::new(),
            next_bin: 0,
            last_arrival: None,
            watermark: 0,
            above: HashSet::new(),
        }
    }

    fn visible_departure(&self, item: &VecItem) -> Option<Time> {
        match self.mode {
            VecClairvoyance::Clairvoyant => Some(item.departure()),
            VecClairvoyance::NonClairvoyant => None,
        }
    }

    /// Processes all departures up to and including time `t`.
    fn close_until(&mut self, t: Time) -> Result<(), DbpError> {
        while let Some(&Reverse((dt, id))) = self.departures.peek() {
            if dt > t {
                break;
            }
            self.departures.pop();
            let bin_id = self
                .placement
                .remove(&id)
                .ok_or_else(|| DbpError::Internal {
                    what: format!("departing item {id} has no live placement"),
                })?;
            let (became_empty, level_after) =
                self.open
                    .remove_from(bin_id, id)
                    .ok_or_else(|| DbpError::Internal {
                        what: format!("departing item {id} maps to a closed bin"),
                    })??;
            if became_empty {
                let bin = self.open.remove(bin_id).expect("bin was open");
                let rec = &mut self.records[bin_id.0 as usize];
                rec.closed_at = dt;
                if O::ENABLED {
                    let (opened_at, items) = (rec.opened_at, rec.items.len());
                    self.obs.on_event(&VecPackEvent::LevelChanged {
                        bin: bin_id,
                        at: dt,
                        level: SizeVec::zero(bin.dims()),
                        open_bins: self.open.len(),
                    });
                    self.obs.on_event(&VecPackEvent::BinClosed {
                        bin: bin_id,
                        at: dt,
                        opened_at,
                        items,
                    });
                }
            } else if O::ENABLED {
                let open_bins = self.open.len();
                self.obs.on_event(&VecPackEvent::LevelChanged {
                    bin: bin_id,
                    at: dt,
                    level: level_after,
                    open_bins,
                });
            }
        }
        Ok(())
    }

    /// The number of currently open bins.
    pub fn open_bins(&self) -> usize {
        self.open.len()
    }

    /// The number of items currently resident in open bins.
    pub fn live_items(&self) -> usize {
        self.placement.len()
    }

    /// The currently open bins — the same view the packer sees.
    pub fn open_set(&self) -> &VecOpenBins {
        &self.open
    }

    /// The session clock: the latest arrival / advance time.
    pub fn now(&self) -> Option<Time> {
        self.last_arrival
    }

    /// A cheap estimate of the session's live working-state heap
    /// footprint (the bench RSS proxy; mirrors the scalar session).
    pub fn approx_live_bytes(&self) -> usize {
        use std::mem::size_of;
        self.open.approx_bytes()
            + self.placement.capacity() * (size_of::<ItemId>() + size_of::<BinId>())
            + self.departures.capacity() * size_of::<Reverse<(Time, ItemId)>>()
            + self.above.capacity() * size_of::<u32>()
    }

    /// Advances simulated time to `t` without an arrival: departures up
    /// to and including `t` are processed and empty bins close.
    pub fn advance_to(&mut self, t: Time) -> Result<(), DbpError> {
        if let Some(last) = self.last_arrival {
            if t < last {
                return Err(DbpError::BadDecision {
                    what: format!("cannot advance to {t} before last arrival {last}"),
                });
            }
        }
        self.last_arrival = Some(t);
        self.close_until(t)
    }

    /// Rejects arrivals that would move the session clock backwards.
    fn check_order(&self, now: Time) -> Result<(), DbpError> {
        if let Some(last) = self.last_arrival {
            if now < last {
                return Err(DbpError::BadDecision {
                    what: format!("arrivals must be non-decreasing: {now} after {last}"),
                });
            }
        }
        Ok(())
    }

    /// Commits an id into the dedupe state, rejecting duplicates
    /// (watermark scheme; see [`crate::StreamingSession`]).
    fn note_id(&mut self, raw_id: u32) -> Result<(), DbpError> {
        if raw_id < self.watermark || !self.above.insert(raw_id) {
            return Err(DbpError::DuplicateItemId { id: raw_id });
        }
        while self.watermark < u32::MAX && self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        Ok(())
    }

    /// Feeds one arrival. Arrival times must be non-decreasing and item
    /// ids unique; the chosen bin id is returned.
    pub fn arrive(&mut self, item: &VecItem) -> Result<BinId, DbpError> {
        let now = item.arrival();
        self.check_order(now)?;
        self.note_id(item.id().0)?;
        self.last_arrival = Some(now);
        let visible_dep = self.visible_departure(item);
        self.close_until(now)?;
        let view = VecItemView {
            id: item.id(),
            size: item.size(),
            arrival: now,
            departure: visible_dep,
        };
        let decision = self.packer.place(&view, &self.open);
        if O::ENABLED {
            self.obs.on_event(&VecPackEvent::ItemArrived {
                id: item.id(),
                size: item.size(),
                at: now,
                departure: visible_dep,
            });
        }
        self.commit_decision(item, visible_dep, decision)
    }

    /// Applies a placement decision and commits the item into the
    /// session's live state.
    fn commit_decision(
        &mut self,
        item: &VecItem,
        visible_dep: Option<Time>,
        decision: Decision,
    ) -> Result<BinId, DbpError> {
        let now = item.arrival();
        let active = VecActiveItem {
            id: item.id(),
            size: item.size(),
            departure: visible_dep,
        };
        let bin_id = match decision {
            Decision::Existing(bid) => {
                let level = self
                    .open
                    .push_to(bid, active, item.size())
                    .ok_or_else(|| DbpError::BadDecision {
                        what: format!("bin {bid:?} is not open (item {})", item.id()),
                    })??;
                if O::ENABLED {
                    let open_bins = self.open.len();
                    let scanned = self.packer.last_scanned().unwrap_or(open_bins);
                    self.obs.on_event(&VecPackEvent::PlacementDecided {
                        id: item.id(),
                        bin: bid,
                        opened: false,
                        scanned,
                    });
                    self.obs.on_event(&VecPackEvent::LevelChanged {
                        bin: bid,
                        at: now,
                        level,
                        open_bins,
                    });
                }
                bid
            }
            Decision::New { tag } => {
                let bid = BinId(self.next_bin);
                self.next_bin += 1;
                let pool = self.open.len();
                self.open.insert(VecOpenBin::new(bid, now, tag, active));
                self.records.push(BinRecord {
                    id: bid,
                    opened_at: now,
                    closed_at: now,
                    tag,
                    items: Vec::new(),
                });
                if O::ENABLED {
                    let scanned = self.packer.last_scanned().unwrap_or(pool);
                    self.obs.on_event(&VecPackEvent::BinOpened {
                        bin: bid,
                        at: now,
                        tag,
                    });
                    self.obs.on_event(&VecPackEvent::PlacementDecided {
                        id: item.id(),
                        bin: bid,
                        opened: true,
                        scanned,
                    });
                    self.obs.on_event(&VecPackEvent::LevelChanged {
                        bin: bid,
                        at: now,
                        level: item.size(),
                        open_bins: pool + 1,
                    });
                }
                bid
            }
        };
        self.placement.insert(item.id(), bin_id);
        self.records[bin_id.0 as usize].items.push(item.id());
        self.departures.push(Reverse((item.departure(), item.id())));
        Ok(bin_id)
    }

    /// Flushes all remaining departures and returns the finished run.
    pub fn finish(self) -> Result<OnlineRun, DbpError> {
        self.finish_with_observer().map(|(run, _)| run)
    }

    /// Like [`VecStreamingSession::finish`], but also hands back the
    /// owned observer.
    pub fn finish_with_observer(mut self) -> Result<(OnlineRun, O), DbpError> {
        self.close_until(Time::MAX)?;
        debug_assert!(self.open.is_empty());
        debug_assert!(self.placement.is_empty(), "placement pruned on departure");
        let usage: u128 = self.records.iter().map(|r| r.usage()).sum();
        let mut bins = vec![Vec::new(); self.next_bin as usize];
        for r in &self.records {
            bins[r.id.0 as usize] = r.items.clone();
        }
        Ok((
            OnlineRun {
                packing: Packing::from_bins(bins),
                usage,
                bins: self.records,
            },
            self.obs,
        ))
    }
}

/// Convenience batch driver over [`VecStreamingSession`]: runs a packer
/// over a whole [`VecInstance`] in arrival order. The vector twin of
/// [`crate::OnlineEngine`].
#[derive(Clone, Copy, Debug, Default)]
pub struct VecOnlineEngine {
    mode: VecClairvoyance,
}

impl VecOnlineEngine {
    /// Creates an engine with the given clairvoyance mode.
    pub fn new(mode: VecClairvoyance) -> Self {
        VecOnlineEngine { mode }
    }

    /// A clairvoyant engine (the paper's setting).
    pub fn clairvoyant() -> Self {
        Self::new(VecClairvoyance::Clairvoyant)
    }

    /// A non-clairvoyant engine.
    pub fn non_clairvoyant() -> Self {
        Self::new(VecClairvoyance::NonClairvoyant)
    }

    /// Runs the packer over the instance's items in arrival order.
    pub fn run(
        &self,
        inst: &VecInstance,
        packer: &mut dyn VecOnlinePacker,
    ) -> Result<OnlineRun, DbpError> {
        self.run_observed(inst, packer, &mut VecNoopObserver)
    }

    /// Like [`VecOnlineEngine::run`], but reports every packing event to
    /// the given observer.
    pub fn run_observed<O: VecPackObserver>(
        &self,
        inst: &VecInstance,
        packer: &mut dyn VecOnlinePacker,
        obs: &mut O,
    ) -> Result<OnlineRun, DbpError> {
        let mut session = VecStreamingSession::with_observer(self.mode, packer, obs);
        for item in inst.items() {
            session.arrive(item)?;
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::online::{ItemView, OnlinePacker};
    use crate::openbins::OpenBins;
    use crate::stream::StreamingSession;
    use crate::ClairvoyanceMode;

    /// Untagged vector first fit over the whole fleet (test packer).
    struct VecFirstFit;
    impl VecOnlinePacker for VecFirstFit {
        fn name(&self) -> String {
            "vec-ff".into()
        }
        fn place(&mut self, item: &VecItemView, open: &VecOpenBins) -> Decision {
            open.iter()
                .find(|b| b.fits(&item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::NEW)
        }
    }

    struct ScalarFirstFit;
    impl OnlinePacker for ScalarFirstFit {
        fn name(&self) -> String {
            "ff".into()
        }
        fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
            open.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::NEW)
        }
    }

    fn sv(fracs: &[f64]) -> SizeVec {
        SizeVec::from_f64s(fracs)
    }

    fn sample() -> VecInstance {
        VecInstance::from_items(vec![
            VecItem::new(0, sv(&[0.5, 0.2]), 0, 10),
            VecItem::new(1, sv(&[0.5, 0.9]), 2, 8),
            VecItem::new(2, sv(&[0.5, 0.5]), 3, 9),
            VecItem::new(3, sv(&[0.9, 0.1]), 5, 20),
            VecItem::new(4, sv(&[0.1, 0.1]), 12, 30),
        ])
        .unwrap()
    }

    #[test]
    fn axis_overflow_forces_new_bins() {
        // Item 1 fits item 0's bin on axis 0 (0.5+0.5) but not axis 1
        // (0.2+0.9): vector feasibility must open a second bin.
        let inst = sample();
        let run = VecOnlineEngine::clairvoyant()
            .run(&inst, &mut VecFirstFit)
            .unwrap();
        assert_eq!(run.packing.bin_of(ItemId(0)), run.packing.bin_of(ItemId(2)));
        assert_ne!(run.packing.bin_of(ItemId(0)), run.packing.bin_of(ItemId(1)));
        // Usage accounting mirrors the scalar engine: Σ (closed - opened).
        let expect: u128 = run.bins.iter().map(|r| r.usage()).sum();
        assert_eq!(run.usage, expect);
    }

    #[test]
    fn dim1_session_is_bit_identical_to_scalar_session() {
        let scalar = Instance::from_triples(&[
            (0.5, 0, 10),
            (0.5, 2, 8),
            (0.5, 3, 9),
            (0.9, 5, 20),
            (0.1, 12, 30),
        ]);
        let mut sp = ScalarFirstFit;
        let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut sp);
        for r in scalar.items() {
            session.arrive(r).unwrap();
        }
        let scalar_run = session.finish().unwrap();

        let lifted = VecInstance::lift(&scalar, 1);
        let vec_run = VecOnlineEngine::clairvoyant()
            .run(&lifted, &mut VecFirstFit)
            .unwrap();
        assert_eq!(vec_run, scalar_run);
    }

    #[test]
    fn rejects_out_of_order_and_duplicate_arrivals() {
        let mut packer = VecFirstFit;
        let mut s = VecStreamingSession::new(VecClairvoyance::Clairvoyant, &mut packer);
        s.arrive(&VecItem::new(5, sv(&[0.5]), 10, 20)).unwrap();
        let err = s.arrive(&VecItem::new(1, sv(&[0.5]), 5, 20)).unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
        let err = s.arrive(&VecItem::new(5, sv(&[0.5]), 11, 20)).unwrap_err();
        assert!(matches!(err, DbpError::DuplicateItemId { id: 5 }));
    }

    #[test]
    fn advance_to_drains_the_fleet() {
        let mut packer = VecFirstFit;
        let mut s = VecStreamingSession::new(VecClairvoyance::Clairvoyant, &mut packer);
        s.arrive(&VecItem::new(0, sv(&[0.5, 0.5]), 0, 5)).unwrap();
        s.arrive(&VecItem::new(1, sv(&[0.9, 0.1]), 1, 7)).unwrap();
        assert_eq!(s.open_bins(), 2);
        s.advance_to(5).unwrap();
        assert_eq!(s.open_bins(), 1);
        assert_eq!(s.live_items(), 1);
        assert!(s.advance_to(3).is_err(), "clock cannot move backwards");
        s.advance_to(7).unwrap();
        assert_eq!(s.open_bins(), 0);
        let run = s.finish().unwrap();
        assert_eq!(run.usage, 5 + 6);
    }

    #[test]
    fn observer_sees_per_axis_levels() {
        let inst = sample();
        let mut packer = VecFirstFit;
        let mut log = VecEventLog::new();
        let mut s =
            VecStreamingSession::with_observer(VecClairvoyance::Clairvoyant, &mut packer, &mut log);
        for item in inst.items() {
            s.arrive(item).unwrap();
        }
        s.finish().unwrap();
        let opened = log
            .events
            .iter()
            .filter(|e| matches!(e, VecPackEvent::BinOpened { .. }))
            .count();
        let closed = log
            .events
            .iter()
            .filter(|e| matches!(e, VecPackEvent::BinClosed { .. }))
            .count();
        assert_eq!(opened, closed);
        assert!(opened >= 2);
        // Every placement's level change carries the full vector.
        assert!(log.events.iter().any(|e| matches!(
            e,
            VecPackEvent::LevelChanged { level, .. } if level.dims() == 2
        )));
    }

    #[test]
    fn non_clairvoyant_hides_departures() {
        struct AssertBlind;
        impl VecOnlinePacker for AssertBlind {
            fn name(&self) -> String {
                "blind".into()
            }
            fn place(&mut self, item: &VecItemView, _open: &VecOpenBins) -> Decision {
                assert!(item.departure.is_none());
                Decision::NEW
            }
        }
        let inst = sample();
        VecOnlineEngine::non_clairvoyant()
            .run(&inst, &mut AssertBlind)
            .unwrap();
    }
}
