//! Usage-time units and the paper's lower bounds (Propositions 1–3).
//!
//! ## Units
//!
//! Total usage time is measured in **ticks** (`u128` to survive summation).
//! Time–space demand `d(R)` is measured in raw-size × tick units, i.e.
//! `Size::SCALE` times larger than a tick count; [`Demand::ticks_ceil`]
//! converts. The Proposition 1 statement `OPT ≥ d(R)` therefore reads
//! `opt_ticks ≥ demand.ticks()` here.

use crate::events::load_segments;
use crate::instance::Instance;
use crate::size::Size;

/// A time–space demand: `Σ size × duration` in raw-size × tick units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Demand(pub u128);

impl Demand {
    /// The demand in (fractional) ticks, as `f64` — for reporting.
    pub fn ticks_f64(self) -> f64 {
        self.0 as f64 / Size::SCALE as f64
    }

    /// The demand in whole ticks, rounded up. Since bin usage time is an
    /// integer number of ticks, `usage ≥ d(R)` implies
    /// `usage ≥ ticks_ceil()`.
    pub fn ticks_ceil(self) -> u128 {
        self.0.div_ceil(Size::SCALE as u128)
    }
}

/// The three lower bounds on `OPT_total(R)` from §3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LowerBounds {
    /// Proposition 1: total time–space demand `d(R)`.
    pub demand: Demand,
    /// Proposition 2: `span(R)` in ticks.
    pub span: u128,
    /// Proposition 3: `∫ ⌈S(t)⌉ dt` in ticks — the tightest of the three.
    pub lb3: u128,
}

impl LowerBounds {
    /// The best (largest) lower bound in ticks. Proposition 3 dominates the
    /// other two, but we take the max defensively.
    pub fn best(&self) -> u128 {
        self.lb3.max(self.span).max(self.demand.ticks_ceil())
    }
}

/// Computes all three lower bounds of §3.2 exactly.
///
/// `lb3 = ∫ ⌈S(t)⌉ dt` is evaluated on the exact breakpoint decomposition
/// of the load profile, so no discretization error is incurred.
pub fn lower_bounds(inst: &Instance) -> LowerBounds {
    let segs = load_segments(inst.items());
    let mut lb3: u128 = 0;
    let mut span: u128 = 0;
    for s in &segs {
        let len = s.interval.len() as u128;
        span += len;
        lb3 += s.total_size.ceil_units() as u128 * len;
    }
    LowerBounds {
        demand: Demand(inst.demand()),
        span,
        lb3,
    }
}

/// Competitive/approximation ratio of a measured usage against a lower
/// bound, as `f64`. Returns 1.0 for the degenerate empty case (0/0):
/// an empty instance is served optimally by doing nothing.
pub fn ratio(usage_ticks: u128, lower_bound_ticks: u128) -> f64 {
    if lower_bound_ticks == 0 {
        return 1.0;
    }
    usage_ticks as f64 / lower_bound_ticks as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_ordering_holds() {
        // LB3 >= span and LB3 >= demand (Prop 3 is tightest).
        let inst =
            Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.3, 5, 7), (0.9, 20, 30)]);
        let lb = lower_bounds(&inst);
        assert!(lb.lb3 >= lb.span);
        assert!(lb.lb3 >= lb.demand.ticks_ceil());
        assert_eq!(lb.best(), lb.lb3);
    }

    #[test]
    fn lb3_exact_small_case() {
        // Two 0.6 items overlapping on [2,10): ⌈1.2⌉ = 2 bins there,
        // 1 bin on [0,2) and [10,12).
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12)]);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.span, 12);
        assert_eq!(lb.lb3, 2 + 2 * 8 + 2);
    }

    #[test]
    fn figure1_span() {
        // Figure 1 of the paper: four items whose union leaves a gap.
        // Reconstruction: r1=[0,4), r2=[2,6), r3=[5,8), r4=[10,13).
        let inst = Instance::from_triples(&[(0.3, 0, 4), (0.3, 2, 6), (0.3, 5, 8), (0.3, 10, 13)]);
        // span = [0,8) ∪ [10,13) = 8 + 3 = 11.
        assert_eq!(inst.span(), 11);
        let lb = lower_bounds(&inst);
        assert_eq!(lb.span, 11);
    }

    #[test]
    fn demand_tick_conversion() {
        let d = Demand(Size::SCALE as u128 * 7 + 1);
        assert_eq!(d.ticks_ceil(), 8);
        assert!((d.ticks_f64() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn ratio_degenerate() {
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(10, 5), 2.0);
    }

    #[test]
    fn empty_instance_bounds() {
        let inst = Instance::from_items(vec![]).unwrap();
        let lb = lower_bounds(&inst);
        assert_eq!(lb.best(), 0);
    }
}
