//! Error type shared across the workspace.

use crate::interval::Time;
use std::fmt;

/// Errors produced when constructing instances or validating packings.
#[derive(Debug, Clone, PartialEq)]
pub enum DbpError {
    /// An interval with `start >= end` was supplied.
    EmptyInterval {
        /// The offending start time.
        start: Time,
        /// The offending end time.
        end: Time,
    },
    /// An item size outside `(0, 1]`, or an unrepresentable ratio.
    InvalidSize {
        /// What was wrong with the size.
        what: String,
    },
    /// Two items in one instance share an id.
    DuplicateItemId {
        /// The duplicated id.
        id: u32,
    },
    /// A packing placed an unknown item, or missed/duplicated an item.
    PackingCoverage {
        /// Which coverage rule was violated.
        what: String,
    },
    /// A bin exceeds capacity at some time.
    CapacityExceeded {
        /// The offending bin index.
        bin: usize,
        /// A time at which the level exceeds capacity.
        at: Time,
        /// The offending level, as a fraction of capacity.
        level: f64,
    },
    /// An online packer made an infeasible or out-of-range decision.
    BadDecision {
        /// What was wrong with the decision.
        what: String,
    },
    /// Malformed trace file.
    Trace {
        /// 1-based line number of the malformed entry (0 for I/O errors).
        line: usize,
        /// Parse failure description.
        what: String,
    },
    /// An algorithm-specific internal invariant failed (a bug).
    Internal {
        /// The violated invariant.
        what: String,
    },
    /// A configuration parameter outside its documented domain (e.g. a
    /// size-distribution bound outside `(0, 1]`, or a zero-tick billing
    /// hour). Reported by validating constructors so bad parameters fail
    /// at configuration time instead of panicking deep inside a sweep.
    InvalidParameter {
        /// Which parameter was rejected and why.
        what: String,
    },
}

impl fmt::Display for DbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbpError::EmptyInterval { start, end } => {
                write!(f, "empty interval [{start}, {end}): start must precede end")
            }
            DbpError::InvalidSize { what } => write!(f, "invalid size: {what}"),
            DbpError::DuplicateItemId { id } => write!(f, "duplicate item id {id}"),
            DbpError::PackingCoverage { what } => write!(f, "packing coverage error: {what}"),
            DbpError::CapacityExceeded { bin, at, level } => {
                write!(f, "bin {bin} exceeds capacity at t={at} (level {level:.6})")
            }
            DbpError::BadDecision { what } => write!(f, "bad online decision: {what}"),
            DbpError::Trace { line, what } => write!(f, "trace parse error at line {line}: {what}"),
            DbpError::Internal { what } => write!(f, "internal invariant violated: {what}"),
            DbpError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for DbpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbpError::CapacityExceeded {
            bin: 3,
            at: 17,
            level: 1.25,
        };
        let s = e.to_string();
        assert!(s.contains("bin 3"));
        assert!(s.contains("t=17"));
    }
}
