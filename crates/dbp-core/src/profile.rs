//! Bin level profiles over time.
//!
//! Offline packers (Duration Descending First Fit, interval First Fit for
//! large items in Dual Coloring) need per-bin queries of the form *"what is
//! the maximum level of this bin over `[a, b)`?"* followed by a range update
//! *"add `s` over `[a, b)`"*. Two interchangeable backends are provided:
//!
//! * [`BTreeProfile`] — a piecewise-constant map with no setup; updates and
//!   queries are `O(k log n)` where `k` is the number of breakpoints in the
//!   queried range. Works with arbitrary, unanticipated times.
//! * [`SegTreeProfile`] — a coordinate-compressed segment tree with lazy
//!   range-add and range-max in `O(log n)`, requiring all event times up
//!   front. This is the fast path for large offline instances; the E7
//!   ablation benchmark compares the two.
//!
//! Both are exact: levels are raw fixed-point [`Size`] values.

use crate::interval::{Interval, Time};
use crate::size::Size;
use std::collections::BTreeMap;

/// A mutable level-over-time function supporting range add and range max.
pub trait LevelProfile {
    /// Adds `size` to the level throughout `iv`.
    fn add(&mut self, iv: Interval, size: Size);

    /// The maximum level over `iv`.
    fn max_in(&self, iv: Interval) -> Size;

    /// The level at a single instant.
    fn level_at(&self, t: Time) -> Size;

    /// Whether an item of size `s` fits throughout `iv` under capacity
    /// `cap`: `max_in(iv) + s ≤ cap`.
    fn fits(&self, iv: Interval, s: Size, cap: Size) -> bool {
        self.max_in(iv) + s <= cap
    }
}

/// Piecewise-constant profile over a `BTreeMap` of breakpoints.
///
/// Each entry `(t, level)` means the level is `level` from `t` until the
/// next breakpoint; before the first breakpoint the level is zero. Zero
/// trailing levels are kept (they are rare and harmless).
#[derive(Clone, Debug, Default)]
pub struct BTreeProfile {
    steps: BTreeMap<Time, Size>,
}

impl BTreeProfile {
    /// An empty (identically zero) profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures a breakpoint exists at `t`, copying the preceding level.
    fn cut(&mut self, t: Time) {
        if self.steps.contains_key(&t) {
            return;
        }
        let prev = self
            .steps
            .range(..t)
            .next_back()
            .map(|(_, &lvl)| lvl)
            .unwrap_or(Size::ZERO);
        self.steps.insert(t, prev);
    }

    /// Number of internal breakpoints (for tests/diagnostics).
    pub fn breakpoints(&self) -> usize {
        self.steps.len()
    }
}

impl LevelProfile for BTreeProfile {
    fn add(&mut self, iv: Interval, size: Size) {
        self.cut(iv.start());
        self.cut(iv.end());
        for (_, lvl) in self.steps.range_mut(iv.start()..iv.end()) {
            *lvl += size;
        }
    }

    fn max_in(&self, iv: Interval) -> Size {
        // Level at iv.start comes from the breakpoint at or before it.
        let mut max = self
            .steps
            .range(..=iv.start())
            .next_back()
            .map(|(_, &lvl)| lvl)
            .unwrap_or(Size::ZERO);
        for (_, &lvl) in self.steps.range(iv.start()..iv.end()) {
            if lvl > max {
                max = lvl;
            }
        }
        max
    }

    fn level_at(&self, t: Time) -> Size {
        self.steps
            .range(..=t)
            .next_back()
            .map(|(_, &lvl)| lvl)
            .unwrap_or(Size::ZERO)
    }
}

/// Coordinate-compressed segment tree with lazy range-add / range-max.
///
/// Construct with the sorted, deduplicated list of *all* event times that
/// will ever be used as interval endpoints. Intervals passed to
/// [`LevelProfile::add`] / [`LevelProfile::max_in`] must start and end on
/// those coordinates (this holds by construction for offline packers, which
/// know every arrival/departure up front). `level_at` accepts arbitrary
/// times within the coordinate range.
#[derive(Clone, Debug)]
pub struct SegTreeProfile {
    coords: Vec<Time>,
    /// max over subtree, in raw size units
    tree: Vec<u64>,
    /// pending add per node
    lazy: Vec<u64>,
    /// number of elementary segments (leaves)
    n: usize,
}

impl SegTreeProfile {
    /// Builds a zero profile over the given sorted, deduplicated
    /// coordinates. With `c` coordinates there are `c − 1` elementary
    /// segments.
    ///
    /// # Panics
    /// If `coords` is unsorted, contains duplicates, or has fewer than two
    /// entries.
    pub fn new(coords: Vec<Time>) -> Self {
        assert!(coords.len() >= 2, "need at least one elementary segment");
        assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "coords must be strictly increasing"
        );
        let n = coords.len() - 1;
        SegTreeProfile {
            coords,
            tree: vec![0; 4 * n],
            lazy: vec![0; 4 * n],
            n,
        }
    }

    /// Convenience: builds from arbitrary (unsorted, duplicated) times.
    pub fn from_times(mut times: Vec<Time>) -> Self {
        times.sort_unstable();
        times.dedup();
        Self::new(times)
    }

    fn coord_index(&self, t: Time) -> usize {
        self.coords
            .binary_search(&t)
            .expect("time not in coordinate set")
    }

    fn push_down(&mut self, node: usize) {
        let add = self.lazy[node];
        if add != 0 {
            for child in [2 * node, 2 * node + 1] {
                self.tree[child] += add;
                self.lazy[child] += add;
            }
            self.lazy[node] = 0;
        }
    }

    fn add_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, v: u64) {
        if r <= lo || hi <= l {
            return;
        }
        if l <= lo && hi <= r {
            self.tree[node] += v;
            self.lazy[node] += v;
            return;
        }
        self.push_down(node);
        let mid = (lo + hi) / 2;
        self.add_rec(2 * node, lo, mid, l, r, v);
        self.add_rec(2 * node + 1, mid, hi, l, r, v);
        self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
    }
}

impl LevelProfile for SegTreeProfile {
    fn add(&mut self, iv: Interval, size: Size) {
        let l = self.coord_index(iv.start());
        let r = self.coord_index(iv.end());
        let n = self.n;
        self.add_rec(1, 0, n, l, r, size.raw());
    }

    fn max_in(&self, iv: Interval) -> Size {
        let l = self.coord_index(iv.start());
        let r = self.coord_index(iv.end());
        let n = self.n;
        // Read-only max query: descend with an explicit stack, carrying
        // ancestors' pending lazy adds instead of pushing them down, so
        // queries take &self.
        let mut best: u64 = 0;
        // (node, lo, hi, pending add from ancestors)
        let mut stack = vec![(1usize, 0usize, n, 0u64)];
        while let Some((node, lo, hi, pend)) = stack.pop() {
            if r <= lo || hi <= l {
                continue;
            }
            if l <= lo && hi <= r {
                best = best.max(self.tree[node] + pend);
                continue;
            }
            let pend = pend + self.lazy[node];
            let mid = (lo + hi) / 2;
            stack.push((2 * node, lo, mid, pend));
            stack.push((2 * node + 1, mid, hi, pend));
        }
        Size::from_raw(best)
    }

    fn level_at(&self, t: Time) -> Size {
        // Locate the elementary segment containing t.
        let idx = match self.coords.binary_search(&t) {
            Ok(i) => i,
            Err(i) => {
                if i == 0 || i > self.n {
                    return Size::ZERO;
                }
                i - 1
            }
        };
        if idx >= self.n {
            return Size::ZERO;
        }
        let iv = Interval::of(self.coords[idx], self.coords[idx + 1]);
        self.max_in(iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<P: LevelProfile>(p: &mut P) {
        let s = |f: f64| Size::from_f64(f);
        p.add(Interval::of(0, 10), s(0.5));
        p.add(Interval::of(5, 20), s(0.25));
        p.add(Interval::of(15, 30), s(0.5));

        assert_eq!(p.level_at(0), s(0.5));
        assert_eq!(p.level_at(5), s(0.75));
        assert_eq!(p.level_at(9), s(0.75));
        assert_eq!(p.level_at(10), s(0.25));
        assert_eq!(p.level_at(15), s(0.75));
        assert_eq!(p.level_at(20), s(0.5));
        assert_eq!(p.level_at(30), Size::ZERO);

        assert_eq!(p.max_in(Interval::of(0, 5)), s(0.5));
        assert_eq!(p.max_in(Interval::of(0, 30)), s(0.75));
        assert_eq!(p.max_in(Interval::of(10, 15)), s(0.25));
        assert_eq!(p.max_in(Interval::of(20, 30)), s(0.5));

        assert!(p.fits(Interval::of(10, 15), s(0.75), Size::CAPACITY));
        assert!(!p.fits(Interval::of(10, 16), s(0.75), Size::CAPACITY));
    }

    #[test]
    fn btree_profile_basic() {
        let mut p = BTreeProfile::new();
        exercise(&mut p);
    }

    #[test]
    fn segtree_profile_basic() {
        let mut p = SegTreeProfile::from_times(vec![0, 5, 10, 15, 16, 20, 30]);
        exercise(&mut p);
    }

    #[test]
    fn backends_agree_randomized() {
        use std::collections::HashSet;
        // Deterministic pseudo-random exercise without external deps.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coords: HashSet<Time> = HashSet::new();
        let mut ops = Vec::new();
        for _ in 0..200 {
            let a = (next() % 1000) as Time;
            let b = a + 1 + (next() % 100) as Time;
            let s = Size::from_raw(next() % (Size::SCALE / 4));
            coords.insert(a);
            coords.insert(b);
            ops.push((Interval::of(a, b), s));
        }
        let mut coords: Vec<Time> = coords.into_iter().collect();
        coords.sort_unstable();

        let mut bt = BTreeProfile::new();
        let mut st = SegTreeProfile::new(coords.clone());
        for (iv, s) in &ops {
            bt.add(*iv, *s);
            st.add(*iv, *s);
        }
        // Compare max over every coordinate-aligned window and level at
        // every coordinate.
        for w in coords.windows(2) {
            let iv = Interval::of(w[0], w[1]);
            assert_eq!(bt.max_in(iv), st.max_in(iv), "window {iv}");
            assert_eq!(bt.level_at(w[0]), st.level_at(w[0]));
        }
        let full = Interval::of(coords[0], *coords.last().unwrap());
        assert_eq!(bt.max_in(full), st.max_in(full));
    }

    #[test]
    fn btree_empty_queries() {
        let p = BTreeProfile::new();
        assert_eq!(p.level_at(42), Size::ZERO);
        assert_eq!(p.max_in(Interval::of(0, 100)), Size::ZERO);
    }

    #[test]
    fn segtree_level_outside_range() {
        let p = SegTreeProfile::from_times(vec![10, 20]);
        assert_eq!(p.level_at(5), Size::ZERO);
        assert_eq!(p.level_at(25), Size::ZERO);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn segtree_rejects_duplicates() {
        let _ = SegTreeProfile::new(vec![0, 0, 1]);
    }
}
