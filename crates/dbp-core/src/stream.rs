//! Streaming online packing: feed arrivals one at a time.
//!
//! [`crate::OnlineEngine::run`] takes a whole [`crate::Instance`] — fine
//! for experiments, but a real scheduler receives jobs as they arrive and
//! cannot hand over the future. [`StreamingSession`] is the incremental
//! twin: call [`StreamingSession::arrive`] per job (non-decreasing
//! arrival times), and the session returns the bin id the packer chose;
//! call [`StreamingSession::finish`] to flush remaining departures and
//! obtain the same [`OnlineRun`] the batch engine produces.
//!
//! The batch engine and the streaming session are verified to produce
//! identical runs on identical input order (see tests) — the batch path
//! is a thin convenience over this one conceptually, and both enforce the
//! same rules: capacity, bin closure on last departure, no migration.
//!
//! ## Observability
//!
//! The session is generic over a [`PackObserver`] that receives a
//! [`crate::observe::PackEvent`] for every arrival, placement, level
//! change, bin opening, and bin closure. The default [`NoopObserver`]
//! compiles all emission sites away (`O::ENABLED` is an associated
//! constant), so unobserved sessions cost exactly what they did before
//! the hooks existed. Attach an observer with
//! [`StreamingSession::with_observer`] or
//! [`crate::OnlineEngine::run_observed`].
//!
//! ## Hot-path complexity
//!
//! The session is built for unbounded streams: every per-arrival and
//! per-departure operation is O(1) expected (hash lookups) in the live
//! state, never in the stream's history. Bin records are indexed directly
//! by [`BinId`] (bins are numbered in opening order), the open set is the
//! indexed [`crate::openbins::OpenBins`] slab, and `placement` entries are
//! pruned when their item departs — see `docs/performance.md`.
//!
//! ## The id-watermark contract
//!
//! Duplicate item-id rejection does not keep every id ever seen. The
//! session maintains a *watermark* `w` such that every id `< w` has been
//! seen, plus the exact set of seen ids `≥ w`. Feed ids in roughly
//! increasing order (the natural choice for generated streams) and that
//! overflow set stays tiny — O(1) memory for a monotone id stream — while
//! duplicate detection stays exact for *any* id order. The current values
//! are observable via [`StreamingSession::id_watermark`] and
//! [`StreamingSession::dedupe_backlog`].

use crate::error::DbpError;
use crate::interval::Time;
use crate::item::{Item, ItemId};
use crate::observe::{FitDecision, NoopObserver, OpKind, PackEvent, PackObserver};
use crate::online::{
    ActiveItem, BinRecord, ClairvoyanceMode, Decision, ItemView, OnlinePacker, OnlineRun, OpenBin,
    PackerState,
};
use crate::openbins::OpenBins;
use crate::packing::{BinId, Packing};
use crate::size::Size;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Snapshot format version written by [`StreamingSession::snapshot`] and
/// accepted by [`StreamingSession::restore`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// One open bin's state inside a [`SessionSnapshot`].
///
/// Bins are listed in opening order; `items` preserves the bin's exact
/// internal item order (which is history-dependent because departures use
/// `swap_remove`, and which packers can observe via
/// [`OpenBin::items`]), so rebuilding bins from a snapshot reproduces
/// packer-visible state bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinSnapshot {
    /// The bin id (global opening order).
    pub id: BinId,
    /// When the bin was opened.
    pub opened_at: Time,
    /// The packer-supplied category tag.
    pub tag: u64,
    /// The resident items, in the bin's exact internal order.
    pub items: Vec<ActiveItem>,
}

/// A versioned, self-contained snapshot of a [`StreamingSession`]'s
/// state, sufficient to resume the stream bit-identically.
///
/// What is *not* captured: the [`ClairvoyanceMode`] (it may hold an
/// arbitrary estimator closure) and the packer object itself — the caller
/// reconstructs both and [`StreamingSession::restore`] verifies the
/// packer's name matches before handing it its saved [`PackerState`].
/// Hash-based collections are stored as sorted vectors and the departure
/// heap as a sorted list, so equal sessions produce byte-equal encodings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// `packer.name()` at snapshot time; restore refuses a mismatch.
    pub packer: String,
    /// The packer's saved internal state.
    pub packer_state: PackerState,
    /// Open bins in opening order.
    pub open_bins: Vec<BinSnapshot>,
    /// Full bin history (indexed by bin id).
    pub records: Vec<BinRecord>,
    /// Pending departures as sorted `(time, item)` pairs, cancelled
    /// entries already filtered out.
    pub departures: Vec<(Time, ItemId)>,
    /// The next bin id to assign.
    pub next_bin: u32,
    /// The session clock (last arrival / advance time).
    pub last_arrival: Option<Time>,
    /// Id-dedupe watermark (every id below it has been seen).
    pub watermark: u32,
    /// Seen ids at or above the watermark, sorted.
    pub above: Vec<u32>,
}

/// Outcome of a capacity-capped arrival
/// ([`StreamingSession::arrive_capped`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The item was admitted and placed in this bin.
    Placed(BinId),
    /// The packer needed a new server but the fleet cap was reached; the
    /// item was **not** admitted and no session state changed (beyond the
    /// clock advancing to the arrival time). The same item id may be
    /// re-presented later.
    Shed,
}

/// An in-progress online packing over a stream of arrivals.
pub struct StreamingSession<'p, O: PackObserver = NoopObserver> {
    mode: ClairvoyanceMode,
    packer: &'p mut dyn OnlinePacker,
    obs: O,
    open: OpenBins,
    /// Indexed by `BinId` — bins are numbered in opening order, so the
    /// record for bin `b` is `records[b.0 as usize]`.
    records: Vec<BinRecord>,
    /// Bin of each *live* item; entries are pruned at departure.
    placement: HashMap<ItemId, BinId>,
    departures: BinaryHeap<Reverse<(Time, ItemId)>>,
    next_bin: u32,
    last_arrival: Option<Time>,
    /// Every id `< watermark` has been seen.
    watermark: u32,
    /// The exact set of seen ids `≥ watermark`.
    above: HashSet<u32>,
    /// Raw ids displaced by [`StreamingSession::fail_bin`] whose stale
    /// departure-heap entries must be skipped when they surface.
    cancelled: HashSet<u32>,
}

impl<'p> StreamingSession<'p, NoopObserver> {
    /// Starts an unobserved session; the packer's [`OnlinePacker::reset`]
    /// is invoked.
    pub fn new(mode: ClairvoyanceMode, packer: &'p mut dyn OnlinePacker) -> Self {
        Self::with_observer(mode, packer, NoopObserver)
    }

    /// Unobserved [`StreamingSession::restore_with_observer`].
    pub fn restore(
        mode: ClairvoyanceMode,
        packer: &'p mut dyn OnlinePacker,
        snap: &SessionSnapshot,
    ) -> Result<Self, DbpError> {
        Self::restore_with_observer(mode, packer, snap, NoopObserver)
    }
}

impl<'p, O: PackObserver> StreamingSession<'p, O> {
    /// Starts a session that reports every packing event to `obs` (pass
    /// `&mut observer` to keep ownership). The packer's
    /// [`OnlinePacker::reset`] is invoked.
    pub fn with_observer(mode: ClairvoyanceMode, packer: &'p mut dyn OnlinePacker, obs: O) -> Self {
        packer.reset();
        StreamingSession {
            mode,
            packer,
            obs,
            open: OpenBins::new(),
            records: Vec::new(),
            placement: HashMap::new(),
            departures: BinaryHeap::new(),
            next_bin: 0,
            last_arrival: None,
            watermark: 0,
            above: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Captures the session's full state as a [`SessionSnapshot`]. Can be
    /// taken between any two calls; resuming via
    /// [`StreamingSession::restore`] and feeding the remaining stream
    /// produces a final [`OnlineRun`] bit-identical to an uninterrupted
    /// run (verified across the whole roster in `dbp-resilience`).
    pub fn snapshot(&self) -> SessionSnapshot {
        let open_bins = self
            .open
            .iter()
            .map(|b| BinSnapshot {
                id: b.id(),
                opened_at: b.opened_at(),
                tag: b.tag(),
                items: b.items().to_vec(),
            })
            .collect();
        // Stale heap entries for displaced items are filtered out here so
        // the restored session starts with an empty cancelled set.
        let mut departures: Vec<(Time, ItemId)> = self
            .departures
            .iter()
            .filter(|Reverse((_, id))| !self.cancelled.contains(&id.0))
            .map(|Reverse(p)| *p)
            .collect();
        departures.sort_unstable();
        let mut above: Vec<u32> = self.above.iter().copied().collect();
        above.sort_unstable();
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            packer: self.packer.name(),
            packer_state: self.packer.save_state(),
            open_bins,
            records: self.records.clone(),
            departures,
            next_bin: self.next_bin,
            last_arrival: self.last_arrival,
            watermark: self.watermark,
            above,
        }
    }

    /// Reconstructs a session from a [`SessionSnapshot`], validating the
    /// snapshot as it goes: version and packer name must match, records
    /// must be indexed by bin id, every open bin must respect capacity,
    /// and live items / pending departures must correspond one-to-one.
    /// The packer is `reset()` and then handed its saved state.
    pub fn restore_with_observer(
        mode: ClairvoyanceMode,
        packer: &'p mut dyn OnlinePacker,
        snap: &SessionSnapshot,
        obs: O,
    ) -> Result<Self, DbpError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "unsupported snapshot version {} (this build reads version {SNAPSHOT_VERSION})",
                    snap.version
                ),
            });
        }
        if packer.name() != snap.packer {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "snapshot was taken with packer '{}' but '{}' was supplied",
                    snap.packer,
                    packer.name()
                ),
            });
        }
        if snap.records.len() != snap.next_bin as usize {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "snapshot has {} bin records but next_bin is {}",
                    snap.records.len(),
                    snap.next_bin
                ),
            });
        }
        for (i, r) in snap.records.iter().enumerate() {
            if r.id.0 as usize != i {
                return Err(DbpError::InvalidParameter {
                    what: format!("bin record {i} carries id {:?}", r.id),
                });
            }
        }
        packer.reset();
        packer.restore_state(&snap.packer_state)?;
        let mut open = OpenBins::new();
        let mut placement = HashMap::new();
        // Re-inserting bins in opening order rebuilds both the global and
        // the per-tag intrusive order lists exactly (per-tag order is a
        // subsequence of global order); slab slot indices may differ from
        // the original session's but are not observable.
        for b in &snap.open_bins {
            if b.id.0 >= snap.next_bin || open.get(b.id).is_some() {
                return Err(DbpError::InvalidParameter {
                    what: format!("snapshot open bin {:?} is out of range or repeated", b.id),
                });
            }
            let mut items = b.items.iter().copied();
            let first = items.next().ok_or_else(|| DbpError::InvalidParameter {
                what: format!("snapshot open bin {:?} holds no items", b.id),
            })?;
            let mut bin = OpenBin::new(b.id, b.opened_at, b.tag, first);
            if placement.insert(first.id, b.id).is_some() {
                return Err(DbpError::DuplicateItemId { id: first.id.0 });
            }
            for a in items {
                bin.push_item(a, a.size)?;
                if placement.insert(a.id, b.id).is_some() {
                    return Err(DbpError::DuplicateItemId { id: a.id.0 });
                }
            }
            open.insert(bin);
        }
        let mut departures = BinaryHeap::with_capacity(snap.departures.len());
        for &(t, id) in &snap.departures {
            if !placement.contains_key(&id) {
                return Err(DbpError::InvalidParameter {
                    what: format!("snapshot pending departure for non-live item {id}"),
                });
            }
            departures.push(Reverse((t, id)));
        }
        if snap.departures.len() != placement.len() {
            return Err(DbpError::InvalidParameter {
                what: format!(
                    "snapshot has {} pending departures for {} live items",
                    snap.departures.len(),
                    placement.len()
                ),
            });
        }
        Ok(StreamingSession {
            mode,
            packer,
            obs,
            open,
            records: snap.records.clone(),
            placement,
            departures,
            next_bin: snap.next_bin,
            last_arrival: snap.last_arrival,
            watermark: snap.watermark,
            above: snap.above.iter().copied().collect(),
            cancelled: HashSet::new(),
        })
    }

    fn visible_departure(&self, item: &Item) -> Option<Time> {
        match &self.mode {
            ClairvoyanceMode::Clairvoyant => Some(item.departure()),
            ClairvoyanceMode::NonClairvoyant => None,
            ClairvoyanceMode::Noisy(f) => Some(f(item).max(item.arrival() + 1)),
        }
    }

    /// Processes all departures up to and including time `t`. Each
    /// departure is O(1): the item's bin comes from the pruned
    /// `placement` map and the bin itself from the indexed open set.
    fn close_until(&mut self, t: Time) -> Result<(), DbpError> {
        while let Some(&Reverse((dt, id))) = self.departures.peek() {
            if dt > t {
                break;
            }
            self.departures.pop();
            // Items displaced by a server failure never depart normally;
            // their heap entries are stale and simply skipped.
            if self.cancelled.remove(&id.0) {
                continue;
            }
            let bin_id = self
                .placement
                .remove(&id)
                .ok_or_else(|| DbpError::Internal {
                    what: format!("departing item {id} has no live placement"),
                })?;
            // Routed through OpenBins so its fit indexes see the level
            // change; the level comes back from the same call, so the
            // observed path pays no second id lookup per departure.
            let (became_empty, level_after) =
                self.open
                    .remove_from(bin_id, id)
                    .ok_or_else(|| DbpError::Internal {
                        what: format!("departing item {id} maps to a closed bin"),
                    })??;
            if became_empty {
                self.open.remove(bin_id).expect("bin was open");
                let rec = &mut self.records[bin_id.0 as usize];
                rec.closed_at = dt;
                if O::ENABLED {
                    let (opened_at, items) = (rec.opened_at, rec.items.len());
                    self.obs.on_event(&PackEvent::LevelChanged {
                        bin: bin_id,
                        at: dt,
                        level: Size::ZERO,
                        open_bins: self.open.len(),
                    });
                    self.obs.on_event(&PackEvent::BinClosed {
                        bin: bin_id,
                        at: dt,
                        opened_at,
                        items,
                    });
                }
            } else if O::ENABLED {
                let open_bins = self.open.len();
                self.obs.on_event(&PackEvent::LevelChanged {
                    bin: bin_id,
                    at: dt,
                    level: level_after,
                    open_bins,
                });
            }
        }
        Ok(())
    }

    /// The number of currently open bins.
    pub fn open_bins(&self) -> usize {
        self.open.len()
    }

    /// The number of items currently resident in open bins. The
    /// `placement` map holds exactly these (departed items are pruned),
    /// so live memory tracks the *concurrent* load, not stream length.
    pub fn live_items(&self) -> usize {
        self.placement.len()
    }

    /// All item ids below this value have been seen (watermark dedupe
    /// contract; see the module docs).
    pub fn id_watermark(&self) -> u32 {
        self.watermark
    }

    /// Number of seen ids at or above the watermark still held for exact
    /// duplicate detection. Stays O(1) for monotone id streams.
    pub fn dedupe_backlog(&self) -> usize {
        self.above.len()
    }

    /// A cheap estimate of the session's live working-state heap
    /// footprint: the open-bin slab plus the live-placement map, the
    /// pending-departure heap, and the dedupe overflow set. Excludes the
    /// append-only bin history (`records`), which is run *output*, not
    /// working state. O(open bins); the engine benchmark samples this as
    /// its RSS proxy.
    pub fn approx_live_bytes(&self) -> usize {
        use std::mem::size_of;
        self.open.approx_bytes()
            + self.placement.capacity() * (size_of::<ItemId>() + size_of::<BinId>())
            + self.departures.capacity() * size_of::<Reverse<(Time, ItemId)>>()
            + self.above.capacity() * size_of::<u32>()
            + self.cancelled.capacity() * size_of::<u32>()
    }

    /// Advances simulated time to `t` without an arrival: departures up
    /// to and including `t` are processed and empty bins close. Lets an
    /// integrator observe fleet drain during idle periods (e.g. to emit
    /// scale-down signals) instead of waiting for the next arrival.
    ///
    /// `t` must be at least the last arrival time; subsequent arrivals
    /// must not precede `t`.
    pub fn advance_to(&mut self, t: Time) -> Result<(), DbpError> {
        if let Some(last) = self.last_arrival {
            if t < last {
                return Err(DbpError::BadDecision {
                    what: format!("cannot advance to {t} before last arrival {last}"),
                });
            }
        }
        self.last_arrival = Some(t);
        self.close_until(t)
    }

    /// Rejects arrivals that would move the session clock backwards.
    fn check_order(&self, now: Time) -> Result<(), DbpError> {
        if let Some(last) = self.last_arrival {
            if now < last {
                return Err(DbpError::BadDecision {
                    what: format!("arrivals must be non-decreasing: {now} after {last}"),
                });
            }
        }
        Ok(())
    }

    /// Commits an id into the dedupe state, rejecting duplicates.
    fn note_id(&mut self, raw_id: u32) -> Result<(), DbpError> {
        if raw_id < self.watermark || !self.above.insert(raw_id) {
            return Err(DbpError::DuplicateItemId { id: raw_id });
        }
        // Advance the watermark over contiguously-seen ids so monotone
        // streams keep the overflow set empty. `u32::MAX` cannot be
        // absorbed (the watermark would need to be MAX + 1), so it simply
        // stays in the overflow set.
        while self.watermark < u32::MAX && self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        Ok(())
    }

    /// Emits the arrival (and noisy-estimate) events for an admitted item.
    fn emit_arrival(&mut self, item: &Item, visible_dep: Option<Time>) {
        if O::ENABLED {
            self.obs.on_event(&PackEvent::ItemArrived {
                id: item.id(),
                size: item.size(),
                at: item.arrival(),
                departure: item.departure(),
                visible_departure: visible_dep,
            });
            if matches!(self.mode, ClairvoyanceMode::Noisy(_)) {
                self.obs.on_event(&PackEvent::EstimateUsed {
                    id: item.id(),
                    estimate: visible_dep.expect("noisy mode always estimates"),
                    actual: item.departure(),
                });
            }
        }
    }

    /// Drains departures due at `now`, then asks the packer for a
    /// decision — the timed core shared by [`StreamingSession::arrive`]
    /// and [`StreamingSession::arrive_capped`].
    ///
    /// Clock reads are the dominant observer cost (tens of nanoseconds
    /// each), so the timed path is shaped to minimise them: the
    /// sweep-end timestamp doubles as the decide-start timestamp (three
    /// reads per timed arrival, not four), and a sweep with no
    /// departures due is not timed at all (two reads — the common
    /// case). Consequently [`RunMetrics::depart_ns`] samples only sweeps
    /// that had at least one departure to process.
    ///
    /// [`RunMetrics::depart_ns`]: ../../dbp_telemetry/struct.RunMetrics.html
    fn sweep_and_decide(
        &mut self,
        item: &Item,
        visible_dep: Option<Time>,
        now: Time,
    ) -> Result<(Decision, u64), DbpError> {
        let view = ItemView {
            id: item.id(),
            size: item.size(),
            arrival: item.arrival(),
            departure: visible_dep,
        };
        if !(O::ENABLED && self.obs.wants_timing()) {
            self.close_until(now)?;
            return Ok((self.packer.place(&view, &self.open), 0));
        }
        let sweep_due = self
            .departures
            .peek()
            .is_some_and(|&Reverse((dt, _))| dt <= now);
        let decide_start = if sweep_due {
            let sweep_start = std::time::Instant::now();
            self.close_until(now)?;
            let sweep_end = std::time::Instant::now();
            self.obs.on_op(
                OpKind::Departures,
                sweep_end.duration_since(sweep_start).as_nanos() as u64,
            );
            sweep_end
        } else {
            std::time::Instant::now()
        };
        let decision = self.packer.place(&view, &self.open);
        Ok((decision, decide_start.elapsed().as_nanos() as u64))
    }

    /// Feeds one arrival. Arrival times must be non-decreasing and item
    /// ids unique; the chosen bin id is returned.
    pub fn arrive(&mut self, item: &Item) -> Result<BinId, DbpError> {
        let now = item.arrival();
        self.check_order(now)?;
        self.note_id(item.id().0)?;
        self.last_arrival = Some(now);
        let visible_dep = self.visible_departure(item);
        let (decision, decide_ns) = self.sweep_and_decide(item, visible_dep, now)?;
        self.emit_arrival(item, visible_dep);
        self.commit_decision(item, visible_dep, decision, decide_ns)
    }

    /// Feeds one arrival under a fleet-size cap (graceful degradation).
    ///
    /// Works like [`StreamingSession::arrive`] except that when the
    /// packer's decision would open a new server while `max_open_bins`
    /// are already open, the item is **shed**: an
    /// [`PackEvent::ArrivalShed`] event is emitted, no state changes
    /// (beyond the clock advancing to the arrival time and departures up
    /// to it closing), and [`Admission::Shed`] is returned. The caller's
    /// admission policy decides whether to queue the job for retry or
    /// reject it; the same item id may be re-presented later. Decisions
    /// that reuse an open bin are always admitted.
    ///
    /// Note that the packer is consulted *before* the item is committed,
    /// so a stateful packer may observe a shed arrival (e.g. CBDT pins
    /// its classification epoch to the first arrival it sees); this is
    /// deterministic and harmless for the roster packers.
    pub fn arrive_capped(
        &mut self,
        item: &Item,
        max_open_bins: usize,
    ) -> Result<Admission, DbpError> {
        let now = item.arrival();
        self.check_order(now)?;
        let raw_id = item.id().0;
        // Duplicate check only — the id is committed after admission so a
        // shed item's id stays usable.
        if raw_id < self.watermark || self.above.contains(&raw_id) {
            return Err(DbpError::DuplicateItemId { id: raw_id });
        }
        self.last_arrival = Some(now);
        let visible_dep = self.visible_departure(item);
        let (decision, decide_ns) = self.sweep_and_decide(item, visible_dep, now)?;
        if matches!(decision, Decision::New { .. }) && self.open.len() >= max_open_bins {
            if O::ENABLED {
                self.obs.on_event(&PackEvent::ArrivalShed {
                    id: item.id(),
                    at: now,
                    open_bins: self.open.len(),
                });
            }
            return Ok(Admission::Shed);
        }
        self.note_id(raw_id)?;
        self.emit_arrival(item, visible_dep);
        self.commit_decision(item, visible_dep, decision, decide_ns)
            .map(Admission::Placed)
    }

    /// Applies a placement decision and commits the item into the
    /// session's live state (shared tail of [`StreamingSession::arrive`]
    /// and [`StreamingSession::arrive_capped`]).
    fn commit_decision(
        &mut self,
        item: &Item,
        visible_dep: Option<Time>,
        decision: Decision,
        decide_ns: u64,
    ) -> Result<BinId, DbpError> {
        let now = item.arrival();
        let active = ActiveItem {
            id: item.id(),
            size: item.size(),
            departure: visible_dep,
        };
        let bin_id = match decision {
            Decision::Existing(bid) => {
                let level = self
                    .open
                    .push_to(bid, active, item.size())
                    .ok_or_else(|| DbpError::BadDecision {
                        what: format!("bin {bid:?} is not open (item {})", item.id()),
                    })??;
                if O::ENABLED {
                    // The packer reports how many candidates its `place`
                    // call actually probed — linear scans count bins
                    // visited, indexed packers count index nodes
                    // descended. Only packers that track neither fall
                    // back to the candidate-pool size; that fallback is
                    // out of the roster on purpose, because it would
                    // silently inflate scan-depth histograms the moment
                    // a packer answers from an index instead of a walk.
                    // Both reads are O(1) here — the engine must not pay
                    // an O(fleet) scan per placement just because an
                    // observer is attached.
                    let open_bins = self.open.len();
                    let scanned = self.packer.last_scanned().unwrap_or(open_bins);
                    self.obs.on_event(&PackEvent::PlacementDecided {
                        id: item.id(),
                        bin: bid,
                        fit_rule: FitDecision::Reused,
                        candidates_scanned: scanned,
                        decide_ns,
                    });
                    self.obs.on_event(&PackEvent::LevelChanged {
                        bin: bid,
                        at: now,
                        level,
                        open_bins,
                    });
                }
                bid
            }
            Decision::New { tag } => {
                let bid = BinId(self.next_bin);
                self.next_bin += 1;
                let pool = self.open.len();
                self.open.insert(OpenBin::new(bid, now, tag, active));
                self.records.push(BinRecord {
                    id: bid,
                    opened_at: now,
                    closed_at: now,
                    tag,
                    items: Vec::new(),
                });
                if O::ENABLED {
                    let rejected = self.packer.last_scanned().unwrap_or(pool);
                    self.obs.on_event(&PackEvent::BinOpened {
                        bin: bid,
                        at: now,
                        tag,
                    });
                    self.obs.on_event(&PackEvent::PlacementDecided {
                        id: item.id(),
                        bin: bid,
                        fit_rule: FitDecision::OpenedNew,
                        candidates_scanned: rejected,
                        decide_ns,
                    });
                    self.obs.on_event(&PackEvent::LevelChanged {
                        bin: bid,
                        at: now,
                        level: item.size(),
                        open_bins: pool + 1,
                    });
                }
                bid
            }
        };
        self.placement.insert(item.id(), bin_id);
        self.records[bin_id.0 as usize].items.push(item.id());
        self.departures.push(Reverse((item.departure(), item.id())));
        Ok(bin_id)
    }

    /// Kills an open server at time `at` (fault injection).
    ///
    /// Departures up to and including `at` are processed first (so a
    /// failure cannot displace items that had already left), then the bin
    /// is force-closed: its record's `closed_at` becomes the failure time
    /// and its still-resident items are removed from the live state and
    /// returned so the caller's recovery policy can resubmit or drop
    /// them. Their pending departure entries are cancelled. Emits
    /// [`PackEvent::BinFailed`] (instead of [`PackEvent::BinClosed`]).
    ///
    /// `at` must be at least the last arrival time; subsequent arrivals
    /// must not precede `at`.
    pub fn fail_bin(&mut self, bin: BinId, at: Time) -> Result<Vec<ActiveItem>, DbpError> {
        if let Some(last) = self.last_arrival {
            if at < last {
                return Err(DbpError::BadDecision {
                    what: format!("cannot fail a bin at {at} before last arrival {last}"),
                });
            }
        }
        self.last_arrival = Some(at);
        self.close_until(at)?;
        let state = self.open.remove(bin).ok_or_else(|| DbpError::BadDecision {
            what: format!("bin {bin:?} is not open at {at}"),
        })?;
        let displaced: Vec<ActiveItem> = state.items().to_vec();
        for a in &displaced {
            self.placement.remove(&a.id);
            self.cancelled.insert(a.id.0);
        }
        let rec = &mut self.records[bin.0 as usize];
        rec.closed_at = at;
        if O::ENABLED {
            self.obs.on_event(&PackEvent::BinFailed {
                bin,
                at,
                opened_at: rec.opened_at,
                displaced: displaced.len(),
                open_bins: self.open.len(),
            });
        }
        Ok(displaced)
    }

    /// Advances the session clock to `at`, closing every bin whose last
    /// item departs at or before it. Fault injectors call this before
    /// inspecting [`StreamingSession::open_set`] so victims are picked
    /// among the bins actually alive at the fault instant, not ones that
    /// had already drained.
    pub fn advance(&mut self, at: Time) -> Result<(), DbpError> {
        if let Some(last) = self.last_arrival {
            if at < last {
                return Err(DbpError::BadDecision {
                    what: format!("cannot advance to {at} before last arrival {last}"),
                });
            }
        }
        self.last_arrival = Some(at);
        self.close_until(at)
    }

    /// The currently open bins (fault injectors use this to pick
    /// victims; same view the packer sees).
    pub fn open_set(&self) -> &OpenBins {
        &self.open
    }

    /// The session clock: the latest arrival / advance / failure time.
    pub fn now(&self) -> Option<Time> {
        self.last_arrival
    }

    /// Flushes all remaining departures and returns the finished run.
    pub fn finish(self) -> Result<OnlineRun, DbpError> {
        self.finish_with_observer().map(|(run, _)| run)
    }

    /// Like [`StreamingSession::finish`], but also hands back the owned
    /// observer so callers that moved one in (rather than borrowing via
    /// `&mut obs`) can read its accumulated state — e.g. a per-shard
    /// counters/metrics bundle in `dbp-shard`.
    pub fn finish_with_observer(mut self) -> Result<(OnlineRun, O), DbpError> {
        if O::ENABLED && self.obs.wants_timing() {
            let started = std::time::Instant::now();
            self.close_until(Time::MAX)?;
            self.obs
                .on_op(OpKind::Finish, started.elapsed().as_nanos() as u64);
        } else {
            self.close_until(Time::MAX)?;
        }
        debug_assert!(self.open.is_empty());
        debug_assert!(self.placement.is_empty(), "placement pruned on departure");
        debug_assert!(self.cancelled.is_empty(), "stale entries all skipped");
        let usage: u128 = self.records.iter().map(|r| r.usage()).sum();
        let mut bins = vec![Vec::new(); self.next_bin as usize];
        for r in &self.records {
            bins[r.id.0 as usize] = r.items.clone();
        }
        Ok((
            OnlineRun {
                packing: Packing::from_bins(bins),
                usage,
                bins: self.records,
            },
            self.obs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::observe::EventLog;
    use crate::online::OnlineEngine;
    use crate::size::Size;

    struct FirstFit;
    impl OnlinePacker for FirstFit {
        fn name(&self) -> String {
            "ff".into()
        }
        fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
            open.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::NEW)
        }
    }

    fn sample() -> Instance {
        Instance::from_triples(&[
            (0.5, 0, 10),
            (0.5, 2, 8),
            (0.5, 3, 9),
            (0.9, 5, 20),
            (0.1, 12, 30),
        ])
    }

    #[test]
    fn streaming_matches_batch_engine() {
        let inst = sample();
        let batch = OnlineEngine::clairvoyant()
            .run(&inst, &mut FirstFit)
            .unwrap();
        let mut packer = FirstFit;
        let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for r in inst.items() {
            session.arrive(r).unwrap();
        }
        let streamed = session.finish().unwrap();
        assert_eq!(streamed.usage, batch.usage);
        assert_eq!(streamed.packing, batch.packing);
        assert_eq!(streamed.bins.len(), batch.bins.len());
    }

    #[test]
    fn rejects_out_of_order_arrivals() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::HALF, 10, 20)).unwrap();
        let err = s.arrive(&Item::new(1, Size::HALF, 5, 20)).unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::HALF, 0, 5)).unwrap();
        let err = s.arrive(&Item::new(0, Size::HALF, 1, 6)).unwrap_err();
        assert!(matches!(err, DbpError::DuplicateItemId { id: 0 }));
    }

    #[test]
    fn open_bins_reflects_live_state() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        assert_eq!(s.open_bins(), 0);
        s.arrive(&Item::new(0, Size::from_f64(0.9), 0, 10)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.9), 1, 5)).unwrap();
        assert_eq!(s.open_bins(), 2);
        // Arriving at t=6 first closes the bin whose item left at 5.
        s.arrive(&Item::new(2, Size::from_f64(0.05), 6, 8)).unwrap();
        assert_eq!(s.open_bins(), 1);
        let run = s.finish().unwrap();
        assert_eq!(run.bins_opened(), 2);
    }

    #[test]
    fn advance_to_drains_idle_fleet() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::HALF, 0, 10)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.9), 1, 20)).unwrap();
        assert_eq!(s.open_bins(), 2);
        s.advance_to(10).unwrap();
        assert_eq!(s.open_bins(), 1, "first bin drains at t=10");
        s.advance_to(25).unwrap();
        assert_eq!(s.open_bins(), 0);
        // Cannot go backwards, and later arrivals must respect the clock.
        assert!(s.advance_to(5).is_err());
        assert!(s.arrive(&Item::new(2, Size::HALF, 20, 30)).is_err());
        s.arrive(&Item::new(3, Size::HALF, 30, 40)).unwrap();
        let run = s.finish().unwrap();
        assert_eq!(run.bins_opened(), 3);
    }

    #[test]
    fn returned_bin_ids_match_records() {
        let inst = sample();
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        let mut assigned = Vec::new();
        for r in inst.items() {
            assigned.push((r.id(), s.arrive(r).unwrap()));
        }
        let run = s.finish().unwrap();
        for (item, bin) in assigned {
            assert!(run.packing.bin(bin).contains(&item));
        }
    }

    #[test]
    fn observed_session_emits_consistent_stream() {
        let inst = sample();
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        let mut s =
            StreamingSession::with_observer(ClairvoyanceMode::Clairvoyant, &mut packer, &mut log);
        for r in inst.items() {
            s.arrive(r).unwrap();
        }
        let run = s.finish().unwrap();

        let mut arrived = 0usize;
        let mut placed = 0usize;
        let mut opened = 0usize;
        let mut closed_usage = 0u128;
        let mut closed = 0usize;
        for ev in &log.events {
            match ev {
                PackEvent::ItemArrived { departure, at, .. } => {
                    arrived += 1;
                    assert!(departure > at);
                }
                PackEvent::PlacementDecided { .. } => placed += 1,
                PackEvent::BinOpened { .. } => opened += 1,
                PackEvent::BinClosed { at, opened_at, .. } => {
                    closed += 1;
                    closed_usage += (at - opened_at) as u128;
                }
                _ => {}
            }
        }
        assert_eq!(arrived, inst.len());
        assert_eq!(placed, inst.len());
        assert_eq!(opened, run.bins_opened());
        assert_eq!(closed, run.bins_opened(), "every opened bin closes");
        assert_eq!(closed_usage, run.usage, "closures reconstruct usage");
    }

    #[test]
    fn observed_run_equals_unobserved_run() {
        let inst = sample();
        let batch = OnlineEngine::clairvoyant()
            .run(&inst, &mut FirstFit)
            .unwrap();
        let mut log = EventLog::new();
        let observed = OnlineEngine::clairvoyant()
            .run_observed(&inst, &mut FirstFit, &mut log)
            .unwrap();
        assert_eq!(observed.packing, batch.packing);
        assert_eq!(observed.usage, batch.usage);
        assert!(!log.events.is_empty());
    }

    #[test]
    fn noisy_session_emits_estimate_events() {
        use std::sync::Arc;
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 1, 12)]);
        let mode = ClairvoyanceMode::Noisy(Arc::new(|r: &Item| r.departure() + 5));
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        OnlineEngine::new(mode)
            .run_observed(&inst, &mut packer, &mut log)
            .unwrap();
        let estimates: Vec<_> = log
            .events
            .iter()
            .filter_map(|e| match e {
                PackEvent::EstimateUsed {
                    estimate, actual, ..
                } => Some((*estimate, *actual)),
                _ => None,
            })
            .collect();
        assert_eq!(estimates, vec![(15, 10), (17, 12)]);
    }

    #[test]
    fn long_stream_memory_stays_bounded() {
        // Regression for the pre-indexed engine, whose `seen` set and
        // unpruned `placement` map grew with stream *length*. Live state
        // must track the *concurrent* load: a 200k-item stream with at
        // most 3 overlapping jobs keeps placement at ≤ 3 entries and the
        // dedupe overflow set empty (monotone ids fold into the
        // watermark), while records/usage still cover the full history.
        const N: u32 = 200_000;
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for k in 0..N {
            let t = k as Time;
            s.arrive(&Item::new(k, Size::from_f64(0.4), t, t + 3))
                .unwrap();
            assert!(s.live_items() <= 3, "placement must be pruned (k={k})");
            assert!(s.open_bins() <= 2, "fleet tracks concurrency (k={k})");
            assert_eq!(s.dedupe_backlog(), 0, "monotone ids leave no backlog");
            assert_eq!(s.id_watermark(), k + 1);
        }
        let run = s.finish().unwrap();
        let placed: usize = run.packing.iter_bins().map(|(_, v)| v.len()).sum();
        assert_eq!(placed, N as usize);
        assert!(run.bins_opened() > 10_000, "history is still complete");
    }

    #[test]
    fn out_of_order_ids_drain_into_watermark() {
        // Ids arrive pairwise swapped (1,0,3,2,…): the overflow set holds
        // at most the one id ahead of the watermark and drains as soon as
        // the gap fills. Duplicate detection stays exact throughout.
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for pair in 0..500u32 {
            let (hi, lo) = (2 * pair + 1, 2 * pair);
            let t = pair as Time;
            s.arrive(&Item::new(hi, Size::from_f64(0.1), t, t + 2))
                .unwrap();
            assert_eq!(s.dedupe_backlog(), 1, "hi id waits above the watermark");
            assert_eq!(s.id_watermark(), lo);
            s.arrive(&Item::new(lo, Size::from_f64(0.1), t, t + 2))
                .unwrap();
            assert_eq!(s.dedupe_backlog(), 0, "gap filled, backlog drains");
            assert_eq!(s.id_watermark(), hi + 1);
        }
        // An id far below the watermark is rejected without any set entry.
        let err = s.arrive(&Item::new(7, Size::HALF, 600, 610)).unwrap_err();
        assert!(matches!(err, DbpError::DuplicateItemId { id: 7 }));
        s.finish().unwrap();
    }

    #[test]
    fn snapshot_restore_resumes_bit_identical() {
        // Cut the stream after every prefix length k, resume from the
        // snapshot, and require the finished run to equal the
        // uninterrupted one bit-for-bit.
        let inst = sample();
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for r in inst.items() {
            s.arrive(r).unwrap();
        }
        let full = s.finish().unwrap();
        for k in 0..=inst.len() {
            let mut p1 = FirstFit;
            let mut s1 = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut p1);
            for r in inst.items().iter().take(k) {
                s1.arrive(r).unwrap();
            }
            let snap = s1.snapshot();
            drop(s1);
            let mut p2 = FirstFit;
            let mut s2 =
                StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut p2, &snap).unwrap();
            for r in inst.items().iter().skip(k) {
                s2.arrive(r).unwrap();
            }
            let resumed = s2.finish().unwrap();
            assert_eq!(resumed, full, "resume after {k} events diverged");
        }
    }

    #[test]
    fn snapshot_round_trips_through_restore() {
        let inst = sample();
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for r in inst.items().iter().take(3) {
            s.arrive(r).unwrap();
        }
        let snap = s.snapshot();
        drop(s);
        let mut p2 = FirstFit;
        let restored =
            StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut p2, &snap).unwrap();
        assert_eq!(restored.snapshot(), snap, "snapshot of a restore is stable");
    }

    #[test]
    fn restore_rejects_mismatched_packer_and_version() {
        struct Other;
        impl OnlinePacker for Other {
            fn name(&self) -> String {
                "other".into()
            }
            fn place(&mut self, _: &ItemView, _: &OpenBins) -> Decision {
                Decision::NEW
            }
        }
        let mut packer = FirstFit;
        let s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        let snap = s.snapshot();
        drop(s);
        let mut other = Other;
        let err = StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut other, &snap)
            .err()
            .expect("packer name mismatch");
        assert!(matches!(err, DbpError::InvalidParameter { .. }));
        let mut future = snap.clone();
        future.version = SNAPSHOT_VERSION + 1;
        let mut p2 = FirstFit;
        let err = StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut p2, &future)
            .err()
            .expect("version mismatch");
        assert!(matches!(err, DbpError::InvalidParameter { .. }));
    }

    #[test]
    fn fail_bin_displaces_live_items() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::from_f64(0.4), 0, 10)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.4), 1, 20)).unwrap();
        s.arrive(&Item::new(2, Size::from_f64(0.9), 2, 30)).unwrap();
        assert_eq!(s.open_bins(), 2);
        let displaced = s.fail_bin(BinId(0), 5).unwrap();
        let mut ids: Vec<u32> = displaced.iter().map(|a| a.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1], "both live items displaced");
        assert_eq!(s.open_bins(), 1);
        assert_eq!(s.live_items(), 1);
        // Failing a closed bin is an error.
        assert!(s.fail_bin(BinId(0), 6).is_err());
        let run = s.finish().unwrap();
        assert_eq!(run.bins[0].closed_at, 5, "record closed at failure time");
        assert_eq!(run.usage, 5 + 28);
    }

    #[test]
    fn fail_bin_does_not_displace_already_departed_items() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::from_f64(0.4), 0, 5)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.4), 1, 20)).unwrap();
        // Failure at t=7: item 0 departed at 5, only item 1 is displaced.
        let displaced = s.fail_bin(BinId(0), 7).unwrap();
        assert_eq!(displaced.len(), 1);
        assert_eq!(displaced[0].id, ItemId(1));
        let run = s.finish().unwrap();
        assert_eq!(run.bins[0].closed_at, 7);
    }

    #[test]
    fn arrive_capped_sheds_and_leaves_no_trace() {
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        let mut s =
            StreamingSession::with_observer(ClairvoyanceMode::Clairvoyant, &mut packer, &mut log);
        let a = s
            .arrive_capped(&Item::new(0, Size::from_f64(0.9), 0, 10), 1)
            .unwrap();
        assert_eq!(a, Admission::Placed(BinId(0)));
        // Would need a second server: shed.
        let a = s
            .arrive_capped(&Item::new(1, Size::from_f64(0.9), 1, 10), 1)
            .unwrap();
        assert_eq!(a, Admission::Shed);
        assert_eq!(s.live_items(), 1);
        // A reuse fits under the cap and is admitted.
        let a = s
            .arrive_capped(&Item::new(2, Size::from_f64(0.05), 2, 9), 1)
            .unwrap();
        assert_eq!(a, Admission::Placed(BinId(0)));
        // The shed id was not consumed: re-presenting it later works.
        let a = s
            .arrive_capped(&Item::new(1, Size::from_f64(0.9), 11, 20), 1)
            .unwrap();
        assert_eq!(a, Admission::Placed(BinId(1)));
        let run = s.finish().unwrap();
        assert_eq!(run.bins_opened(), 2);
        let shed: Vec<_> = log
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    PackEvent::ArrivalShed {
                        id: ItemId(1),
                        at: 1,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(shed.len(), 1, "exactly one shed event");
    }

    #[test]
    fn snapshot_after_failure_filters_cancelled_departures() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::from_f64(0.4), 0, 10)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.9), 1, 30)).unwrap();
        s.fail_bin(BinId(0), 2).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.departures, vec![(30, ItemId(1))]);
        drop(s);
        let mut p2 = FirstFit;
        let s2 = StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut p2, &snap).unwrap();
        let run = s2.finish().unwrap();
        assert_eq!(run.bins[0].closed_at, 2);
        assert_eq!(run.bins[1].closed_at, 30);
    }

    fn placement_scans(log: &EventLog) -> Vec<(FitDecision, usize)> {
        log.events
            .iter()
            .filter_map(|e| match e {
                PackEvent::PlacementDecided {
                    fit_rule,
                    candidates_scanned,
                    ..
                } => Some((*fit_rule, *candidates_scanned)),
                _ => None,
            })
            .collect()
    }

    /// Two 0.9 items force two bins; a 0.05 item then fits bin 0 after
    /// inspecting only it; a final 0.9 item rejects both before opening.
    fn scan_depth_instance() -> Instance {
        Instance::from_triples(&[(0.9, 0, 100), (0.9, 1, 100), (0.05, 2, 100), (0.9, 3, 100)])
    }

    #[test]
    fn candidates_scanned_uses_packer_reported_depth() {
        // A first-fit packer that reports its true scan depth through
        // `last_scanned` — the engine must pass the count through
        // verbatim.
        struct CountingFirstFit {
            scanned: usize,
        }
        impl OnlinePacker for CountingFirstFit {
            fn name(&self) -> String {
                "counting-ff".into()
            }
            fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
                self.scanned = 0;
                for b in open {
                    self.scanned += 1;
                    if b.fits(item.size) {
                        return Decision::Existing(b.id());
                    }
                }
                Decision::NEW
            }
            fn last_scanned(&self) -> Option<usize> {
                Some(self.scanned)
            }
        }
        let mut packer = CountingFirstFit { scanned: 0 };
        let mut log = EventLog::new();
        OnlineEngine::clairvoyant()
            .run_observed(&scan_depth_instance(), &mut packer, &mut log)
            .unwrap();
        assert_eq!(
            placement_scans(&log),
            vec![
                (FitDecision::OpenedNew, 0),
                (FitDecision::OpenedNew, 1),
                (FitDecision::Reused, 1),
                (FitDecision::OpenedNew, 2),
            ]
        );
    }

    #[test]
    fn candidates_scanned_falls_back_to_pool_size() {
        // The test FirstFit does not implement `last_scanned`, so every
        // placement reports the candidate-pool size: the number of bins
        // open when the decision was made.
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        OnlineEngine::clairvoyant()
            .run_observed(&scan_depth_instance(), &mut packer, &mut log)
            .unwrap();
        assert_eq!(
            placement_scans(&log),
            vec![
                (FitDecision::OpenedNew, 0),
                (FitDecision::OpenedNew, 1),
                (FitDecision::Reused, 2),
                (FitDecision::OpenedNew, 2),
            ]
        );
    }
}
