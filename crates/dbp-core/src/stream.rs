//! Streaming online packing: feed arrivals one at a time.
//!
//! [`crate::OnlineEngine::run`] takes a whole [`crate::Instance`] — fine
//! for experiments, but a real scheduler receives jobs as they arrive and
//! cannot hand over the future. [`StreamingSession`] is the incremental
//! twin: call [`StreamingSession::arrive`] per job (non-decreasing
//! arrival times), and the session returns the bin id the packer chose;
//! call [`StreamingSession::finish`] to flush remaining departures and
//! obtain the same [`OnlineRun`] the batch engine produces.
//!
//! The batch engine and the streaming session are verified to produce
//! identical runs on identical input order (see tests) — the batch path
//! is a thin convenience over this one conceptually, and both enforce the
//! same rules: capacity, bin closure on last departure, no migration.
//!
//! ## Observability
//!
//! The session is generic over a [`PackObserver`] that receives a
//! [`crate::observe::PackEvent`] for every arrival, placement, level
//! change, bin opening, and bin closure. The default [`NoopObserver`]
//! compiles all emission sites away (`O::ENABLED` is an associated
//! constant), so unobserved sessions cost exactly what they did before
//! the hooks existed. Attach an observer with
//! [`StreamingSession::with_observer`] or
//! [`crate::OnlineEngine::run_observed`].
//!
//! ## Hot-path complexity
//!
//! The session is built for unbounded streams: every per-arrival and
//! per-departure operation is O(1) expected (hash lookups) in the live
//! state, never in the stream's history. Bin records are indexed directly
//! by [`BinId`] (bins are numbered in opening order), the open set is the
//! indexed [`crate::openbins::OpenBins`] slab, and `placement` entries are
//! pruned when their item departs — see `docs/performance.md`.
//!
//! ## The id-watermark contract
//!
//! Duplicate item-id rejection does not keep every id ever seen. The
//! session maintains a *watermark* `w` such that every id `< w` has been
//! seen, plus the exact set of seen ids `≥ w`. Feed ids in roughly
//! increasing order (the natural choice for generated streams) and that
//! overflow set stays tiny — O(1) memory for a monotone id stream — while
//! duplicate detection stays exact for *any* id order. The current values
//! are observable via [`StreamingSession::id_watermark`] and
//! [`StreamingSession::dedupe_backlog`].

use crate::error::DbpError;
use crate::interval::Time;
use crate::item::{Item, ItemId};
use crate::observe::{FitDecision, NoopObserver, PackEvent, PackObserver};
use crate::online::{
    ActiveItem, BinRecord, ClairvoyanceMode, Decision, ItemView, OnlinePacker, OnlineRun, OpenBin,
};
use crate::openbins::OpenBins;
use crate::packing::{BinId, Packing};
use crate::size::Size;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// An in-progress online packing over a stream of arrivals.
pub struct StreamingSession<'p, O: PackObserver = NoopObserver> {
    mode: ClairvoyanceMode,
    packer: &'p mut dyn OnlinePacker,
    obs: O,
    open: OpenBins,
    /// Indexed by `BinId` — bins are numbered in opening order, so the
    /// record for bin `b` is `records[b.0 as usize]`.
    records: Vec<BinRecord>,
    /// Bin of each *live* item; entries are pruned at departure.
    placement: HashMap<ItemId, BinId>,
    departures: BinaryHeap<Reverse<(Time, ItemId)>>,
    next_bin: u32,
    last_arrival: Option<Time>,
    /// Every id `< watermark` has been seen.
    watermark: u32,
    /// The exact set of seen ids `≥ watermark`.
    above: HashSet<u32>,
}

impl<'p> StreamingSession<'p, NoopObserver> {
    /// Starts an unobserved session; the packer's [`OnlinePacker::reset`]
    /// is invoked.
    pub fn new(mode: ClairvoyanceMode, packer: &'p mut dyn OnlinePacker) -> Self {
        Self::with_observer(mode, packer, NoopObserver)
    }
}

impl<'p, O: PackObserver> StreamingSession<'p, O> {
    /// Starts a session that reports every packing event to `obs` (pass
    /// `&mut observer` to keep ownership). The packer's
    /// [`OnlinePacker::reset`] is invoked.
    pub fn with_observer(mode: ClairvoyanceMode, packer: &'p mut dyn OnlinePacker, obs: O) -> Self {
        packer.reset();
        StreamingSession {
            mode,
            packer,
            obs,
            open: OpenBins::new(),
            records: Vec::new(),
            placement: HashMap::new(),
            departures: BinaryHeap::new(),
            next_bin: 0,
            last_arrival: None,
            watermark: 0,
            above: HashSet::new(),
        }
    }

    fn visible_departure(&self, item: &Item) -> Option<Time> {
        match &self.mode {
            ClairvoyanceMode::Clairvoyant => Some(item.departure()),
            ClairvoyanceMode::NonClairvoyant => None,
            ClairvoyanceMode::Noisy(f) => Some(f(item).max(item.arrival() + 1)),
        }
    }

    /// Processes all departures up to and including time `t`. Each
    /// departure is O(1): the item's bin comes from the pruned
    /// `placement` map and the bin itself from the indexed open set.
    fn close_until(&mut self, t: Time) -> Result<(), DbpError> {
        while let Some(&Reverse((dt, id))) = self.departures.peek() {
            if dt > t {
                break;
            }
            self.departures.pop();
            let bin_id = self
                .placement
                .remove(&id)
                .ok_or_else(|| DbpError::Internal {
                    what: format!("departing item {id} has no live placement"),
                })?;
            let bin = self
                .open
                .get_mut(bin_id)
                .ok_or_else(|| DbpError::Internal {
                    what: format!("departing item {id} maps to a closed bin"),
                })?;
            let became_empty = bin.remove_item(id)?;
            if became_empty {
                self.open.remove(bin_id).expect("bin was open");
                let rec = &mut self.records[bin_id.0 as usize];
                rec.closed_at = dt;
                if O::ENABLED {
                    let (opened_at, items) = (rec.opened_at, rec.items.len());
                    self.obs.on_event(&PackEvent::LevelChanged {
                        bin: bin_id,
                        at: dt,
                        level: Size::ZERO,
                        open_bins: self.open.len(),
                    });
                    self.obs.on_event(&PackEvent::BinClosed {
                        bin: bin_id,
                        at: dt,
                        opened_at,
                        items,
                    });
                }
            } else if O::ENABLED {
                let level = self.open.get(bin_id).expect("bin still open").level();
                let open_bins = self.open.len();
                self.obs.on_event(&PackEvent::LevelChanged {
                    bin: bin_id,
                    at: dt,
                    level,
                    open_bins,
                });
            }
        }
        Ok(())
    }

    /// The number of currently open bins.
    pub fn open_bins(&self) -> usize {
        self.open.len()
    }

    /// The number of items currently resident in open bins. The
    /// `placement` map holds exactly these (departed items are pruned),
    /// so live memory tracks the *concurrent* load, not stream length.
    pub fn live_items(&self) -> usize {
        self.placement.len()
    }

    /// All item ids below this value have been seen (watermark dedupe
    /// contract; see the module docs).
    pub fn id_watermark(&self) -> u32 {
        self.watermark
    }

    /// Number of seen ids at or above the watermark still held for exact
    /// duplicate detection. Stays O(1) for monotone id streams.
    pub fn dedupe_backlog(&self) -> usize {
        self.above.len()
    }

    /// A cheap estimate of the session's live working-state heap
    /// footprint: the open-bin slab plus the live-placement map, the
    /// pending-departure heap, and the dedupe overflow set. Excludes the
    /// append-only bin history (`records`), which is run *output*, not
    /// working state. O(open bins); the engine benchmark samples this as
    /// its RSS proxy.
    pub fn approx_live_bytes(&self) -> usize {
        use std::mem::size_of;
        self.open.approx_bytes()
            + self.placement.capacity() * (size_of::<ItemId>() + size_of::<BinId>())
            + self.departures.capacity() * size_of::<Reverse<(Time, ItemId)>>()
            + self.above.capacity() * size_of::<u32>()
    }

    /// Advances simulated time to `t` without an arrival: departures up
    /// to and including `t` are processed and empty bins close. Lets an
    /// integrator observe fleet drain during idle periods (e.g. to emit
    /// scale-down signals) instead of waiting for the next arrival.
    ///
    /// `t` must be at least the last arrival time; subsequent arrivals
    /// must not precede `t`.
    pub fn advance_to(&mut self, t: Time) -> Result<(), DbpError> {
        if let Some(last) = self.last_arrival {
            if t < last {
                return Err(DbpError::BadDecision {
                    what: format!("cannot advance to {t} before last arrival {last}"),
                });
            }
        }
        self.last_arrival = Some(t);
        self.close_until(t)
    }

    /// Feeds one arrival. Arrival times must be non-decreasing and item
    /// ids unique; the chosen bin id is returned.
    pub fn arrive(&mut self, item: &Item) -> Result<BinId, DbpError> {
        let now = item.arrival();
        if let Some(last) = self.last_arrival {
            if now < last {
                return Err(DbpError::BadDecision {
                    what: format!("arrivals must be non-decreasing: {now} after {last}"),
                });
            }
        }
        let raw_id = item.id().0;
        if raw_id < self.watermark || !self.above.insert(raw_id) {
            return Err(DbpError::DuplicateItemId { id: raw_id });
        }
        // Advance the watermark over contiguously-seen ids so monotone
        // streams keep the overflow set empty. `u32::MAX` cannot be
        // absorbed (the watermark would need to be MAX + 1), so it simply
        // stays in the overflow set.
        while self.watermark < u32::MAX && self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        self.last_arrival = Some(now);
        self.close_until(now)?;

        let visible_dep = self.visible_departure(item);
        if O::ENABLED {
            self.obs.on_event(&PackEvent::ItemArrived {
                id: item.id(),
                size: item.size(),
                at: now,
                departure: item.departure(),
                visible_departure: visible_dep,
            });
            if matches!(self.mode, ClairvoyanceMode::Noisy(_)) {
                self.obs.on_event(&PackEvent::EstimateUsed {
                    id: item.id(),
                    estimate: visible_dep.expect("noisy mode always estimates"),
                    actual: item.departure(),
                });
            }
        }
        let view = ItemView {
            id: item.id(),
            size: item.size(),
            arrival: now,
            departure: visible_dep,
        };
        let started = if O::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let decision = self.packer.place(&view, &self.open);
        let decide_ns = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let active = ActiveItem {
            id: item.id(),
            size: item.size(),
            departure: visible_dep,
        };
        let bin_id = match decision {
            Decision::Existing(bid) => {
                let bin = self
                    .open
                    .get_mut(bid)
                    .ok_or_else(|| DbpError::BadDecision {
                        what: format!("bin {bid:?} is not open (item {})", item.id()),
                    })?;
                bin.push_item(active, item.size())?;
                if O::ENABLED {
                    // Scan depth keeps its historical meaning — the bin's
                    // position in opening order — and is only computed
                    // (O(open)) when an observer is attached.
                    let pos = self.open.position(bid).expect("bin is open");
                    let level = self.open.get(bid).expect("bin is open").level();
                    let open_bins = self.open.len();
                    self.obs.on_event(&PackEvent::PlacementDecided {
                        id: item.id(),
                        bin: bid,
                        fit_rule: FitDecision::Reused,
                        candidates_scanned: pos + 1,
                        decide_ns,
                    });
                    self.obs.on_event(&PackEvent::LevelChanged {
                        bin: bid,
                        at: now,
                        level,
                        open_bins,
                    });
                }
                bid
            }
            Decision::New { tag } => {
                let bid = BinId(self.next_bin);
                self.next_bin += 1;
                let rejected = self.open.len();
                self.open.insert(OpenBin::new(bid, now, tag, active));
                self.records.push(BinRecord {
                    id: bid,
                    opened_at: now,
                    closed_at: now,
                    tag,
                    items: Vec::new(),
                });
                if O::ENABLED {
                    self.obs.on_event(&PackEvent::BinOpened {
                        bin: bid,
                        at: now,
                        tag,
                    });
                    self.obs.on_event(&PackEvent::PlacementDecided {
                        id: item.id(),
                        bin: bid,
                        fit_rule: FitDecision::OpenedNew,
                        candidates_scanned: rejected,
                        decide_ns,
                    });
                    self.obs.on_event(&PackEvent::LevelChanged {
                        bin: bid,
                        at: now,
                        level: item.size(),
                        open_bins: rejected + 1,
                    });
                }
                bid
            }
        };
        self.placement.insert(item.id(), bin_id);
        self.records[bin_id.0 as usize].items.push(item.id());
        self.departures.push(Reverse((item.departure(), item.id())));
        Ok(bin_id)
    }

    /// Flushes all remaining departures and returns the finished run.
    pub fn finish(mut self) -> Result<OnlineRun, DbpError> {
        self.close_until(Time::MAX)?;
        debug_assert!(self.open.is_empty());
        debug_assert!(self.placement.is_empty(), "placement pruned on departure");
        let usage: u128 = self.records.iter().map(|r| r.usage()).sum();
        let mut bins = vec![Vec::new(); self.next_bin as usize];
        for r in &self.records {
            bins[r.id.0 as usize] = r.items.clone();
        }
        Ok(OnlineRun {
            packing: Packing::from_bins(bins),
            usage,
            bins: self.records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::observe::EventLog;
    use crate::online::OnlineEngine;
    use crate::size::Size;

    struct FirstFit;
    impl OnlinePacker for FirstFit {
        fn name(&self) -> String {
            "ff".into()
        }
        fn place(&mut self, item: &ItemView, open: &OpenBins) -> Decision {
            open.iter()
                .find(|b| b.fits(item.size))
                .map(|b| Decision::Existing(b.id()))
                .unwrap_or(Decision::NEW)
        }
    }

    fn sample() -> Instance {
        Instance::from_triples(&[
            (0.5, 0, 10),
            (0.5, 2, 8),
            (0.5, 3, 9),
            (0.9, 5, 20),
            (0.1, 12, 30),
        ])
    }

    #[test]
    fn streaming_matches_batch_engine() {
        let inst = sample();
        let batch = OnlineEngine::clairvoyant()
            .run(&inst, &mut FirstFit)
            .unwrap();
        let mut packer = FirstFit;
        let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for r in inst.items() {
            session.arrive(r).unwrap();
        }
        let streamed = session.finish().unwrap();
        assert_eq!(streamed.usage, batch.usage);
        assert_eq!(streamed.packing, batch.packing);
        assert_eq!(streamed.bins.len(), batch.bins.len());
    }

    #[test]
    fn rejects_out_of_order_arrivals() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::HALF, 10, 20)).unwrap();
        let err = s.arrive(&Item::new(1, Size::HALF, 5, 20)).unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::HALF, 0, 5)).unwrap();
        let err = s.arrive(&Item::new(0, Size::HALF, 1, 6)).unwrap_err();
        assert!(matches!(err, DbpError::DuplicateItemId { id: 0 }));
    }

    #[test]
    fn open_bins_reflects_live_state() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        assert_eq!(s.open_bins(), 0);
        s.arrive(&Item::new(0, Size::from_f64(0.9), 0, 10)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.9), 1, 5)).unwrap();
        assert_eq!(s.open_bins(), 2);
        // Arriving at t=6 first closes the bin whose item left at 5.
        s.arrive(&Item::new(2, Size::from_f64(0.05), 6, 8)).unwrap();
        assert_eq!(s.open_bins(), 1);
        let run = s.finish().unwrap();
        assert_eq!(run.bins_opened(), 2);
    }

    #[test]
    fn advance_to_drains_idle_fleet() {
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        s.arrive(&Item::new(0, Size::HALF, 0, 10)).unwrap();
        s.arrive(&Item::new(1, Size::from_f64(0.9), 1, 20)).unwrap();
        assert_eq!(s.open_bins(), 2);
        s.advance_to(10).unwrap();
        assert_eq!(s.open_bins(), 1, "first bin drains at t=10");
        s.advance_to(25).unwrap();
        assert_eq!(s.open_bins(), 0);
        // Cannot go backwards, and later arrivals must respect the clock.
        assert!(s.advance_to(5).is_err());
        assert!(s.arrive(&Item::new(2, Size::HALF, 20, 30)).is_err());
        s.arrive(&Item::new(3, Size::HALF, 30, 40)).unwrap();
        let run = s.finish().unwrap();
        assert_eq!(run.bins_opened(), 3);
    }

    #[test]
    fn returned_bin_ids_match_records() {
        let inst = sample();
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        let mut assigned = Vec::new();
        for r in inst.items() {
            assigned.push((r.id(), s.arrive(r).unwrap()));
        }
        let run = s.finish().unwrap();
        for (item, bin) in assigned {
            assert!(run.packing.bin(bin).contains(&item));
        }
    }

    #[test]
    fn observed_session_emits_consistent_stream() {
        let inst = sample();
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        let mut s =
            StreamingSession::with_observer(ClairvoyanceMode::Clairvoyant, &mut packer, &mut log);
        for r in inst.items() {
            s.arrive(r).unwrap();
        }
        let run = s.finish().unwrap();

        let mut arrived = 0usize;
        let mut placed = 0usize;
        let mut opened = 0usize;
        let mut closed_usage = 0u128;
        let mut closed = 0usize;
        for ev in &log.events {
            match ev {
                PackEvent::ItemArrived { departure, at, .. } => {
                    arrived += 1;
                    assert!(departure > at);
                }
                PackEvent::PlacementDecided { .. } => placed += 1,
                PackEvent::BinOpened { .. } => opened += 1,
                PackEvent::BinClosed { at, opened_at, .. } => {
                    closed += 1;
                    closed_usage += (at - opened_at) as u128;
                }
                _ => {}
            }
        }
        assert_eq!(arrived, inst.len());
        assert_eq!(placed, inst.len());
        assert_eq!(opened, run.bins_opened());
        assert_eq!(closed, run.bins_opened(), "every opened bin closes");
        assert_eq!(closed_usage, run.usage, "closures reconstruct usage");
    }

    #[test]
    fn observed_run_equals_unobserved_run() {
        let inst = sample();
        let batch = OnlineEngine::clairvoyant()
            .run(&inst, &mut FirstFit)
            .unwrap();
        let mut log = EventLog::new();
        let observed = OnlineEngine::clairvoyant()
            .run_observed(&inst, &mut FirstFit, &mut log)
            .unwrap();
        assert_eq!(observed.packing, batch.packing);
        assert_eq!(observed.usage, batch.usage);
        assert!(!log.events.is_empty());
    }

    #[test]
    fn noisy_session_emits_estimate_events() {
        use std::sync::Arc;
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 1, 12)]);
        let mode = ClairvoyanceMode::Noisy(Arc::new(|r: &Item| r.departure() + 5));
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        OnlineEngine::new(mode)
            .run_observed(&inst, &mut packer, &mut log)
            .unwrap();
        let estimates: Vec<_> = log
            .events
            .iter()
            .filter_map(|e| match e {
                PackEvent::EstimateUsed {
                    estimate, actual, ..
                } => Some((*estimate, *actual)),
                _ => None,
            })
            .collect();
        assert_eq!(estimates, vec![(15, 10), (17, 12)]);
    }

    #[test]
    fn long_stream_memory_stays_bounded() {
        // Regression for the pre-indexed engine, whose `seen` set and
        // unpruned `placement` map grew with stream *length*. Live state
        // must track the *concurrent* load: a 200k-item stream with at
        // most 3 overlapping jobs keeps placement at ≤ 3 entries and the
        // dedupe overflow set empty (monotone ids fold into the
        // watermark), while records/usage still cover the full history.
        const N: u32 = 200_000;
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for k in 0..N {
            let t = k as Time;
            s.arrive(&Item::new(k, Size::from_f64(0.4), t, t + 3))
                .unwrap();
            assert!(s.live_items() <= 3, "placement must be pruned (k={k})");
            assert!(s.open_bins() <= 2, "fleet tracks concurrency (k={k})");
            assert_eq!(s.dedupe_backlog(), 0, "monotone ids leave no backlog");
            assert_eq!(s.id_watermark(), k + 1);
        }
        let run = s.finish().unwrap();
        let placed: usize = run.packing.iter_bins().map(|(_, v)| v.len()).sum();
        assert_eq!(placed, N as usize);
        assert!(run.bins_opened() > 10_000, "history is still complete");
    }

    #[test]
    fn out_of_order_ids_drain_into_watermark() {
        // Ids arrive pairwise swapped (1,0,3,2,…): the overflow set holds
        // at most the one id ahead of the watermark and drains as soon as
        // the gap fills. Duplicate detection stays exact throughout.
        let mut packer = FirstFit;
        let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut packer);
        for pair in 0..500u32 {
            let (hi, lo) = (2 * pair + 1, 2 * pair);
            let t = pair as Time;
            s.arrive(&Item::new(hi, Size::from_f64(0.1), t, t + 2))
                .unwrap();
            assert_eq!(s.dedupe_backlog(), 1, "hi id waits above the watermark");
            assert_eq!(s.id_watermark(), lo);
            s.arrive(&Item::new(lo, Size::from_f64(0.1), t, t + 2))
                .unwrap();
            assert_eq!(s.dedupe_backlog(), 0, "gap filled, backlog drains");
            assert_eq!(s.id_watermark(), hi + 1);
        }
        // An id far below the watermark is rejected without any set entry.
        let err = s.arrive(&Item::new(7, Size::HALF, 600, 610)).unwrap_err();
        assert!(matches!(err, DbpError::DuplicateItemId { id: 7 }));
        s.finish().unwrap();
    }

    #[test]
    fn candidates_scanned_reflects_scan_depth() {
        // Two 0.9 items force two bins; a 0.05 item then fits bin 0 at
        // scan depth 1; a 0.9 item must reject both bins before opening.
        let inst =
            Instance::from_triples(&[(0.9, 0, 100), (0.9, 1, 100), (0.05, 2, 100), (0.9, 3, 100)]);
        let mut packer = FirstFit;
        let mut log = EventLog::new();
        OnlineEngine::clairvoyant()
            .run_observed(&inst, &mut packer, &mut log)
            .unwrap();
        let scans: Vec<(FitDecision, usize)> = log
            .events
            .iter()
            .filter_map(|e| match e {
                PackEvent::PlacementDecided {
                    fit_rule,
                    candidates_scanned,
                    ..
                } => Some((*fit_rule, *candidates_scanned)),
                _ => None,
            })
            .collect();
        assert_eq!(
            scans,
            vec![
                (FitDecision::OpenedNew, 0),
                (FitDecision::OpenedNew, 1),
                (FitDecision::Reused, 1),
                (FitDecision::OpenedNew, 2),
            ]
        );
    }
}
