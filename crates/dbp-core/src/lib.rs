//! # dbp-core — foundations for MinUsageTime Dynamic Bin Packing
//!
//! This crate provides the exact-arithmetic foundations shared by every other
//! crate in the workspace, implementing the model of *Ren & Tang, "Clairvoyant
//! Dynamic Bin Packing for Job Scheduling with Minimum Server Usage Time"*,
//! SPAA 2016:
//!
//! * [`Time`] / [`Interval`] — integer tick timestamps and half-open active
//!   intervals `[arrival, departure)`.
//! * [`Size`] — fixed-point item sizes with exact addition/comparison against
//!   the unit bin capacity ([`Size::CAPACITY`]).
//! * [`Item`] / [`Instance`] — items and whole problem instances, with the
//!   paper's derived quantities (`span`, time–space demand `d(R)`, duration
//!   ratio `μ`).
//! * [`Packing`] — an assignment of items to bins, with an exact sweep-line
//!   validator and usage-time accounting.
//! * [`accounting::lower_bounds`] — Propositions 1–3 of the
//!   paper: demand, span, and `∫⌈S(t)⌉dt`.
//! * [`profile`] — bin level profiles over time (BTree-backed and
//!   segment-tree-backed) used by offline packers for interval feasibility.
//! * [`online`] — the event-driven online packing engine: it feeds items to an
//!   [`online::OnlinePacker`] in arrival order, enforces capacity, closes bins
//!   when their last item departs, and accounts usage time exactly.
//!
//! ## Exactness
//!
//! All feasibility decisions and all usage-time/lower-bound accounting are
//! performed in integer arithmetic. Floating point only appears at the
//! reporting boundary (ratios). This makes the paper's invariants
//! (Propositions 1–3, Theorems 1–5) machine-checkable without tolerance
//! fudging, which the property-based test suites rely on.
//!
//! ## Quick example
//!
//! ```
//! use dbp_core::{Instance, Item, Size};
//! use dbp_core::accounting::lower_bounds;
//!
//! // Two half-size items overlapping in [5, 10): they fit in one bin.
//! let inst = Instance::from_items(vec![
//!     Item::new(0, Size::from_f64(0.5), 0, 10),
//!     Item::new(1, Size::from_f64(0.5), 5, 20),
//! ]).unwrap();
//! assert_eq!(inst.span(), 20);
//! let lb = lower_bounds(&inst);
//! assert_eq!(lb.span, 20);
//! assert!(lb.best() >= 20);
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod error;
pub mod events;
pub mod instance;
pub mod interval;
pub mod interval_set;
pub mod item;
pub mod observe;
pub mod online;
pub mod openbins;
pub mod packing;
pub mod profile;
pub mod size;
pub mod sizevec;
pub mod stats;
pub mod stream;
pub mod vecbins;
pub mod vecstream;

pub use error::DbpError;
pub use instance::Instance;
pub use interval::{Interval, Time};
pub use interval_set::IntervalSet;
pub use item::{Item, ItemId};
pub use observe::{EventLog, FitDecision, NoopObserver, OpKind, PackEvent, PackObserver, Tee};
pub use online::{
    ActiveItem, ClairvoyanceMode, Decision, OnlineEngine, OnlinePacker, OnlineRun, PackerState,
};
pub use openbins::OpenBins;
pub use packing::{BinId, OfflinePacker, Packing};
pub use size::Size;
pub use sizevec::{Scalarization, SizeVec, VecInstance, VecItem, MAX_DIMS};
pub use stream::{Admission, BinSnapshot, SessionSnapshot, StreamingSession, SNAPSHOT_VERSION};
pub use vecbins::{VecActiveItem, VecOpenBin, VecOpenBins};
pub use vecstream::{
    VecClairvoyance, VecEventLog, VecItemView, VecNoopObserver, VecOnlineEngine, VecOnlinePacker,
    VecPackEvent, VecPackObserver, VecStreamingSession,
};

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, DbpError>;
