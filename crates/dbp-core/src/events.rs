//! Sweep-line utilities: piecewise-constant load profiles over time.
//!
//! Many quantities in the paper are integrals of piecewise-constant
//! functions of time (total active size `S(t)`, active item count,
//! `⌈S(t)⌉`). [`load_segments`] computes the exact breakpoint
//! decomposition in `O(n log n)`.

use crate::interval::{Interval, Time};
use crate::item::Item;
use crate::size::Size;

/// A segment `[interval)` over which the *active item set* is constant
/// (segments break at every arrival/departure event, even when the load
/// value happens not to change — consumers like the exact `OPT_total`
/// solver rely on the set, not just the load, being constant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadSegment {
    /// The time range of the segment.
    pub interval: Interval,
    /// Total size of active items throughout the segment (`S(t)`).
    pub total_size: Size,
    /// Number of active items throughout the segment.
    pub count: usize,
}

/// Computes the piecewise-constant load profile of a set of items.
///
/// Returns maximal constant segments in time order, **excluding** segments
/// where no item is active (gaps in the span produce no segment). The
/// segments partition exactly the union of the items' intervals:
///
/// ```
/// use dbp_core::{Item, Size};
/// use dbp_core::events::load_segments;
/// let items = [
///     Item::new(0, Size::from_f64(0.5), 0, 10),
///     Item::new(1, Size::from_f64(0.25), 5, 8),
/// ];
/// let segs = load_segments(&items);
/// assert_eq!(segs.len(), 3); // [0,5) [5,8) [8,10)
/// assert_eq!(segs[1].total_size, Size::from_f64(0.75));
/// assert_eq!(segs[1].count, 2);
/// ```
pub fn load_segments(items: &[Item]) -> Vec<LoadSegment> {
    if items.is_empty() {
        return Vec::new();
    }
    // Event deltas at each breakpoint: (time, size delta as signed, count delta).
    let mut events: Vec<(Time, i128, i64)> = Vec::with_capacity(items.len() * 2);
    for r in items {
        events.push((r.arrival(), r.size().raw() as i128, 1));
        events.push((r.departure(), -(r.size().raw() as i128), -1));
    }
    events.sort_unstable_by_key(|e| e.0);

    let mut segs: Vec<LoadSegment> = Vec::new();
    let mut level: i128 = 0;
    let mut count: i64 = 0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        // Apply all deltas at time t.
        while i < events.len() && events[i].0 == t {
            level += events[i].1;
            count += events[i].2;
            i += 1;
        }
        debug_assert!(level >= 0 && count >= 0);
        if i < events.len() && count > 0 {
            let next = events[i].0;
            // Do NOT merge adjacent segments even when the load is equal:
            // a simultaneous departure+arrival changes the active set
            // without changing the load, and set-constancy is part of this
            // function's contract.
            segs.push(LoadSegment {
                interval: Interval::of(t, next),
                total_size: Size::from_raw(level as u64),
                count: count as usize,
            });
        }
    }
    segs
}

/// The maximum of `S(t)` over time (the demand-chart peak in §4.2).
pub fn peak_load(items: &[Item]) -> Size {
    load_segments(items)
        .iter()
        .map(|s| s.total_size)
        .max()
        .unwrap_or(Size::ZERO)
}

/// The maximum number of simultaneously active items.
pub fn peak_count(items: &[Item]) -> usize {
    load_segments(items)
        .iter()
        .map(|s| s.count)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Vec<Item> {
        vec![
            Item::new(0, Size::from_f64(0.5), 0, 10),
            Item::new(1, Size::from_f64(0.25), 5, 8),
            Item::new(2, Size::from_f64(0.75), 20, 24),
        ]
    }

    #[test]
    fn segments_partition_span() {
        let its = items();
        let segs = load_segments(&its);
        let total: i64 = segs.iter().map(|s| s.interval.len()).sum();
        assert_eq!(total, 14); // equals span
                               // Segments are disjoint and ordered.
        for w in segs.windows(2) {
            assert!(w[0].interval.end() <= w[1].interval.start());
        }
    }

    #[test]
    fn gap_produces_no_segment() {
        let its = items();
        let segs = load_segments(&its);
        assert!(segs.iter().all(|s| s.count > 0));
        // The gap [10,20) must not appear.
        assert!(segs
            .iter()
            .all(|s| s.interval.end() <= 10 || s.interval.start() >= 20));
    }

    #[test]
    fn simultaneous_arrival_departure_splits_segments() {
        // One item departs exactly when another arrives: the load nets
        // out, but the active set changes, so the segment must split —
        // consumers (e.g. the exact OPT_total solver) require the active
        // set to be constant within each segment.
        let its = vec![
            Item::new(0, Size::HALF, 0, 5),
            Item::new(1, Size::HALF, 5, 10),
        ];
        let segs = load_segments(&its);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].interval, Interval::of(0, 5));
        assert_eq!(segs[1].interval, Interval::of(5, 10));
        for s in &segs {
            assert_eq!(s.total_size, Size::HALF);
            assert_eq!(s.count, 1);
        }
    }

    #[test]
    fn peaks() {
        let its = items();
        assert_eq!(peak_load(&its), Size::from_f64(0.75));
        assert_eq!(peak_count(&its), 2);
        assert_eq!(peak_load(&[]), Size::ZERO);
        assert_eq!(peak_count(&[]), 0);
    }

    #[test]
    fn empty() {
        assert!(load_segments(&[]).is_empty());
    }
}
