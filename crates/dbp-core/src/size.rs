//! Exact fixed-point item sizes.
//!
//! Bins have unit capacity (paper §3.2, "without loss of generality, we
//! assume that the bins all have unit capacity"). Item sizes live in
//! `(0, 1]` and must be summed and compared against the capacity exactly:
//! a floating-point representation would let accumulated rounding error
//! flip feasibility decisions, which would invalidate the paper's
//! worst-case constructions (e.g. the `1/2 ± ε` items of Theorem 3).
//!
//! [`Size`] therefore stores `size × 2²⁴` as a `u64`. The capacity is
//! exactly [`Size::CAPACITY`] = `2²⁴`, halves and powers of two are exact,
//! and sums of up to ~2⁴⁰ items cannot overflow.

use crate::error::DbpError;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A fixed-point size (or bin level / demand height): `raw / 2²⁴` in
/// unit-capacity terms.
///
/// `Size` is a plain quantity, not restricted to `(0, CAPACITY]`: bin levels
/// and demand-chart altitudes (sums of item sizes) use the same type.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Size(u64);

impl Size {
    /// The fixed-point scaling factor: 2²⁴.
    pub const SCALE: u64 = 1 << 24;

    /// Unit bin capacity, exactly representable.
    pub const CAPACITY: Size = Size(Self::SCALE);

    /// Half the bin capacity — the small/large threshold of the Dual
    /// Coloring algorithm (§4.2), exactly representable.
    pub const HALF: Size = Size(Self::SCALE / 2);

    /// The zero size.
    pub const ZERO: Size = Size(0);

    /// The smallest positive representable size (`2⁻²⁴`).
    pub const EPSILON: Size = Size(1);

    /// Constructs a size from raw fixed-point units.
    #[inline]
    pub const fn from_raw(raw: u64) -> Size {
        Size(raw)
    }

    /// The raw fixed-point value (`size × 2²⁴`).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts from a fraction of capacity, rounding to the nearest
    /// representable value. Values ≤ 0 map to [`Size::ZERO`].
    pub fn from_f64(frac: f64) -> Size {
        if frac <= 0.0 {
            return Size::ZERO;
        }
        Size((frac * Self::SCALE as f64).round() as u64)
    }

    /// Exact size `num/den` of capacity; errors if not exactly
    /// representable (i.e. unless `den` divides `num · 2²⁴`).
    ///
    /// ```
    /// use dbp_core::Size;
    /// assert_eq!(Size::from_ratio(1, 4).unwrap(), Size::from_f64(0.25));
    /// assert!(Size::from_ratio(1, 3).is_err()); // 1/3 is not dyadic
    /// ```
    pub fn from_ratio(num: u64, den: u64) -> Result<Size, DbpError> {
        if den == 0 {
            return Err(DbpError::InvalidSize {
                what: "zero denominator".into(),
            });
        }
        let scaled = num as u128 * Self::SCALE as u128;
        if !scaled.is_multiple_of(den as u128) {
            return Err(DbpError::InvalidSize {
                what: format!("{num}/{den} is not exactly representable"),
            });
        }
        Ok(Size((scaled / den as u128) as u64))
    }

    /// This size as a fraction of capacity.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Size) -> Size {
        Size(self.0.saturating_sub(rhs.0))
    }

    /// `⌈self / CAPACITY⌉` — the minimum number of unit bins needed to hold
    /// this much total size, ignoring item granularity (Proposition 3's
    /// `⌈S(t)⌉`).
    #[inline]
    pub fn ceil_units(self) -> u64 {
        self.0.div_ceil(Self::SCALE)
    }

    /// `⌊self / CAPACITY⌋`.
    #[inline]
    pub fn floor_units(self) -> u64 {
        self.0 / Self::SCALE
    }

    /// Whether an item of this size is "small" in the Dual Coloring sense:
    /// `s(r) ≤ 1/2`.
    #[inline]
    pub fn is_small(self) -> bool {
        self <= Self::HALF
    }

    /// Whether a valid *item* size: `0 < s ≤ 1`.
    #[inline]
    pub fn is_valid_item_size(self) -> bool {
        self > Size::ZERO && self <= Size::CAPACITY
    }

    /// Multiplies by an interval length, yielding a time–space demand in
    /// raw-size × tick units (u128: cannot overflow for any valid input).
    #[inline]
    pub fn demand_over(self, ticks: i64) -> u128 {
        debug_assert!(ticks >= 0);
        self.0 as u128 * ticks as u128
    }
}

impl Add for Size {
    type Output = Size;
    #[inline]
    fn add(self, rhs: Size) -> Size {
        Size(self.0.checked_add(rhs.0).expect("Size overflow"))
    }
}

impl AddAssign for Size {
    #[inline]
    fn add_assign(&mut self, rhs: Size) {
        *self = *self + rhs;
    }
}

impl Sub for Size {
    type Output = Size;
    #[inline]
    fn sub(self, rhs: Size) -> Size {
        Size(self.0.checked_sub(rhs.0).expect("Size underflow"))
    }
}

impl SubAssign for Size {
    #[inline]
    fn sub_assign(&mut self, rhs: Size) {
        *self = *self - rhs;
    }
}

impl Sum for Size {
    fn sum<I: Iterator<Item = Size>>(iter: I) -> Size {
        iter.fold(Size::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Size({:.6})", self.as_f64())
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_half_are_exact() {
        assert_eq!(Size::CAPACITY.raw(), 1 << 24);
        assert_eq!(Size::HALF + Size::HALF, Size::CAPACITY);
        assert_eq!(Size::from_f64(1.0), Size::CAPACITY);
        assert_eq!(Size::from_f64(0.5), Size::HALF);
    }

    #[test]
    fn from_ratio_dyadic() {
        assert_eq!(Size::from_ratio(3, 8).unwrap().raw(), 3 * (1 << 21));
        assert_eq!(Size::from_ratio(1, 1 << 24).unwrap(), Size::EPSILON);
        assert!(Size::from_ratio(1, 3).is_err());
        assert!(Size::from_ratio(1, 0).is_err());
    }

    #[test]
    fn epsilon_perturbation_is_exact() {
        // Theorem 3 uses sizes 1/2 ± ε: two (1/2 − ε) items fit together,
        // a (1/2 − ε) item plus a (1/2 + ε) item also fit, two (1/2 + ε) don't.
        let eps = Size::EPSILON;
        let small = Size::HALF - eps;
        let large = Size::HALF + eps;
        assert!(small + small <= Size::CAPACITY);
        assert!(small + large <= Size::CAPACITY);
        assert!(large + large > Size::CAPACITY);
    }

    #[test]
    fn ceil_floor_units() {
        assert_eq!(Size::ZERO.ceil_units(), 0);
        assert_eq!(Size::EPSILON.ceil_units(), 1);
        assert_eq!(Size::CAPACITY.ceil_units(), 1);
        assert_eq!((Size::CAPACITY + Size::EPSILON).ceil_units(), 2);
        assert_eq!((Size::CAPACITY + Size::HALF).floor_units(), 1);
    }

    #[test]
    fn small_large_threshold() {
        assert!(Size::HALF.is_small());
        assert!(!(Size::HALF + Size::EPSILON).is_small());
    }

    #[test]
    fn valid_item_sizes() {
        assert!(!Size::ZERO.is_valid_item_size());
        assert!(Size::EPSILON.is_valid_item_size());
        assert!(Size::CAPACITY.is_valid_item_size());
        assert!(!(Size::CAPACITY + Size::EPSILON).is_valid_item_size());
    }

    #[test]
    fn demand_over_large_values() {
        let d = Size::CAPACITY.demand_over(i64::MAX);
        assert_eq!(d, (1u128 << 24) * i64::MAX as u128);
    }

    #[test]
    fn ordering_matches_f64() {
        let a = Size::from_f64(0.3);
        let b = Size::from_f64(0.31);
        assert!(a < b);
        assert!(a.as_f64() < b.as_f64());
    }
}
