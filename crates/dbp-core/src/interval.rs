//! Integer timestamps and half-open time intervals.
//!
//! The paper (§3.1) views all active intervals as half-open `I = [I⁻, I⁺)`.
//! Times are integer ticks so that span, demand, and usage-time accounting
//! are exact. A tick has no fixed physical meaning; workloads choose their
//! own resolution (e.g. one tick = one second).

use crate::error::DbpError;
use std::fmt;

/// A point in time, in integer ticks.
pub type Time = i64;

/// A half-open time interval `[start, end)` with `start < end`.
///
/// Mirrors the paper's `I = [I⁻, I⁺)`; [`Interval::start`] is `I⁻` and
/// [`Interval::end`] is `I⁺`. The length `l(I) = I⁺ − I⁻` is
/// [`Interval::len`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: Time,
    end: Time,
}

impl Interval {
    /// Creates `[start, end)`. Returns an error unless `start < end`
    /// (zero-length active intervals are not meaningful: such an item would
    /// never be active).
    pub fn new(start: Time, end: Time) -> Result<Self, DbpError> {
        if start < end {
            Ok(Self { start, end })
        } else {
            Err(DbpError::EmptyInterval { start, end })
        }
    }

    /// Creates `[start, end)`, panicking if `start >= end`.
    ///
    /// Convenient in tests and generators where inputs are known-good.
    #[track_caller]
    pub fn of(start: Time, end: Time) -> Self {
        Self::new(start, end).expect("Interval::of requires start < end")
    }

    /// Left endpoint `I⁻` (inclusive).
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Right endpoint `I⁺` (exclusive).
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// Length `l(I) = I⁺ − I⁻`; always positive.
    #[inline]
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// Half-open intervals are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether time `t` lies inside `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether `other` is fully contained in `self` (`self ⊇ other`).
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two half-open intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection `self ∩ other`, or `None` if disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// The smallest interval covering both (their convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Shifts both endpoints by `delta` ticks.
    pub fn shifted(&self, delta: i64) -> Interval {
        Interval {
            start: self.start + delta,
            end: self.end + delta,
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Measure of the union of a set of intervals (the paper's `span`).
///
/// Runs in `O(n log n)`; the input order is irrelevant.
///
/// ```
/// use dbp_core::interval::{span_of, Interval};
/// let ivs = [Interval::of(0, 4), Interval::of(2, 6), Interval::of(10, 11)];
/// assert_eq!(span_of(ivs.iter().copied()), 7);
/// ```
pub fn span_of(intervals: impl IntoIterator<Item = Interval>) -> i64 {
    let mut ivs: Vec<Interval> = intervals.into_iter().collect();
    if ivs.is_empty() {
        return 0;
    }
    ivs.sort_unstable_by_key(|i| (i.start, i.end));
    let mut total: i64 = 0;
    let mut cur = ivs[0];
    for iv in ivs.into_iter().skip(1) {
        if iv.start <= cur.end {
            cur.end = cur.end.max(iv.end);
        } else {
            total += cur.len();
            cur = iv;
        }
    }
    total + cur.len()
}

/// The disjoint maximal intervals forming the union of the inputs, in
/// ascending order. `span_of` equals the summed lengths of this output.
pub fn union_components(intervals: impl IntoIterator<Item = Interval>) -> Vec<Interval> {
    let mut ivs: Vec<Interval> = intervals.into_iter().collect();
    if ivs.is_empty() {
        return Vec::new();
    }
    ivs.sort_unstable_by_key(|i| (i.start, i.end));
    let mut out = Vec::new();
    let mut cur = ivs[0];
    for iv in ivs.into_iter().skip(1) {
        if iv.start <= cur.end {
            cur.end = cur.end.max(iv.end);
        } else {
            out.push(cur);
            cur = iv;
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert!(Interval::new(3, 3).is_err());
        assert!(Interval::new(5, 2).is_err());
        assert!(Interval::new(2, 5).is_ok());
    }

    #[test]
    fn len_and_contains() {
        let iv = Interval::of(2, 7);
        assert_eq!(iv.len(), 5);
        assert!(iv.contains(2));
        assert!(iv.contains(6));
        assert!(!iv.contains(7), "right endpoint is exclusive");
        assert!(!iv.contains(1));
    }

    #[test]
    fn intersection_respects_half_open() {
        // [0,5) and [5,9) touch but do not intersect.
        let a = Interval::of(0, 5);
        let b = Interval::of(5, 9);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);

        let c = Interval::of(4, 6);
        assert!(a.intersects(&c));
        assert_eq!(a.intersection(&c), Some(Interval::of(4, 5)));
    }

    #[test]
    fn containment() {
        let outer = Interval::of(0, 10);
        assert!(outer.contains_interval(&Interval::of(0, 10)));
        assert!(outer.contains_interval(&Interval::of(3, 7)));
        assert!(!outer.contains_interval(&Interval::of(3, 11)));
    }

    #[test]
    fn hull_and_shift() {
        let a = Interval::of(0, 2);
        let b = Interval::of(8, 9);
        assert_eq!(a.hull(&b), Interval::of(0, 9));
        assert_eq!(a.shifted(5), Interval::of(5, 7));
    }

    #[test]
    fn span_empty_and_single() {
        assert_eq!(span_of(std::iter::empty()), 0);
        assert_eq!(span_of([Interval::of(-5, 5)]), 10);
    }

    #[test]
    fn span_merges_touching_intervals() {
        // Touching half-open intervals form a contiguous span.
        assert_eq!(span_of([Interval::of(0, 5), Interval::of(5, 8)]), 8);
    }

    #[test]
    fn span_with_gaps() {
        let ivs = [
            Interval::of(0, 3),
            Interval::of(1, 2),
            Interval::of(10, 12),
            Interval::of(11, 15),
        ];
        assert_eq!(span_of(ivs), 3 + 5);
        let comps = union_components(ivs);
        assert_eq!(comps, vec![Interval::of(0, 3), Interval::of(10, 15)]);
    }
}
