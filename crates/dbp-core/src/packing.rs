//! Packings: assignments of items to bins, with exact validation and
//! usage-time accounting.

use crate::error::DbpError;
use crate::events::load_segments;
use crate::instance::Instance;
use crate::interval::span_of;
use crate::item::{Item, ItemId};
use crate::size::Size;
use std::collections::HashMap;

/// Identifier of a bin within a [`Packing`] (its opening order for online
/// algorithms; arbitrary but stable for offline ones).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BinId(pub u32);

/// An assignment of every item of an instance to a bin.
///
/// The *usage time* of a bin is the span of the items placed in it; the
/// packing's total usage time (the MinUsageTime objective) is the sum over
/// bins. A `Packing` does not borrow the instance; [`Packing::validate`]
/// re-checks it against one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Packing {
    bins: Vec<Vec<ItemId>>,
}

impl Packing {
    /// An empty packing with no bins.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds directly from per-bin item-id lists.
    pub fn from_bins(bins: Vec<Vec<ItemId>>) -> Self {
        Packing { bins }
    }

    /// Opens a new bin and returns its id.
    pub fn open_bin(&mut self) -> BinId {
        self.bins.push(Vec::new());
        BinId(self.bins.len() as u32 - 1)
    }

    /// Places an item in an existing bin.
    ///
    /// # Panics
    /// If the bin id is out of range.
    pub fn place(&mut self, bin: BinId, item: ItemId) {
        self.bins[bin.0 as usize].push(item);
    }

    /// Number of bins (including any that ended up empty).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The item ids placed in `bin`.
    pub fn bin(&self, bin: BinId) -> &[ItemId] {
        &self.bins[bin.0 as usize]
    }

    /// Iterates over `(BinId, items)` pairs.
    pub fn iter_bins(&self) -> impl Iterator<Item = (BinId, &[ItemId])> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, v)| (BinId(i as u32), v.as_slice()))
    }

    /// The bin holding `item`, if any (O(n); build a map for hot paths).
    pub fn bin_of(&self, item: ItemId) -> Option<BinId> {
        for (b, items) in self.iter_bins() {
            if items.contains(&item) {
                return Some(b);
            }
        }
        None
    }

    /// Usage time of one bin: the span of its items' intervals, in ticks.
    pub fn bin_usage(&self, inst: &Instance, bin: BinId) -> u128 {
        let index = index_items(inst);
        span_of(self.bin(bin).iter().map(|id| index[id].interval())) as u128
    }

    /// Total usage time: `Σ_bins span(R_k)`, the MinUsageTime objective,
    /// in ticks.
    pub fn total_usage(&self, inst: &Instance) -> u128 {
        let index = index_items(inst);
        self.bins
            .iter()
            .map(|items| span_of(items.iter().map(|id| index[id].interval())) as u128)
            .sum()
    }

    /// Number of bins whose item set is active at time `t`.
    pub fn bins_open_at(&self, inst: &Instance, t: i64) -> usize {
        let index = index_items(inst);
        self.bins
            .iter()
            .filter(|items| items.iter().any(|id| index[id].active_at(t)))
            .count()
    }

    /// The maximum number of concurrently open bins over time.
    pub fn peak_open_bins(&self, inst: &Instance) -> usize {
        let index = index_items(inst);
        let mut events: Vec<(i64, i64)> = Vec::new();
        for items in &self.bins {
            for comp in
                crate::interval::union_components(items.iter().map(|id| index[id].interval()))
            {
                events.push((comp.start(), 1));
                events.push((comp.end(), -1));
            }
        }
        events.sort_unstable();
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    }

    /// Validates the packing against an instance:
    ///
    /// 1. every item of the instance is placed exactly once, and nothing
    ///    else is placed;
    /// 2. no bin exceeds unit capacity at any time (exact sweep per bin).
    pub fn validate(&self, inst: &Instance) -> Result<(), DbpError> {
        let index = index_items(inst);
        let mut placed: HashMap<ItemId, u32> = HashMap::with_capacity(inst.len());
        for (b, items) in self.iter_bins() {
            for id in items {
                if !index.contains_key(id) {
                    return Err(DbpError::PackingCoverage {
                        what: format!("bin {} contains unknown item {}", b.0, id),
                    });
                }
                *placed.entry(*id).or_insert(0) += 1;
            }
        }
        for r in inst.items() {
            match placed.get(&r.id()) {
                None => {
                    return Err(DbpError::PackingCoverage {
                        what: format!("item {} is not placed", r.id()),
                    })
                }
                Some(&n) if n > 1 => {
                    return Err(DbpError::PackingCoverage {
                        what: format!("item {} placed {n} times", r.id()),
                    })
                }
                _ => {}
            }
        }
        // Capacity check: sweep each bin.
        for (b, ids) in self.iter_bins() {
            let items: Vec<Item> = ids.iter().map(|id| *index[id]).collect();
            for seg in load_segments(&items) {
                if seg.total_size > Size::CAPACITY {
                    return Err(DbpError::CapacityExceeded {
                        bin: b.0 as usize,
                        at: seg.interval.start(),
                        level: seg.total_size.as_f64(),
                    });
                }
            }
        }
        Ok(())
    }
}

fn index_items(inst: &Instance) -> HashMap<ItemId, &Item> {
    inst.items().iter().map(|r| (r.id(), r)).collect()
}

/// An offline packing algorithm: sees the whole instance, returns a packing.
pub trait OfflinePacker {
    /// A short, stable display name (e.g. `"ddff"`).
    fn name(&self) -> &'static str;

    /// Packs the full instance.
    fn pack(&self, inst: &Instance) -> Packing;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_triples(&[
            (0.5, 0, 10),  // r0
            (0.5, 5, 20),  // r1
            (0.75, 8, 12), // r2
        ])
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn valid_packing_accepted() {
        let inst = inst();
        let p = Packing::from_bins(vec![ids(&[0, 1]), ids(&[2])]);
        p.validate(&inst).unwrap();
        assert_eq!(p.total_usage(&inst), 20 + 4);
        assert_eq!(p.num_bins(), 2);
    }

    #[test]
    fn capacity_violation_detected() {
        let inst = inst();
        // r1 (0.5) and r2 (0.75) overlap in [8,12): 1.25 > 1.
        let p = Packing::from_bins(vec![ids(&[0]), ids(&[1, 2])]);
        let err = p.validate(&inst).unwrap_err();
        assert!(matches!(err, DbpError::CapacityExceeded { bin: 1, .. }));
    }

    #[test]
    fn missing_item_detected() {
        let inst = inst();
        let p = Packing::from_bins(vec![ids(&[0, 1])]);
        assert!(matches!(
            p.validate(&inst),
            Err(DbpError::PackingCoverage { .. })
        ));
    }

    #[test]
    fn duplicate_item_detected() {
        let inst = inst();
        let p = Packing::from_bins(vec![ids(&[0, 1]), ids(&[2, 0])]);
        assert!(matches!(
            p.validate(&inst),
            Err(DbpError::PackingCoverage { .. })
        ));
    }

    #[test]
    fn unknown_item_detected() {
        let inst = inst();
        let p = Packing::from_bins(vec![ids(&[0, 1, 2, 9])]);
        assert!(matches!(
            p.validate(&inst),
            Err(DbpError::PackingCoverage { .. })
        ));
    }

    #[test]
    fn usage_counts_gaps_correctly() {
        // One bin with two disjoint items: usage is the sum of both
        // intervals (span of the union), not the hull.
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 100, 110)]);
        let p = Packing::from_bins(vec![ids(&[0, 1])]);
        p.validate(&inst).unwrap();
        assert_eq!(p.total_usage(&inst), 20);
    }

    #[test]
    fn open_bins_over_time() {
        let inst = inst();
        let p = Packing::from_bins(vec![ids(&[0, 1]), ids(&[2])]);
        assert_eq!(p.bins_open_at(&inst, 0), 1);
        assert_eq!(p.bins_open_at(&inst, 9), 2);
        assert_eq!(p.bins_open_at(&inst, 15), 1);
        assert_eq!(p.bins_open_at(&inst, 25), 0);
        assert_eq!(p.peak_open_bins(&inst), 2);
    }
}
