//! The online packing engine.
//!
//! Items are revealed in arrival order; an [`OnlinePacker`] must immediately
//! and irrevocably place each one (no migration, §3.1). The engine owns all
//! bin state, enforces capacity, closes a bin exactly when its last item
//! departs ("when all the items in a bin depart, the bin is closed", §5),
//! and accounts usage time exactly.
//!
//! ## Clairvoyance
//!
//! What a packer *sees* is controlled by [`ClairvoyanceMode`]:
//!
//! * [`ClairvoyanceMode::Clairvoyant`] — true departure times are visible at
//!   arrival (the paper's clairvoyant setting).
//! * [`ClairvoyanceMode::NonClairvoyant`] — departures are hidden
//!   (`None`), so classical Any Fit algorithms can be run honestly.
//! * [`ClairvoyanceMode::Noisy`] — the packer sees an *estimate* produced
//!   by a user function; actual departures still drive the simulation.
//!   This implements the §6 "inaccurate estimates" sensitivity study.
//!
//! The engine never leaks future arrivals: a packer only observes the
//! current item and the currently open bins.

use crate::error::DbpError;
use crate::instance::Instance;
use crate::interval::Time;
use crate::item::{Item, ItemId};
use crate::packing::{BinId, Packing};
use crate::size::Size;

pub use crate::openbins::OpenBins;

use std::sync::Arc;

/// Controls what departure information packers observe.
#[derive(Clone)]
pub enum ClairvoyanceMode {
    /// True departures visible at arrival (the paper's setting).
    Clairvoyant,
    /// No departure information (`departure == None` in all views).
    NonClairvoyant,
    /// Departure *estimates* computed by the given function from the true
    /// item; actual dynamics still use the true departure.
    Noisy(Arc<dyn Fn(&Item) -> Time + Send + Sync>),
}

impl std::fmt::Debug for ClairvoyanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClairvoyanceMode::Clairvoyant => write!(f, "Clairvoyant"),
            ClairvoyanceMode::NonClairvoyant => write!(f, "NonClairvoyant"),
            ClairvoyanceMode::Noisy(_) => write!(f, "Noisy(..)"),
        }
    }
}

/// The packer's view of the arriving item.
#[derive(Clone, Copy, Debug)]
pub struct ItemView {
    /// Item id.
    pub id: ItemId,
    /// Item size.
    pub size: Size,
    /// Arrival time (the current time).
    pub arrival: Time,
    /// Departure as visible under the engine's clairvoyance mode.
    pub departure: Option<Time>,
}

impl ItemView {
    /// Duration, if the departure is visible.
    pub fn duration(&self) -> Option<i64> {
        self.departure.map(|d| d - self.arrival)
    }
}

/// An item currently residing in an open bin, as visible to packers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActiveItem {
    /// Item id.
    pub id: ItemId,
    /// Item size.
    pub size: Size,
    /// Departure as visible under the engine's clairvoyance mode.
    pub departure: Option<Time>,
}

/// A currently open bin, as visible to packers.
///
/// Bins are presented in opening order (First Fit's "opened earliest"
/// tie-break is simply the first feasible element).
#[derive(Clone, Debug)]
pub struct OpenBin {
    id: BinId,
    opened_at: Time,
    tag: u64,
    level: Size,
    items: Vec<ActiveItem>,
}

impl OpenBin {
    /// Creates a bin holding its first item (crate-internal: bins are only
    /// created by the engines).
    pub(crate) fn new(id: BinId, opened_at: Time, tag: u64, first: ActiveItem) -> OpenBin {
        OpenBin {
            id,
            opened_at,
            tag,
            level: first.size,
            items: vec![first],
        }
    }

    /// Adds an item, enforcing capacity.
    pub(crate) fn push_item(&mut self, active: ActiveItem, size: Size) -> Result<(), DbpError> {
        if !self.fits(size) {
            return Err(DbpError::BadDecision {
                what: format!(
                    "item {} of size {} does not fit bin {:?} (level {})",
                    active.id, size, self.id, self.level
                ),
            });
        }
        self.level += size;
        self.items.push(active);
        Ok(())
    }

    /// Removes an item; returns whether the bin became empty.
    pub(crate) fn remove_item(&mut self, id: ItemId) -> Result<bool, DbpError> {
        let pos = self
            .items
            .iter()
            .position(|a| a.id == id)
            .ok_or_else(|| DbpError::Internal {
                what: format!("item {id} missing from its bin at departure"),
            })?;
        let removed = self.items.swap_remove(pos);
        self.level -= removed.size;
        Ok(self.items.is_empty())
    }

    /// Global bin id (opening order across the whole run).
    pub fn id(&self) -> BinId {
        self.id
    }

    /// When the bin was opened.
    pub fn opened_at(&self) -> Time {
        self.opened_at
    }

    /// The tag supplied by the packer when it opened this bin. Packers use
    /// tags to mark bin categories (e.g. the departure-time class of §5.2)
    /// without keeping parallel bookkeeping.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Current level (total size of active items).
    pub fn level(&self) -> Size {
        self.level
    }

    /// Remaining headroom (`capacity − level`).
    pub fn gap(&self) -> Size {
        Size::CAPACITY - self.level
    }

    /// Whether `size` fits right now. Because items never return and the
    /// current contents' levels only decrease in the future, fitting now
    /// implies fitting for the item's entire residence.
    pub fn fits(&self, size: Size) -> bool {
        self.level + size <= Size::CAPACITY
    }

    /// The active items in the bin.
    pub fn items(&self) -> &[ActiveItem] {
        &self.items
    }
}

/// A packer's placement decision for one arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Place in the open bin with this id (must be open and must fit).
    Existing(BinId),
    /// Open a new bin carrying `tag` and place the item there.
    New {
        /// Category tag stored on the bin for the packer's later queries.
        tag: u64,
    },
}

impl Decision {
    /// A new bin with the default tag 0.
    pub const NEW: Decision = Decision::New { tag: 0 };
}

/// Opaque, serializable packer state captured in a checkpoint.
///
/// Most roster packers are pure functions of the arriving item and the
/// open set and carry no mutable state; those use the default empty
/// value. Stateful packers (CBDT's classification epoch, and the
/// combined classifier's) store named integer fields. Fields are kept
/// sorted by name so equal states compare equal bit-for-bit regardless
/// of insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackerState {
    fields: Vec<(String, i64)>,
}

impl PackerState {
    /// An empty (stateless) packer state.
    pub fn new() -> PackerState {
        PackerState::default()
    }

    /// Sets `key` to `value`, replacing any existing entry.
    pub fn set(&mut self, key: &str, value: i64) {
        match self.fields.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (key.to_string(), value)),
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<i64> {
        self.fields
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.fields[i].1)
    }

    /// Whether the state carries no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in canonical (name-sorted) order.
    pub fn fields(&self) -> &[(String, i64)] {
        &self.fields
    }

    /// Builds a state from arbitrary-order fields (checkpoint decode).
    pub fn from_fields(mut fields: Vec<(String, i64)>) -> PackerState {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        PackerState { fields }
    }
}

/// An online packing algorithm.
pub trait OnlinePacker {
    /// Display name including parameterization, e.g. `"cbdt(rho=8)"`.
    fn name(&self) -> String;

    /// Called once before each run; resets internal state.
    fn reset(&mut self) {}

    /// Chooses where the arriving item goes.
    ///
    /// `open_bins` iterates in opening order (First Fit's "opened
    /// earliest" tie-break is simply the first feasible element); use
    /// [`OpenBins::iter_tag`] to scan a single category in O(category)
    /// instead of O(fleet), and [`OpenBins::get`] for O(1) lookup by id.
    /// For the Any-Fit rules, prefer the indexed queries
    /// ([`OpenBins::first_fit`], [`OpenBins::best_fit`],
    /// [`OpenBins::worst_fit`]): O(log category), decision-identical to
    /// the linear scans, and they hand back the probe count to report
    /// from [`OnlinePacker::last_scanned`].
    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision;

    /// How much work the most recent [`OnlinePacker::place`] call did to
    /// reach its decision, or `None` if this packer does not track it.
    /// For a linear scan this is the number of candidate bins inspected
    /// (including the chosen bin); for an indexed packer it is the number
    /// of index nodes actually probed, as returned by the
    /// [`OpenBins`] fit queries — *not* the size of the pool the index
    /// covers.
    ///
    /// Observability hook: the engine reads this — only while an observer
    /// is attached — to fill `candidates_scanned` in
    /// [`crate::observe::PackEvent::PlacementDecided`]. Packers that scan
    /// or probe candidates anyway can report the exact count for free;
    /// when `None` the engine falls back to the size of the open fleet
    /// (the candidate *pool*), which deliberately over-reports — a packer
    /// wanting faithful scan-depth histograms must implement this. The
    /// count is a pure function of the decision stream, so it is safe for
    /// replay-deterministic work metrics, and it is transient per-call
    /// state: it does not belong in [`OnlinePacker::save_state`].
    fn last_scanned(&self) -> Option<usize> {
        None
    }

    /// Captures internal state for a checkpoint
    /// ([`crate::stream::StreamingSession::snapshot`]). The default
    /// (stateless) implementation returns the empty state; packers whose
    /// decisions depend on run history must override this together with
    /// [`OnlinePacker::restore_state`].
    fn save_state(&self) -> PackerState {
        PackerState::new()
    }

    /// Restores state captured by [`OnlinePacker::save_state`]. Called
    /// after [`OnlinePacker::reset`] on the restore path. The default
    /// (stateless) implementation accepts only the empty state, so a
    /// snapshot carrying state cannot be silently dropped.
    fn restore_state(&mut self, state: &PackerState) -> Result<(), DbpError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(DbpError::InvalidParameter {
                what: format!(
                    "packer {} is stateless but the snapshot carries packer state",
                    self.name()
                ),
            })
        }
    }
}

/// Record of one bin's lifetime after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinRecord {
    /// The bin id (opening order).
    pub id: BinId,
    /// Opening time (arrival of its first item).
    pub opened_at: Time,
    /// Closing time (departure of its last item).
    pub closed_at: Time,
    /// The packer-supplied tag.
    pub tag: u64,
    /// Every item ever placed in the bin.
    pub items: Vec<ItemId>,
}

impl BinRecord {
    /// Usage time of this bin in ticks. For online runs bins hold at least
    /// one item at all times between open and close, so this equals the
    /// span of the bin's items.
    pub fn usage(&self) -> u128 {
        (self.closed_at - self.opened_at) as u128
    }
}

/// The outcome of an online run. Two runs compare equal only when the
/// full bin history matches bit-for-bit (the checkpoint/restore
/// differential tests rely on this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineRun {
    /// Item→bin assignment, convertible to a [`Packing`].
    pub packing: Packing,
    /// Total usage time in ticks.
    pub usage: u128,
    /// Per-bin lifetime records in opening order.
    pub bins: Vec<BinRecord>,
}

impl OnlineRun {
    /// Number of bins opened over the whole run.
    pub fn bins_opened(&self) -> usize {
        self.bins.len()
    }

    /// The open-server count over time (the fleet timeline an autoscaler
    /// would plot). Its integral equals the total usage and its max is the
    /// peak fleet size.
    pub fn fleet_series(&self) -> crate::stats::StepSeries {
        let mut deltas = Vec::with_capacity(self.bins.len() * 2);
        for b in &self.bins {
            deltas.push((b.opened_at, 1));
            deltas.push((b.closed_at, -1));
        }
        crate::stats::StepSeries::from_deltas(deltas)
    }
}

/// Drives an [`OnlinePacker`] over an instance.
#[derive(Clone, Debug)]
pub struct OnlineEngine {
    mode: ClairvoyanceMode,
}

impl OnlineEngine {
    /// Creates an engine with the given clairvoyance mode.
    pub fn new(mode: ClairvoyanceMode) -> Self {
        OnlineEngine { mode }
    }

    /// A clairvoyant engine (the paper's setting).
    pub fn clairvoyant() -> Self {
        Self::new(ClairvoyanceMode::Clairvoyant)
    }

    /// A non-clairvoyant engine.
    pub fn non_clairvoyant() -> Self {
        Self::new(ClairvoyanceMode::NonClairvoyant)
    }

    /// Runs the packer over the instance's items in arrival order.
    ///
    /// Departures at time `t` are processed before arrivals at time `t`
    /// (intervals are half-open), and a bin is closed — removed from the
    /// open set — the moment its last item departs. This is a convenience
    /// wrapper over [`crate::stream::StreamingSession`], which is the
    /// incremental API for real online integrations; both paths share one
    /// implementation.
    pub fn run(
        &self,
        inst: &Instance,
        packer: &mut dyn OnlinePacker,
    ) -> Result<OnlineRun, DbpError> {
        self.run_observed(inst, packer, &mut crate::observe::NoopObserver)
    }

    /// Like [`OnlineEngine::run`], but reports every packing event to the
    /// given [`crate::observe::PackObserver`]. The observer is
    /// monomorphized in; with [`crate::observe::NoopObserver`] this
    /// compiles to exactly the unobserved loop.
    pub fn run_observed<O: crate::observe::PackObserver>(
        &self,
        inst: &Instance,
        packer: &mut dyn OnlinePacker,
        obs: &mut O,
    ) -> Result<OnlineRun, DbpError> {
        let mut session =
            crate::stream::StreamingSession::with_observer(self.mode.clone(), packer, obs);
        for item in inst.items() {
            session.arrive(item)?;
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First Fit on current levels only — the reference Any Fit algorithm.
    struct TestFirstFit;
    impl OnlinePacker for TestFirstFit {
        fn name(&self) -> String {
            "test-ff".into()
        }
        fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
            for b in open_bins {
                if b.fits(item.size) {
                    return Decision::Existing(b.id());
                }
            }
            Decision::NEW
        }
    }

    /// Always opens a new bin.
    struct AlwaysNew;
    impl OnlinePacker for AlwaysNew {
        fn name(&self) -> String {
            "always-new".into()
        }
        fn place(&mut self, _: &ItemView, _: &OpenBins) -> Decision {
            Decision::NEW
        }
    }

    /// Greedily reuses the first open bin regardless of fit (to exercise
    /// engine feasibility rejection).
    struct BadPacker;
    impl OnlinePacker for BadPacker {
        fn name(&self) -> String {
            "bad".into()
        }
        fn place(&mut self, _: &ItemView, open_bins: &OpenBins) -> Decision {
            match open_bins.first() {
                Some(b) => Decision::Existing(b.id()),
                None => Decision::NEW,
            }
        }
    }

    #[test]
    fn first_fit_shares_bins() {
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 2, 8), (0.5, 3, 9)]);
        let run = OnlineEngine::clairvoyant()
            .run(&inst, &mut TestFirstFit)
            .unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.bins_opened(), 2);
        // Bin 0 holds items 0 and 1 (both 0.5); item 2 opens bin 1.
        assert_eq!(run.usage, 10 + 6);
    }

    #[test]
    fn always_new_usage_is_total_duration() {
        let inst = Instance::from_triples(&[(0.1, 0, 10), (0.1, 2, 8), (0.1, 3, 9)]);
        let run = OnlineEngine::clairvoyant()
            .run(&inst, &mut AlwaysNew)
            .unwrap();
        assert_eq!(run.bins_opened(), 3);
        assert_eq!(run.usage, 10 + 6 + 6);
    }

    #[test]
    fn infeasible_decision_rejected() {
        let inst = Instance::from_triples(&[(0.8, 0, 10), (0.8, 2, 8)]);
        let err = OnlineEngine::clairvoyant()
            .run(&inst, &mut BadPacker)
            .unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
    }

    #[test]
    fn bin_closes_at_last_departure_and_is_not_reused() {
        // Item 0: [0,5). Item 1 arrives exactly at 5 — the bin holding item
        // 0 has closed, so a new bin must open even though levels allow it.
        let inst = Instance::from_triples(&[(0.5, 0, 5), (0.5, 5, 10)]);
        let run = OnlineEngine::clairvoyant()
            .run(&inst, &mut TestFirstFit)
            .unwrap();
        assert_eq!(run.bins_opened(), 2);
        assert_eq!(run.usage, 10);
        assert_eq!(run.bins[0].closed_at, 5);
        assert_eq!(run.bins[1].opened_at, 5);
    }

    #[test]
    fn non_clairvoyant_hides_departures() {
        struct AssertHidden;
        impl OnlinePacker for AssertHidden {
            fn name(&self) -> String {
                "assert-hidden".into()
            }
            fn place(&mut self, item: &ItemView, bins: &OpenBins) -> Decision {
                assert!(item.departure.is_none());
                for b in bins {
                    for a in b.items() {
                        assert!(a.departure.is_none());
                    }
                }
                Decision::NEW
            }
        }
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 1, 4)]);
        OnlineEngine::non_clairvoyant()
            .run(&inst, &mut AssertHidden)
            .unwrap();
    }

    #[test]
    fn noisy_mode_shows_estimates_but_sim_uses_truth() {
        // Estimator always claims departure = arrival + 1000.
        struct Record(Vec<Time>);
        impl OnlinePacker for Record {
            fn name(&self) -> String {
                "record".into()
            }
            fn place(&mut self, item: &ItemView, _: &OpenBins) -> Decision {
                self.0.push(item.departure.unwrap());
                Decision::NEW
            }
        }
        let inst = Instance::from_triples(&[(0.5, 0, 10)]);
        let engine = OnlineEngine::new(ClairvoyanceMode::Noisy(Arc::new(|r: &Item| {
            r.arrival() + 1000
        })));
        let mut p = Record(Vec::new());
        let run = engine.run(&inst, &mut p).unwrap();
        assert_eq!(p.0, vec![1000]);
        // Usage still reflects the true departure.
        assert_eq!(run.usage, 10);
    }

    #[test]
    fn usage_equals_packing_span_sum() {
        let inst = Instance::from_triples(&[
            (0.4, 0, 7),
            (0.4, 1, 12),
            (0.4, 2, 5),
            (0.9, 3, 6),
            (0.2, 8, 30),
        ]);
        let run = OnlineEngine::clairvoyant()
            .run(&inst, &mut TestFirstFit)
            .unwrap();
        run.packing.validate(&inst).unwrap();
        assert_eq!(run.usage, run.packing.total_usage(&inst));
    }

    #[test]
    fn tags_are_preserved() {
        struct Tagger;
        impl OnlinePacker for Tagger {
            fn name(&self) -> String {
                "tagger".into()
            }
            fn place(&mut self, item: &ItemView, bins: &OpenBins) -> Decision {
                let tag = item.id.0 as u64 % 2;
                for b in bins {
                    if b.tag() == tag && b.fits(item.size) {
                        return Decision::Existing(b.id());
                    }
                }
                Decision::New { tag }
            }
        }
        let inst = Instance::from_triples(&[(0.3, 0, 10), (0.3, 1, 10), (0.3, 2, 10)]);
        let run = OnlineEngine::clairvoyant().run(&inst, &mut Tagger).unwrap();
        assert_eq!(run.bins_opened(), 2);
        assert_eq!(run.bins[0].tag, 0);
        assert_eq!(run.bins[1].tag, 1);
        // items 0 and 2 share the tag-0 bin
        assert_eq!(run.packing.bin(BinId(0)).len(), 2);
    }
}
