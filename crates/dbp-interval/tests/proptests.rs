//! Property tests for the interval-scheduling substrate.

use dbp_interval::{
    bucket_first_fit, busy_lower_bound, greedy_proper, is_proper, longest_first, online_first_fit,
    Job,
};
use proptest::prelude::*;

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec((0i64..100, 1i64..50), 1..=max).prop_map(|spec| {
        spec.into_iter()
            .enumerate()
            .map(|(i, (a, len))| Job::new(i as u32, a, a + len))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every scheduler produces a valid schedule whose busy time respects
    /// the lower bound, for every capacity.
    #[test]
    fn schedulers_valid_and_above_lb(jobs in arb_jobs(25), g in 1usize..6) {
        let lb = busy_lower_bound(&jobs, g);
        for (name, sched) in [
            ("ff", online_first_fit(&jobs, g)),
            ("bucket", bucket_first_fit(&jobs, g, 3, 2.0)),
            ("longest", longest_first(&jobs, g)),
            ("greedy", greedy_proper(&jobs, g)),
        ] {
            sched.validate(&jobs, g).unwrap_or_else(|e| panic!("{name}: {e}"));
            prop_assert!(sched.busy_time() >= lb, "{} beat the LB", name);
        }
    }

    /// Offline longest-first respects the Flammini factor-4 guarantee
    /// (against the LB, which lower-bounds OPT).
    #[test]
    fn longest_first_four_approx(jobs in arb_jobs(25), g in 1usize..6) {
        let lb = busy_lower_bound(&jobs, g).max(1);
        let s = longest_first(&jobs, g);
        prop_assert!(s.busy_time() <= 4 * lb, "{} > 4x{}", s.busy_time(), lb);
    }

    /// With g = 1 every machine holds pairwise-disjoint jobs, and offline
    /// longest-first busy time equals total job length.
    #[test]
    fn g_one_machines_are_disjoint(jobs in arb_jobs(15)) {
        let s = longest_first(&jobs, 1);
        s.validate(&jobs, 1).unwrap();
        for m in s.machines() {
            for (i, a) in m.iter().enumerate() {
                for b in &m[i + 1..] {
                    prop_assert!(!a.interval.intersects(&b.interval));
                }
            }
        }
        let total: u128 = jobs.iter().map(|j| j.len() as u128).sum();
        prop_assert_eq!(s.busy_time(), total);
    }

    /// Capacity bounds for the offline heuristic. Note busy time is NOT
    /// monotone in `g` for longest-first (proptest found a counterexample:
    /// extra capacity changes placements and can stretch a machine's
    /// span); only the optimum is monotone. What does hold: for every `g`,
    /// busy time is sandwiched between the capacity-`g` lower bound and
    /// the `g = 1` busy time, which equals the total job length exactly.
    #[test]
    fn busy_time_sandwiched(jobs in arb_jobs(20)) {
        let total_len: u128 = jobs.iter().map(|j| j.len() as u128).sum();
        let at_one = longest_first(&jobs, 1);
        at_one.validate(&jobs, 1).unwrap();
        prop_assert_eq!(at_one.busy_time(), total_len);
        for g in 2..=6usize {
            let s = longest_first(&jobs, g);
            s.validate(&jobs, g).unwrap();
            prop_assert!(s.busy_time() <= total_len);
            prop_assert!(s.busy_time() >= busy_lower_bound(&jobs, g));
        }
    }

    /// BucketFirstFit degenerates to plain FF when every job lands in one
    /// bucket.
    #[test]
    fn bucket_with_one_bucket_is_ff(jobs in arb_jobs(20), g in 1usize..5) {
        // All lengths < 50, so base 1 with alpha 64 puts everything in
        // bucket [1, 64).
        let a = bucket_first_fit(&jobs, g, 1, 64.0);
        let b = online_first_fit(&jobs, g);
        prop_assert_eq!(a.busy_time(), b.busy_time());
        prop_assert_eq!(a.num_machines(), b.num_machines());
    }

    /// `is_proper` matches its definition.
    #[test]
    fn is_proper_reference(jobs in arb_jobs(10)) {
        let mut expect = true;
        for a in &jobs {
            for b in &jobs {
                if a.id != b.id
                    && a.interval != b.interval
                    && a.interval.contains_interval(&b.interval)
                {
                    expect = false;
                }
            }
        }
        prop_assert_eq!(is_proper(&jobs), expect);
    }
}
