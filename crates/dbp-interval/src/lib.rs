//! # dbp-interval — interval scheduling with bounded parallelism
//!
//! The related problem the paper generalizes (§1, §2): unit-demand interval
//! jobs on machines that each run at most `g` jobs concurrently; minimize
//! total machine *busy time*. This is MinUsageTime DBP restricted to items
//! of size exactly `1/g` — but `1/g` need not be representable in fixed
//! point, so this crate implements the substrate natively with integer
//! occupancy counts.
//!
//! Implemented algorithms:
//!
//! * [`online_first_fit`] — online First Fit (machine closes when empty).
//! * [`bucket_first_fit`] — Shalom et al.'s BucketFirstFit: jobs classified
//!   by length into buckets of ratio `α`, First Fit within each bucket.
//!   The paper's §5.3 remark shows Theorem 5 improves its competitive-ratio
//!   bound from `(2α+2)·⌈log_α μ⌉` to `α + ⌈log_α μ⌉ + 4` — experiment E4
//!   measures both against real runs.
//! * [`longest_first`] — offline duration-descending First Fit (Flammini
//!   et al.'s 4-approximation in this unit-demand setting).
//!
//! [`busy_lower_bound`] is the `∫⌈N(t)/g⌉dt` bound (the unit-demand twin of
//! Proposition 3).
//!
//! ```
//! use dbp_interval::{bucket_first_fit, busy_lower_bound, Job};
//!
//! let jobs: Vec<Job> = (0..6).map(|i| Job::new(i, i as i64, i as i64 + 40)).collect();
//! let schedule = bucket_first_fit(&jobs, 3, 10, 2.0);
//! schedule.validate(&jobs, 3).unwrap();
//! assert!(schedule.busy_time() >= busy_lower_bound(&jobs, 3));
//! ```

#![warn(missing_docs)]

use dbp_core::interval::{span_of, Interval, Time};
use std::collections::BinaryHeap;

/// A unit-demand interval job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Unique job id.
    pub id: u32,
    /// Active interval `[arrival, departure)`.
    pub interval: Interval,
}

impl Job {
    /// Creates a job; panics on an empty interval.
    pub fn new(id: u32, arrival: Time, departure: Time) -> Job {
        Job {
            id,
            interval: Interval::of(arrival, departure),
        }
    }

    /// Job length.
    pub fn len(&self) -> i64 {
        self.interval.len()
    }

    /// Jobs always have positive length (intervals are non-empty by
    /// construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// An assignment of jobs to machines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    machines: Vec<Vec<Job>>,
}

impl Schedule {
    /// Jobs per machine.
    pub fn machines(&self) -> &[Vec<Job>] {
        &self.machines
    }

    /// Number of machines used.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total busy time: per-machine span of assigned jobs, summed.
    pub fn busy_time(&self) -> u128 {
        self.machines
            .iter()
            .map(|jobs| span_of(jobs.iter().map(|j| j.interval)) as u128)
            .sum()
    }

    /// Validates that no machine ever runs more than `g` jobs at once and
    /// each job appears exactly once.
    pub fn validate(&self, jobs: &[Job], g: usize) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for m in &self.machines {
            for j in m {
                if !seen.insert(j.id) {
                    return Err(format!("job {} scheduled twice", j.id));
                }
            }
            // Sweep the machine's occupancy.
            let mut events: Vec<(Time, i32)> = Vec::new();
            for j in m {
                events.push((j.interval.start(), 1));
                events.push((j.interval.end(), -1));
            }
            events.sort_unstable();
            let mut occ = 0i32;
            for (t, d) in events {
                occ += d;
                if occ as usize > g {
                    return Err(format!("machine exceeds g={g} at t={t}"));
                }
            }
        }
        if seen.len() != jobs.len() {
            return Err(format!("{} of {} jobs scheduled", seen.len(), jobs.len()));
        }
        Ok(())
    }
}

/// The busy-time lower bound `max(∫⌈N(t)/g⌉dt, span, Σlen/g)` — the
/// unit-demand analogues of Propositions 1–3.
pub fn busy_lower_bound(jobs: &[Job], g: usize) -> u128 {
    if jobs.is_empty() {
        return 0;
    }
    let mut events: Vec<(Time, i64)> = Vec::new();
    for j in jobs {
        events.push((j.interval.start(), 1));
        events.push((j.interval.end(), -1));
    }
    events.sort_unstable();
    let mut lb3: u128 = 0;
    let mut span: u128 = 0;
    let mut count: i64 = 0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            count += events[i].1;
            i += 1;
        }
        if i < events.len() && count > 0 {
            let len = (events[i].0 - t) as u128;
            span += len;
            lb3 += (count as u128).div_ceil(g as u128) * len;
        }
    }
    let total_len: u128 = jobs.iter().map(|j| j.len() as u128).sum();
    lb3.max(span).max(total_len.div_ceil(g as u128))
}

/// Online simulation state: machines in opening order, closed when empty.
struct Machines {
    g: usize,
    /// (machine index in `all`, tag) for open machines, opening order.
    open: Vec<(usize, u64)>,
    all: Vec<Vec<Job>>,
    /// Min-heap of (departure, machine index).
    departures: BinaryHeap<std::cmp::Reverse<(Time, usize)>>,
    /// Current occupancy per machine index.
    occupancy: Vec<usize>,
}

impl Machines {
    fn new(g: usize) -> Self {
        Machines {
            g,
            open: Vec::new(),
            all: Vec::new(),
            departures: BinaryHeap::new(),
            occupancy: Vec::new(),
        }
    }

    fn close_until(&mut self, t: Time) {
        while let Some(&std::cmp::Reverse((dt, mi))) = self.departures.peek() {
            if dt > t {
                break;
            }
            self.departures.pop();
            self.occupancy[mi] -= 1;
            if self.occupancy[mi] == 0 {
                self.open.retain(|&(idx, _)| idx != mi);
            }
        }
    }

    fn place(&mut self, job: Job, tag: u64) {
        self.close_until(job.interval.start());
        let slot = self
            .open
            .iter()
            .find(|&&(idx, t)| t == tag && self.occupancy[idx] < self.g)
            .map(|&(idx, _)| idx);
        let idx = match slot {
            Some(idx) => idx,
            None => {
                self.all.push(Vec::new());
                self.occupancy.push(0);
                let idx = self.all.len() - 1;
                self.open.push((idx, tag));
                idx
            }
        };
        self.all[idx].push(job);
        self.occupancy[idx] += 1;
        self.departures
            .push(std::cmp::Reverse((job.interval.end(), idx)));
    }

    fn finish(self) -> Schedule {
        Schedule { machines: self.all }
    }
}

fn sorted_by_arrival(jobs: &[Job]) -> Vec<Job> {
    let mut v = jobs.to_vec();
    v.sort_by_key(|j| (j.interval.start(), j.id));
    v
}

/// Online First Fit: earliest-opened open machine with occupancy < `g`.
pub fn online_first_fit(jobs: &[Job], g: usize) -> Schedule {
    assert!(g >= 1);
    let mut m = Machines::new(g);
    for j in sorted_by_arrival(jobs) {
        m.place(j, 0);
    }
    m.finish()
}

/// Shalom et al.'s BucketFirstFit: bucket `i` holds jobs with length in
/// `[base·αⁱ, base·αⁱ⁺¹)`; First Fit within each bucket. This is exactly
/// classify-by-duration First Fit specialized to unit demands.
pub fn bucket_first_fit(jobs: &[Job], g: usize, base: i64, alpha: f64) -> Schedule {
    assert!(g >= 1 && base >= 1 && alpha > 1.0);
    let mut m = Machines::new(g);
    for j in sorted_by_arrival(jobs) {
        let ratio = j.len() as f64 / base as f64;
        let mut i = (ratio.ln() / alpha.ln()).floor() as i64;
        while base as f64 * alpha.powi(i as i32) > j.len() as f64 {
            i -= 1;
        }
        while base as f64 * alpha.powi(i as i32 + 1) <= j.len() as f64 {
            i += 1;
        }
        m.place(j, (i + (1 << 32)) as u64);
    }
    m.finish()
}

/// Offline duration-descending First Fit (Flammini et al.): sort by length
/// descending, place each job on the lowest-indexed machine whose occupancy
/// stays within `g` throughout the job's interval.
pub fn longest_first(jobs: &[Job], g: usize) -> Schedule {
    assert!(g >= 1);
    let mut sorted = jobs.to_vec();
    sorted.sort_by_key(|j| (std::cmp::Reverse(j.len()), j.interval.start(), j.id));
    let mut machines: Vec<Vec<Job>> = Vec::new();
    for j in sorted {
        let mut placed = false;
        for m in machines.iter_mut() {
            if fits_counted(m, &j, g) {
                m.push(j);
                placed = true;
                break;
            }
        }
        if !placed {
            machines.push(vec![j]);
        }
    }
    Schedule { machines }
}

/// Flammini et al.'s greedy for the *proper* special case (no job interval
/// properly contains another): sort by start time and greedily fill each
/// machine to `g` concurrent jobs before opening the next. A
/// `(2 − 1/g)`-approximation on proper instances (Mertzios et al.'s
/// improvement of the greedy's factor 2); on general instances it is only
/// a heuristic and is exposed for the E4 comparison.
///
/// # Panics
/// If `g == 0`.
pub fn greedy_proper(jobs: &[Job], g: usize) -> Schedule {
    assert!(g >= 1);
    let mut sorted = jobs.to_vec();
    sorted.sort_by_key(|j| (j.interval.start(), j.interval.end(), j.id));
    let mut machines: Vec<Vec<Job>> = Vec::new();
    for j in sorted {
        let mut placed = false;
        for m in machines.iter_mut() {
            if fits_counted(m, &j, g) {
                m.push(j);
                placed = true;
                break;
            }
        }
        if !placed {
            machines.push(vec![j]);
        }
    }
    Schedule { machines }
}

/// Whether no job interval in `jobs` properly contains another — the
/// precondition under which [`greedy_proper`] carries its guarantee.
pub fn is_proper(jobs: &[Job]) -> bool {
    for (i, a) in jobs.iter().enumerate() {
        for b in &jobs[i + 1..] {
            let ab = a.interval.contains_interval(&b.interval) && a.interval != b.interval;
            let ba = b.interval.contains_interval(&a.interval) && a.interval != b.interval;
            if ab || ba {
                return false;
            }
        }
    }
    true
}

/// Whether adding `job` keeps machine occupancy ≤ `g` at all times.
fn fits_counted(machine: &[Job], job: &Job, g: usize) -> bool {
    // Occupancy within job.interval changes only at other jobs' endpoints;
    // check at job start and at each overlapping job's start.
    let mut checkpoints = vec![job.interval.start()];
    for other in machine {
        if job.interval.contains(other.interval.start()) {
            checkpoints.push(other.interval.start());
        }
    }
    for t in checkpoints {
        let occ = machine.iter().filter(|o| o.interval.contains(t)).count();
        if occ + 1 > g {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(spec: &[(i64, i64)]) -> Vec<Job> {
        spec.iter()
            .enumerate()
            .map(|(i, &(a, d))| Job::new(i as u32, a, d))
            .collect()
    }

    #[test]
    fn first_fit_respects_g() {
        let js = jobs(&[(0, 10), (0, 10), (0, 10), (0, 10), (0, 10)]);
        let s = online_first_fit(&js, 2);
        s.validate(&js, 2).unwrap();
        assert_eq!(s.num_machines(), 3);
        assert_eq!(s.busy_time(), 30);
    }

    #[test]
    fn machine_closes_when_empty() {
        let js = jobs(&[(0, 5), (5, 10)]);
        let s = online_first_fit(&js, 4);
        s.validate(&js, 4).unwrap();
        // First machine closed at t=5; second job opens a new machine.
        assert_eq!(s.num_machines(), 2);
        assert_eq!(s.busy_time(), 10);
    }

    #[test]
    fn bucket_ff_separates_lengths() {
        // One long and one short job, both fit one machine — BucketFF
        // separates them, plain FF shares.
        let js = jobs(&[(0, 10), (0, 1000)]);
        let ff = online_first_fit(&js, 2);
        assert_eq!(ff.num_machines(), 1);
        let bff = bucket_first_fit(&js, 2, 5, 2.0);
        bff.validate(&js, 2).unwrap();
        assert_eq!(bff.num_machines(), 2);
    }

    #[test]
    fn bucket_ff_beats_ff_on_tail_trap() {
        // g=2 version of the tail trap: pairs (long tiny-role, short) where
        // FF pins machines open. Generations stay full during arrivals.
        let mut spec = Vec::new();
        for i in 0..6i64 {
            spec.push((i * 2, 10_000)); // long job
            spec.push((i * 2, 13)); // short job keeps machine full
        }
        let js = jobs(&spec);
        let ff = online_first_fit(&js, 2);
        ff.validate(&js, 2).unwrap();
        let bff = bucket_first_fit(&js, 2, 10, 4.0);
        bff.validate(&js, 2).unwrap();
        assert!(
            bff.busy_time() < ff.busy_time(),
            "bucket {} vs ff {}",
            bff.busy_time(),
            ff.busy_time()
        );
        // All long jobs share machines under BucketFF: 3 machines of 2.
        let lb = busy_lower_bound(&js, 2);
        assert!((bff.busy_time() as f64) / (lb as f64) < 2.0);
    }

    #[test]
    fn longest_first_matches_flammini_shape() {
        let js = jobs(&[(0, 100), (10, 90), (20, 80), (0, 5), (95, 99)]);
        let s = longest_first(&js, 3);
        s.validate(&js, 3).unwrap();
        // The three long overlapping jobs share one machine (g=3);
        // the two short ones fit in the remaining slot windows.
        assert!(s.num_machines() <= 2);
    }

    #[test]
    fn lower_bound_props() {
        let js = jobs(&[(0, 10), (0, 10), (0, 10)]);
        // N(t)=3 on [0,10), g=2 → ⌈3/2⌉·10 = 20.
        assert_eq!(busy_lower_bound(&js, 2), 20);
        assert_eq!(busy_lower_bound(&js, 3), 10);
        assert_eq!(busy_lower_bound(&[], 2), 0);
        // Busy time of any valid schedule ≥ LB.
        let s = online_first_fit(&js, 2);
        assert!(s.busy_time() >= busy_lower_bound(&js, 2));
    }

    #[test]
    fn greedy_proper_on_proper_instance() {
        // A sliding window of same-length jobs: proper by construction.
        let js: Vec<Job> = (0..12)
            .map(|i| Job::new(i as u32, i as i64 * 5, i as i64 * 5 + 40))
            .collect();
        assert!(is_proper(&js));
        let s = greedy_proper(&js, 4);
        s.validate(&js, 4).unwrap();
        let lb = busy_lower_bound(&js, 4);
        // (2 − 1/g) guarantee on proper instances.
        assert!(
            s.busy_time() as f64 <= (2.0 - 0.25) * lb as f64,
            "busy {} vs bound {}",
            s.busy_time(),
            (2.0 - 0.25) * lb as f64
        );
    }

    #[test]
    fn is_proper_detects_containment() {
        let proper = jobs(&[(0, 10), (5, 15)]);
        assert!(is_proper(&proper));
        let improper = jobs(&[(0, 20), (5, 15)]);
        assert!(!is_proper(&improper));
        // Identical intervals do not count as proper containment.
        let identical = jobs(&[(0, 10), (0, 10)]);
        assert!(is_proper(&identical));
    }

    #[test]
    fn offline_reuses_machines_across_gaps() {
        let js = jobs(&[(0, 10), (20, 30)]);
        let s = longest_first(&js, 1);
        s.validate(&js, 1).unwrap();
        assert_eq!(s.num_machines(), 1);
        assert_eq!(s.busy_time(), 20);
    }

    #[test]
    fn g_one_is_plain_interval_assignment() {
        let js = jobs(&[(0, 10), (5, 15), (12, 20)]);
        let s = online_first_fit(&js, 1);
        s.validate(&js, 1).unwrap();
        assert_eq!(s.num_machines(), 3); // second overlaps first; third
                                         // arrives while second machine busy
                                         // → new machine (first closed at 10
                                         // before 12? yes → reopened? no:
                                         // online machines close; j3 at t=12
                                         // sees machine2 busy (5..15) only.
    }
}
