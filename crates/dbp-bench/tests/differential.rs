//! Differential tests for the indexed streaming engine.
//!
//! Three independent paths must agree bit-for-bit on every instance, for
//! every algorithm in the online roster:
//!
//! 1. the batch engine ([`dbp_core::OnlineEngine::run`]),
//! 2. a hand-driven [`dbp_core::stream::StreamingSession`] fed one
//!    arrival at a time,
//! 3. the run reconstructed by `dbp-obs` replay from the observed event
//!    stream — an independent oracle that also re-validates the packing
//!    against the instance and recomputes usage from bin lifetimes.
//!
//! "Agree" means identical placements, identical total usage, and
//! identical per-bin lifetime records (id, opening/closing time, tag,
//! item list). A final test pits the indexed engine against the
//! seed-style linear-bookkeeping engine in [`dbp_bench::reference`] on a
//! run holding ~10k bins open at once: same results, and the indexed
//! engine must be strictly faster.

use dbp_bench::reference::{reference_next_fit, wide_fleet_instance};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::online::BinRecord;
use dbp_core::stream::StreamingSession;
use dbp_core::{ClairvoyanceMode, EventLog, Instance, OnlineEngine, OnlineRun};
use dbp_obs::replay::replay_events;
use proptest::prelude::*;

/// Builds an instance from (size, arrival-gap, duration) triples:
/// arrivals are the gap prefix sums, so they are always non-decreasing.
fn instance_from_parts(parts: &[(f64, i64, i64)]) -> Instance {
    let mut t = 0i64;
    let triples: Vec<(f64, i64, i64)> = parts
        .iter()
        .map(|&(size, gap, dur)| {
            t += gap;
            (size, t, t + dur)
        })
        .collect();
    Instance::from_triples(&triples)
}

fn assert_records_eq(algo: &str, what: &str, a: &[BinRecord], b: &[BinRecord]) {
    assert_eq!(a.len(), b.len(), "{algo}: {what}: bin count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (x.id, x.opened_at, x.closed_at, x.tag, &x.items),
            (y.id, y.opened_at, y.closed_at, y.tag, &y.items),
            "{algo}: {what}: bin lifetime record"
        );
    }
}

fn assert_runs_eq(algo: &str, what: &str, a: &OnlineRun, b: &OnlineRun) {
    assert_eq!(a.packing, b.packing, "{algo}: {what}: placements");
    assert_eq!(a.usage, b.usage, "{algo}: {what}: usage");
    assert_records_eq(algo, what, &a.bins, &b.bins);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch run, hand-driven streaming session, and obs-trace replay
    /// produce bit-identical runs across the whole online roster.
    #[test]
    fn roster_is_identical_across_batch_stream_and_replay(
        parts in prop::collection::vec((0.05f64..0.95, 0i64..3, 1i64..50), 1..40)
    ) {
        let inst = instance_from_parts(&parts);
        let params = AlgoParams::from_instance(&inst);
        let engine = OnlineEngine::clairvoyant();
        for algo in ONLINE_ALGOS {
            let batch = engine
                .run(&inst, online_packer(algo, params).as_mut())
                .unwrap();
            prop_assert!(batch.packing.validate(&inst).is_ok());
            prop_assert_eq!(batch.usage, batch.packing.total_usage(&inst));

            let mut packer = online_packer(algo, params);
            let mut session =
                StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
            for item in inst.items() {
                session.arrive(item).unwrap();
            }
            let streamed = session.finish().unwrap();
            assert_runs_eq(algo, "stream vs batch", &streamed, &batch);

            let mut log = EventLog::new();
            let observed = engine
                .run_observed(&inst, online_packer(algo, params).as_mut(), &mut log)
                .unwrap();
            assert_runs_eq(algo, "observed vs batch", &observed, &batch);
            let replay = replay_events(&log.events).unwrap();
            replay.verify().unwrap();
            assert_runs_eq(algo, "replay vs batch", &replay.run, &batch);
        }
    }
}

/// The indexed engine agrees with the seed-style linear engine and beats
/// it on a run that holds ~10k bins open simultaneously. Next Fit's
/// decision is O(1), so the entire gap is engine bookkeeping: the linear
/// engine pays O(fleet) per close (`Vec` scan + shift) and O(history)
/// per record touch, the indexed engine O(1) for both.
#[test]
fn indexed_engine_beats_linear_engine_on_wide_fleets() {
    let inst = wide_fleet_instance(20_000);

    let t0 = std::time::Instant::now();
    let mut packer = dbp_algos::online::AnyFit::next_fit();
    let indexed = OnlineEngine::clairvoyant().run(&inst, &mut packer).unwrap();
    let indexed_elapsed = t0.elapsed();

    let t1 = std::time::Instant::now();
    let linear = reference_next_fit(&inst);
    let linear_elapsed = t1.elapsed();

    assert_eq!(indexed.bins_opened(), 10_000, "peak fleet is ~10k bins");
    assert_eq!(indexed.usage, linear.usage, "identical usage");
    for (rec, refbin) in indexed.bins.iter().zip(&linear.bins) {
        assert_eq!(rec.opened_at, refbin.opened_at);
        assert_eq!(rec.closed_at, refbin.closed_at);
        assert_eq!(rec.items, refbin.items);
    }
    assert!(
        indexed_elapsed < linear_elapsed,
        "indexed engine ({indexed_elapsed:?}) must beat the linear engine \
         ({linear_elapsed:?}) on a 10k-bin fleet"
    );
}
