//! Roster-wide sharded-vs-unsharded differential: for every online
//! roster algorithm, a sharded run must equal running each
//! router-induced sub-stream through its own plain session — per-shard
//! runs bit-identical, merged totals exact, and the merged packing valid
//! against the full instance.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::stream::StreamingSession;
use dbp_core::{ClairvoyanceMode, Instance, OnlineRun};
use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};
use dbp_workloads::random::PoissonWorkload;
use dbp_workloads::Workload;

fn workload_instance() -> Instance {
    PoissonWorkload::new(1.5, 1200).generate_seeded(5)
}

fn reference_runs(
    inst: &Instance,
    algo: &str,
    params: AlgoParams,
    router: ShardRouter,
    k: usize,
) -> Vec<OnlineRun> {
    (0..k)
        .map(|shard| {
            let mut packer = online_packer(algo, params);
            let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
            for item in inst.items() {
                if router.route(item, k) == shard {
                    session.arrive(item).expect("reference arrive");
                }
            }
            session.finish().expect("reference finish")
        })
        .collect()
}

#[test]
fn every_roster_algo_shards_differentially() {
    let inst = workload_instance();
    let params = AlgoParams::from_instance(&inst);
    let router = ShardRouter::hash();
    for algo in ONLINE_ALGOS {
        for k in [2usize, 3] {
            let cfg = ShardConfig {
                threads: Some(2),
                batch: 64,
                collect_metrics: false,
                ..ShardConfig::new(k, router)
            };
            let packers = (0..k).map(|_| online_packer(algo, params)).collect();
            let mut fleet =
                ShardedSession::new(ClairvoyanceMode::Clairvoyant, packers, cfg).unwrap();
            for item in inst.items() {
                fleet.arrive(item).unwrap();
            }
            let report = fleet.finish().unwrap();
            let reference = reference_runs(&inst, algo, params, router, k);
            let ctx = format!("{algo} k={k}");
            for (slice, reference_run) in report.slices.iter().zip(&reference) {
                assert_eq!(
                    &slice.run, reference_run,
                    "{ctx}: shard {} diverges from plain session",
                    slice.shard
                );
            }
            assert_eq!(
                report.usage,
                reference.iter().map(|r| r.usage).sum::<u128>(),
                "{ctx}: merged usage"
            );
            assert_eq!(report.items, inst.len() as u64, "{ctx}: exactly-once items");
            let merged = report.merged_run();
            merged
                .packing
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{ctx}: merged packing invalid: {e}"));
            assert_eq!(merged.usage, report.usage, "{ctx}: merged run usage");
        }
    }
}
