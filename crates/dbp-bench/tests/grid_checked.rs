//! The grid runner's determinism contract, pinned by property test:
//!
//! * `run_grid_checked` is a drop-in superset of `run_grid` — when no
//!   cell panics the two agree cell-for-cell, for any grid shape and
//!   thread count.
//! * Output order and values are identical for `threads ∈ {1, 2, 7,
//!   None}` — scheduling must never leak into results.
//! * A panicking cell lands in its own `Err` slot; every neighbour
//!   still completes with the right value in the right position.

use dbp_bench::grid::{run_grid, run_grid_checked, GridCell};
use proptest::prelude::*;
use std::sync::Once;

fn cells(n: usize) -> Vec<GridCell<u64>> {
    (0..n as u64)
        .map(|x| GridCell {
            label: format!("cell{x}"),
            input: x,
        })
        .collect()
}

/// Silences the process-global panic hook once for this test binary:
/// the isolation property deliberately panics hundreds of cells, and
/// each would otherwise print a backtrace. Failures still surface
/// through the caught payloads that `run_grid_checked` returns.
fn quiet_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// The thread counts the contract quantifies over; `None` delegates to
/// available parallelism.
const THREAD_CHOICES: [Option<usize>; 4] = [Some(1), Some(2), Some(7), None];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checked_matches_unchecked_when_no_cell_panics(
        n in 0usize..40,
        threads in 1usize..5,
        salt: u64,
    ) {
        let eval = move |&x: &u64| x.wrapping_mul(salt).wrapping_add(x / 3);
        let plain = run_grid(cells(n), Some(threads), eval);
        let checked = run_grid_checked(cells(n), Some(threads), eval);
        prop_assert_eq!(plain.len(), checked.len());
        for (p, c) in plain.iter().zip(&checked) {
            prop_assert_eq!(&p.label, &c.label);
            prop_assert_eq!(Ok(&p.output), c.output.as_ref());
        }
    }

    #[test]
    fn outputs_are_identical_for_every_thread_count(
        n in 0usize..60,
        salt: u64,
    ) {
        let eval = move |&x: &u64| (x ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let baseline: Vec<(String, u64)> = run_grid(cells(n), Some(1), eval)
            .into_iter()
            .map(|r| (r.label, r.output))
            .collect();
        for threads in [Some(2), Some(7), None] {
            let got: Vec<(String, u64)> = run_grid(cells(n), threads, eval)
                .into_iter()
                .map(|r| (r.label, r.output))
                .collect();
            prop_assert_eq!(&baseline, &got, "threads = {:?}", threads);
        }
    }

    #[test]
    fn panicking_cell_is_isolated_in_its_own_slot(
        n in 1usize..40,
        poison_seed: u64,
        threads_pick in 0usize..4,
        salt: u64,
    ) {
        quiet_panics();
        let threads = THREAD_CHOICES[threads_pick];
        let poison = poison_seed % n as u64;
        let eval = move |&x: &u64| {
            if x == poison {
                panic!("poisoned cell {x}");
            }
            x.wrapping_add(salt)
        };
        let results = run_grid_checked(cells(n), threads, eval);
        prop_assert_eq!(results.len(), n);
        for (i, r) in results.iter().enumerate() {
            prop_assert_eq!(&r.label, &format!("cell{i}"));
            if i as u64 == poison {
                let p = r.output.as_ref().expect_err("poisoned slot must be Err");
                prop_assert_eq!(&p.label, &r.label);
                prop_assert!(
                    p.message.contains(&format!("poisoned cell {poison}")),
                    "payload lost: {}", p.message
                );
            } else {
                prop_assert_eq!(
                    r.output.as_ref().ok().copied(),
                    Some((i as u64).wrapping_add(salt)),
                    "neighbour {} was poisoned too", i
                );
            }
        }
    }
}
