//! `run_grid_checked` must be a drop-in superset of `run_grid`: when no
//! cell panics, the two agree cell-for-cell, for any grid shape and
//! thread count.

use dbp_bench::grid::{run_grid, run_grid_checked, GridCell};
use proptest::prelude::*;

fn cells(n: usize) -> Vec<GridCell<u64>> {
    (0..n as u64)
        .map(|x| GridCell {
            label: format!("cell{x}"),
            input: x,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checked_matches_unchecked_when_no_cell_panics(
        n in 0usize..40,
        threads in 1usize..5,
        salt: u64,
    ) {
        let eval = move |&x: &u64| x.wrapping_mul(salt).wrapping_add(x / 3);
        let plain = run_grid(cells(n), Some(threads), eval);
        let checked = run_grid_checked(cells(n), Some(threads), eval);
        prop_assert_eq!(plain.len(), checked.len());
        for (p, c) in plain.iter().zip(&checked) {
            prop_assert_eq!(&p.label, &c.label);
            prop_assert_eq!(Ok(&p.output), c.output.as_ref());
        }
    }
}
