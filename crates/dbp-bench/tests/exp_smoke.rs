//! Smoke tests for the fast experiment binaries: each must exit
//! successfully and print its OK marker (the binaries assert the paper's
//! claims internally, so a zero exit is a real reproduction check).
//!
//! Only the binaries that finish in seconds in debug mode run here; the
//! heavier sweeps (exp_online, exp_params, …) are exercised via
//! `cargo run --release` in CI/EXPERIMENTS.md.

use std::process::Command;

fn run_exp(name: &str) -> (bool, String) {
    let out = Command::new(env!(concat!("CARGO_BIN_EXE_", "exp_fig8")).replace("exp_fig8", name))
        .output()
        .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn exp_fig8_reproduces_figure() {
    let (ok, out) = run_exp("exp_fig8");
    assert!(ok);
    assert!(out.contains("crossover check"));
    assert!(out.contains("OK"));
    // The chart legend must show all three curves.
    assert!(out.contains("first fit (non-clairvoyant)"));
    assert!(out.contains("classify-by-departure-time"));
    assert!(out.contains("classify-by-duration"));
}

#[test]
fn exp_constructions_verifies_lemmas() {
    let (ok, out) = run_exp("exp_constructions");
    assert!(ok);
    assert!(out.contains("all construction checks passed"));
    assert!(out.contains("Lemma 2 check"));
}

#[test]
fn exp_lower_bound_enforces_phi() {
    let (ok, out) = run_exp("exp_lower_bound");
    assert!(ok);
    assert!(out.contains("Theorem 3 check"));
    assert!(out.contains("OK"));
}

#[test]
fn exp_stages_tiles_usage() {
    let (ok, out) = run_exp("exp_stages");
    assert!(ok);
    assert!(out.contains("stages tile usage exactly"));
}

#[test]
fn exp_anyfit_separations_hold() {
    let (ok, out) = run_exp("exp_anyfit");
    assert!(ok);
    assert!(out.contains("BF ratio strictly increasing"));
}

#[test]
fn exp_objectives_divergence_holds() {
    let (ok, out) = run_exp("exp_objectives");
    assert!(ok);
    assert!(out.contains("classical objective cannot see the difference"));
}
