//! E1 performance companion — offline packer runtimes (DDFF, Dual
//! Coloring with both large-item rules, arrival First Fit) on a uniform
//! workload. Dual Coloring's Phase 1 is the asymptotically heaviest piece
//! (the paper bounds it by `O(|R_S|⁴)`); this bench tracks its practical
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_bench::registry::{offline_packer, OFFLINE_ALGOS};
use dbp_workloads::random::UniformWorkload;
use dbp_workloads::Workload;

fn bench_offline_packers(c: &mut Criterion) {
    let inst = UniformWorkload::new(400).generate_seeded(4);
    let mut group = c.benchmark_group("offline_packers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(inst.len() as u64));
    for algo in OFFLINE_ALGOS {
        group.bench_with_input(BenchmarkId::from_parameter(algo), algo, |b, algo| {
            let packer = offline_packer(algo);
            b.iter(|| std::hint::black_box(packer.pack(&inst).num_bins()));
        });
    }
    group.finish();
}

fn bench_dual_coloring_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_coloring_scaling");
    group.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let inst = UniformWorkload::new(n).generate_seeded(5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            let packer = offline_packer("dual-coloring");
            b.iter(|| std::hint::black_box(packer.pack(inst).num_bins()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline_packers, bench_dual_coloring_scaling);
criterion_main!(benches);
