//! E7 — online packer throughput: items/second for every roster algorithm
//! on a Poisson workload (the performance table a scheduler integrator
//! needs; the paper has no performance claims, so this bench characterizes
//! our implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::OnlineEngine;
use dbp_workloads::random::PoissonWorkload;
use dbp_workloads::Workload;

fn bench_online_packers(c: &mut Criterion) {
    let inst = PoissonWorkload::new(1.0, 10_000).generate_seeded(1);
    let n = inst.len() as u64;
    let params = AlgoParams::from_instance(&inst);
    let engine = OnlineEngine::new(ClairvoyanceMode::Clairvoyant);

    let mut group = c.benchmark_group("online_packers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    for algo in ONLINE_ALGOS {
        group.bench_with_input(BenchmarkId::from_parameter(algo), algo, |b, algo| {
            b.iter(|| {
                let mut packer = online_packer(algo, params);
                let run = engine.run(&inst, packer.as_mut()).expect("run");
                std::hint::black_box(run.usage)
            });
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // First Fit across instance sizes: near-linear scaling expected while
    // the concurrent-bin count stays bounded.
    let mut group = c.benchmark_group("first_fit_scaling");
    group.sample_size(10);
    for n in [1_000i64, 5_000, 20_000] {
        let inst = PoissonWorkload::new(1.0, n).generate_seeded(2);
        group.throughput(Throughput::Elements(inst.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            let engine = OnlineEngine::new(ClairvoyanceMode::Clairvoyant);
            b.iter(|| {
                let mut packer = online_packer("first-fit", AlgoParams::from_instance(inst));
                std::hint::black_box(engine.run(inst, packer.as_mut()).expect("run").usage)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_packers, bench_scaling);
criterion_main!(benches);
