//! E9 performance companion — cluster simulation throughput and the ρ
//! advisor sweep, so the operator-facing paths stay cheap enough for
//! interactive use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_algos::online::ClassifyByDepartureTime;
use dbp_core::online::ClairvoyanceMode;
use dbp_sim::{recommend_rho, simulate, unit_billing, Billing, NoisyEstimator};
use dbp_workloads::scenarios::CloudGamingWorkload;
use dbp_workloads::Workload;

fn bench_simulate(c: &mut Criterion) {
    let inst = CloudGamingWorkload::new(3_000, 30_000).generate_seeded(1);
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(inst.len() as u64));
    for (name, billing) in [
        ("per_tick", unit_billing()),
        (
            "per_hour",
            Billing::PerHour {
                ticks_per_hour: 3600,
                price: 1.0,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| {
                let mut p = ClassifyByDepartureTime::new(1200);
                let rep =
                    simulate(inst, &mut p, ClairvoyanceMode::Clairvoyant, billing).expect("sim");
                std::hint::black_box(rep.cost)
            });
        });
    }
    group.finish();
}

fn bench_noisy_mode(c: &mut Criterion) {
    let inst = CloudGamingWorkload::new(3_000, 30_000).generate_seeded(2);
    c.bench_function("simulate_noisy_estimates", |b| {
        b.iter(|| {
            let est = NoisyEstimator::new(3, 0.2);
            let mut p = ClassifyByDepartureTime::new(1200);
            let rep = simulate(&inst, &mut p, est.mode(), unit_billing()).expect("sim");
            std::hint::black_box(rep.usage)
        });
    });
}

fn bench_recommend_rho(c: &mut Criterion) {
    let inst = CloudGamingWorkload::new(1_500, 20_000).generate_seeded(3);
    c.bench_function("recommend_rho_default_ladder", |b| {
        b.iter(|| {
            let rec = recommend_rho(&inst, &[], unit_billing()).expect("advisor");
            std::hint::black_box(rec.best_rho)
        });
    });
}

criterion_group!(
    benches,
    bench_simulate,
    bench_noisy_mode,
    bench_recommend_rho
);
criterion_main!(benches);
