//! Workload-generation and trace-I/O throughput: generators run inside
//! every experiment cell and the CLI, so they must stay fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_workloads::fit::TraceModel;
use dbp_workloads::random::{PoissonWorkload, UniformWorkload};
use dbp_workloads::scenarios::CloudGamingWorkload;
use dbp_workloads::{trace, Workload};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    let n = 10_000usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::from_parameter("uniform"), |b| {
        let w = UniformWorkload::new(n);
        b.iter(|| std::hint::black_box(w.generate_seeded(1).len()));
    });
    group.bench_function(BenchmarkId::from_parameter("poisson"), |b| {
        let w = PoissonWorkload::new(1.0, n as i64);
        b.iter(|| std::hint::black_box(w.generate_seeded(1).len()));
    });
    group.bench_function(BenchmarkId::from_parameter("gaming"), |b| {
        let w = CloudGamingWorkload::new(n, 100_000);
        b.iter(|| std::hint::black_box(w.generate_seeded(1).len()));
    });
    group.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let inst = UniformWorkload::new(20_000).generate_seeded(2);
    let text = trace::to_string(&inst);
    let mut group = c.benchmark_group("trace_io");
    group.sample_size(10);
    group.throughput(Throughput::Elements(inst.len() as u64));
    group.bench_function("serialize", |b| {
        b.iter(|| std::hint::black_box(trace::to_string(&inst).len()));
    });
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(trace::from_str(&text).expect("parse").len()));
    });
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    let inst = CloudGamingWorkload::new(10_000, 100_000).generate_seeded(3);
    c.bench_function("trace_model_fit_and_synthesize", |b| {
        b.iter(|| {
            let model = TraceModel::fit(&inst).expect("fit");
            let synth = model.scaled(50_000, 1.0).generate_seeded(4);
            std::hint::black_box(synth.len())
        });
    });
}

criterion_group!(benches, bench_generators, bench_trace_io, bench_fit);
criterion_main!(benches);
