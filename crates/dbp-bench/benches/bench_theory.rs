//! F8 performance companion — the Figure 8 generation path (closed-form
//! bounds plus the `argmin n` search) and the Theorem 3 adversary game,
//! benchmarked so regressions in the theory utilities are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use dbp_algos::adversary::run_adversary;
use dbp_algos::online::AnyFit;
use dbp_theory::{cbd_best_known, figure8};

fn bench_figure8(c: &mut Criterion) {
    let mus: Vec<f64> = (1..=400).map(|i| i as f64 * 0.25 + 1.0).collect();
    c.bench_function("figure8_400_points", |b| {
        b.iter(|| std::hint::black_box(figure8(&mus).len()));
    });
    c.bench_function("cbd_argmin_n_mu_1e6", |b| {
        b.iter(|| std::hint::black_box(cbd_best_known(1e6)));
    });
}

fn bench_adversary(c: &mut Criterion) {
    c.bench_function("theorem3_adversary_vs_first_fit", |b| {
        b.iter(|| {
            let rep = run_adversary(&mut AnyFit::first_fit(), 1000, 1618, 1);
            std::hint::black_box(rep.ratio)
        });
    });
}

criterion_group!(benches, bench_figure8, bench_adversary);
criterion_main!(benches);
