//! Performance of the lower-bound machinery: the §3.2 sweep-line bounds
//! (Propositions 1–3) on large instances, and the exact `OPT_total`
//! branch-and-bound on small ones. The LB path runs inside every
//! experiment cell, so it must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_algos::exact::{min_bins, opt_total};
use dbp_core::accounting::lower_bounds;
use dbp_core::Size;
use dbp_workloads::random::{SizeDist, UniformWorkload};
use dbp_workloads::Workload;

fn bench_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bounds");
    group.sample_size(10);
    for n in [10_000usize, 50_000, 200_000] {
        let inst = UniformWorkload::new(n).generate_seeded(6);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(lower_bounds(inst).best()));
        });
    }
    group.finish();
}

fn bench_exact_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_opt_total");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let inst = UniformWorkload::new(n)
            .with_sizes(SizeDist::Uniform { lo: 0.2, hi: 0.9 })
            .generate_seeded(7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(opt_total(inst)));
        });
    }
    group.finish();
}

fn bench_min_bins(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_min_bins");
    group.sample_size(10);
    // A hard-ish classical bin packing instance: near-half sizes.
    for n in [12usize, 18, 24] {
        let sizes: Vec<Size> = (0..n)
            .map(|i| Size::from_f64(0.34 + 0.02 * ((i * 7 % 13) as f64 / 13.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sizes, |b, sizes| {
            b.iter(|| std::hint::black_box(min_bins(sizes)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bounds, bench_exact_opt, bench_min_bins);
criterion_main!(benches);
