//! E10 performance companion — flexible-job scheduling costs: the rigid
//! baseline, the constructive greedy, and the local-search pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_core::Size;
use dbp_flex::{flex_schedule, flex_schedule_optimized, rigid_schedule, FlexJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gen(n: usize, seed: u64) -> Vec<FlexJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let rel = rng.gen_range(0..2_000i64);
            let len = rng.gen_range(20..200i64);
            let slack = rng.gen_range(0..2 * len);
            FlexJob::new(
                i as u32,
                Size::from_f64(rng.gen_range(0.1..0.6)),
                rel,
                rel + len + slack,
                len,
            )
        })
        .collect()
}

fn bench_flex(c: &mut Criterion) {
    let mut group = c.benchmark_group("flex_schedulers");
    group.sample_size(10);
    for n in [50usize, 150] {
        let jobs = gen(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("rigid", n), &jobs, |b, jobs| {
            b.iter(|| std::hint::black_box(rigid_schedule(jobs).placements.len()));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &jobs, |b, jobs| {
            b.iter(|| std::hint::black_box(flex_schedule(jobs).placements.len()));
        });
        group.bench_with_input(BenchmarkId::new("greedy+search", n), &jobs, |b, jobs| {
            b.iter(|| std::hint::black_box(flex_schedule_optimized(jobs).placements.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flex);
criterion_main!(benches);
