//! E7 ablation — level-profile backends: BTree map vs coordinate-
//! compressed lazy segment tree, measured through Duration Descending
//! First Fit (whose inner loop is dominated by range-max feasibility
//! queries and range-add updates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbp_algos::offline::{DurationDescendingFirstFit, ProfileBackend};
use dbp_core::OfflinePacker;
use dbp_workloads::random::{DurationDist, UniformWorkload};
use dbp_workloads::Workload;

fn bench_profile_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddff_profile_backend");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        let inst = UniformWorkload::new(n)
            .with_durations(DurationDist::Uniform { lo: 10, hi: 1000 })
            .generate_seeded(3);
        group.throughput(Throughput::Elements(n as u64));
        for (name, backend) in [
            ("btree", ProfileBackend::BTree),
            ("segtree", ProfileBackend::SegTree),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &inst, |b, inst| {
                let packer = DurationDescendingFirstFit::with_backend(backend);
                b.iter(|| std::hint::black_box(packer.pack(inst).num_bins()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_profile_backends);
criterion_main!(benches);
