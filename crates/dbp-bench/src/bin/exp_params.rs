//! Experiment E3 — parameter sensitivity of the classification strategies.
//!
//! * **ρ sweep** for classify-by-departure-time: Theorem 4's bound
//!   `ρ/Δ + μΔ/ρ + 3` is U-shaped with minimum at `ρ* = √μ·Δ`; the measured
//!   usage should show the same U-shape (too-small ρ fragments bins,
//!   too-large ρ readmits the FF tail problem).
//! * **n sweep** for classify-by-duration at fixed `μ`: the bound
//!   `μ^{1/n} + n + 3` has an interior optimum; measured usage follows.

use dbp_algos::online::{ClassifyByDepartureTime, ClassifyByDuration};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_online, run_grid, GridCell};
use dbp_core::online::ClairvoyanceMode;
use dbp_theory::{cbd_bound, cbdt_bound};
use dbp_workloads::adversarial::ff_tail_trap;
use dbp_workloads::random::MuSweepWorkload;
use dbp_workloads::{trace, Workload};

const SEEDS: u64 = 8;

fn main() {
    rho_sweep();
    n_sweep();
    tail_trap_rho();
}

fn rho_sweep() {
    let (delta, mu) = (20i64, 64.0f64);
    println!("E3a — CBDT rho sweep at mu={mu}, delta={delta} (n=400, {SEEDS} seeds)\n");
    let rho_star = (mu.sqrt() * delta as f64).round() as i64; // 160
    let rhos: Vec<i64> = vec![
        delta / 2,
        delta,
        2 * delta,
        4 * delta,
        rho_star,
        16 * delta,
        64 * delta,
        256 * delta,
    ];

    let mut cells = Vec::new();
    for &rho in &rhos {
        for seed in 0..SEEDS {
            cells.push(GridCell {
                label: format!("rho{rho}/seed{seed}"),
                input: (rho, seed),
            });
        }
    }
    let results = run_grid(cells, None, |(rho, seed)| {
        let inst = MuSweepWorkload::new(400, delta, mu).generate_seeded(*seed);
        let mut p = ClassifyByDepartureTime::new(*rho);
        measure_online(&inst, &mut p, ClairvoyanceMode::Clairvoyant, false)
            .expect("measure")
            .ratio_vs_lb3
    });

    let mut table = Table::new(&["rho", "mean_ratio_vs_lb3", "theorem4_bound"]);
    let mut means = Vec::new();
    for &rho in &rhos {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("rho{rho}/")))
            .map(|r| r.output)
            .collect();
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        means.push(mean);
        table.row(&[
            rho.to_string(),
            f3(mean),
            f3(cbdt_bound(rho as f64, delta as f64, mu)),
        ]);
    }
    table.print();

    // Bound check at every rho.
    for (&rho, &mean) in rhos.iter().zip(&means) {
        assert!(
            mean <= cbdt_bound(rho as f64, delta as f64, mu) + 1e-9,
            "Theorem 4 violated at rho={rho}"
        );
    }
    println!("\nchecks: measured <= Theorem 4 bound at every rho ... OK\n");
}

fn n_sweep() {
    let (delta, mu) = (20i64, 64.0f64);
    println!("E3b — CBD n sweep at mu={mu} (n=400, {SEEDS} seeds)\n");
    let ns: Vec<u32> = (1..=8).collect();

    let mut cells = Vec::new();
    for &n in &ns {
        for seed in 0..SEEDS {
            cells.push(GridCell {
                label: format!("n{n}/seed{seed}"),
                input: (n, seed),
            });
        }
    }
    let results = run_grid(cells, None, |(n, seed)| {
        let inst = MuSweepWorkload::new(400, delta, mu).generate_seeded(*seed);
        let alpha = mu.powf(1.0 / *n as f64) * (1.0 + 1e-9);
        let alpha = alpha.max(1.0 + 1e-6);
        let mut p = ClassifyByDuration::new(delta, alpha);
        measure_online(&inst, &mut p, ClairvoyanceMode::Clairvoyant, false)
            .expect("measure")
            .ratio_vs_lb3
    });

    let mut table = Table::new(&["n", "alpha", "mean_ratio_vs_lb3", "thm5_bound(mu^1/n+n+3)"]);
    for &n in &ns {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("n{n}/")))
            .map(|r| r.output)
            .collect();
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let alpha = mu.powf(1.0 / n as f64);
        let bound = mu.powf(1.0 / n as f64) + n as f64 + 3.0;
        table.row(&[n.to_string(), f3(alpha), f3(mean), f3(bound)]);
        assert!(mean <= bound + 1e-9, "Theorem 5 violated at n={n}");
        // The general-form bound must also hold.
        assert!(mean <= cbd_bound(alpha * (1.0 + 1e-9), mu) + 1e-9);
    }
    table.print();
    println!("\nchecks: measured <= Theorem 5 bound at every n ... OK\n");
}

/// On the FF tail trap, too-large rho degenerates CBDT toward plain FF —
/// the cleanest visualization of why departure classification matters.
fn tail_trap_rho() {
    println!("E3c — CBDT on the FF tail trap (k=8, horizon=1000): rho sensitivity\n");
    let inst = ff_tail_trap(8, 1000, 10);
    // Persist the trap trace so readers can replay it.
    let _ = trace::save(&inst, "/tmp/dbp_tail_trap.csv");
    let mut table = Table::new(&["rho", "usage", "vs_best_possible"]);
    for rho in [5i64, 10, 100, 500, 1000, 2000] {
        let mut p = ClassifyByDepartureTime::new(rho);
        let m =
            measure_online(&inst, &mut p, ClairvoyanceMode::Clairvoyant, false).expect("measure");
        table.row(&[rho.to_string(), m.usage.to_string(), f3(m.ratio_vs_lb3)]);
    }
    table.print();
    println!("\n(small rho isolates the tinies into one bin; huge rho re-merges\n everything into FF behaviour and pays ~k x horizon)");
}
