//! Experiment E11 — separations within the Any Fit family, reproducing
//! the qualitative landscape the paper quotes from prior work (§1):
//!
//! * Best Fit is *unboundedly* worse than First Fit (Li et al.) — shown on
//!   the [`best_fit_cascade`] where BF's ratio grows linearly in the
//!   gadget count `k` while FF stays near 1.
//! * Every Any Fit algorithm suffers `Ω(k)` on the staircase (the `μ+1`
//!   lower-bound shape) — but classify-by-departure-time dismantles it.
//! * Next Fit's bound `2μ+1` (Kamali & López-Ortiz) vs First Fit's `μ+4`
//!   (Tang et al.) on random and adversarial inputs.

use dbp_bench::registry::{online_packer, AlgoParams};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_online, ONLINE_ALGOS};
use dbp_core::online::ClairvoyanceMode;
use dbp_workloads::adversarial::{any_fit_staircase, best_fit_cascade, ff_tail_trap};

fn main() {
    cascade_scaling();
    family_on_adversarial();
}

/// BF's ratio grows with the cascade depth k; FF stays flat.
fn cascade_scaling() {
    println!("E11a — Best Fit cascade: ratio vs gadget count k (long=4000, short=10)\n");
    let mut table = Table::new(&["k", "best_fit_ratio", "first_fit_ratio"]);
    let mut prev_bf = 0.0;
    for k in [2usize, 4, 8, 12, 16] {
        let inst = best_fit_cascade(k, 10, 4000);
        let params = AlgoParams::from_instance(&inst);
        let mut bf = online_packer("best-fit", params);
        let mut ff = online_packer("first-fit", params);
        let m_bf = measure_online(&inst, bf.as_mut(), ClairvoyanceMode::NonClairvoyant, false)
            .expect("measure");
        let m_ff = measure_online(&inst, ff.as_mut(), ClairvoyanceMode::NonClairvoyant, false)
            .expect("measure");
        table.row(&[k.to_string(), f3(m_bf.ratio_vs_lb3), f3(m_ff.ratio_vs_lb3)]);
        assert!(m_bf.ratio_vs_lb3 > prev_bf, "BF ratio must grow with k");
        assert!(m_ff.ratio_vs_lb3 < 1.5, "FF must stay near-optimal");
        prev_bf = m_bf.ratio_vs_lb3;
    }
    table.print();
    println!("\nchecks: BF ratio strictly increasing in k; FF < 1.5 throughout ... OK\n");
}

/// The whole roster on the three adversarial families.
fn family_on_adversarial() {
    println!("E11b — full roster on the adversarial families (ratio vs LB3)\n");
    let families: Vec<(&str, dbp_core::Instance)> = vec![
        ("tail-trap(k=8)", ff_tail_trap(8, 2000, 10)),
        ("staircase(k=8)", any_fit_staircase(8, 10, 2000)),
        ("bf-cascade(k=8)", best_fit_cascade(8, 10, 2000)),
    ];
    let mut header = vec!["algo".to_string()];
    header.extend(families.iter().map(|(n, _)| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for algo in ONLINE_ALGOS {
        let mut row = vec![algo.to_string()];
        for (_, inst) in &families {
            let params = AlgoParams::from_instance(inst);
            let mut p = online_packer(algo, params);
            let mode = if matches!(*algo, "cbdt" | "cbd" | "combined") {
                ClairvoyanceMode::Clairvoyant
            } else {
                ClairvoyanceMode::NonClairvoyant
            };
            let m = measure_online(inst, p.as_mut(), mode, false).expect("measure");
            row.push(f3(m.ratio_vs_lb3));
        }
        table.row(&row);
    }
    table.print();
    println!(
        "\n(the clairvoyant classification strategies neutralize every family;\n the Any Fit baselines each have a family that defeats them)"
    );
}
