//! Experiment E6 — the combined classification strategy (§5.4/§6 future
//! work): classify by duration first, then by departure time within each
//! duration class.
//!
//! The paper conjectures combining the strategies can beat both. This
//! experiment compares CBDT, CBD and the combined strategy head-to-head
//! across `μ`, on both random `μ`-sweep workloads and the structured
//! short/long adversarial family where single-dimension classification
//! leaves usage on the table.

use dbp_bench::registry::{online_packer, AlgoParams};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_online, run_grid, GridCell};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::Instance;
use dbp_workloads::random::MuSweepWorkload;
use dbp_workloads::Workload;

const SEEDS: u64 = 8;
const ALGOS: &[&str] = &["cbdt", "cbd", "combined"];

fn main() {
    random_sweep();
    structured();
}

fn random_sweep() {
    println!("E6a — combined vs single strategies across mu (n=400, {SEEDS} seeds)\n");
    let mus = [2.0, 8.0, 32.0, 128.0];

    let mut cells = Vec::new();
    for algo in ALGOS {
        for (mi, _) in mus.iter().enumerate() {
            for seed in 0..SEEDS {
                cells.push(GridCell {
                    label: format!("{algo}/m{mi}/seed{seed}"),
                    input: (algo.to_string(), mi, seed),
                });
            }
        }
    }
    let results = run_grid(cells, None, |(algo, mi, seed)| {
        let inst = MuSweepWorkload::new(400, 20, mus[*mi]).generate_seeded(*seed);
        let params = AlgoParams::from_instance(&inst);
        let mut p = online_packer(algo, params);
        measure_online(&inst, p.as_mut(), ClairvoyanceMode::Clairvoyant, false)
            .expect("measure")
            .ratio_vs_lb3
    });

    let mut table = Table::new(&["mu", "cbdt", "cbd", "combined"]);
    for (mi, mu) in mus.iter().enumerate() {
        let mean = |algo: &str| -> f64 {
            let rs: Vec<f64> = results
                .iter()
                .filter(|r| r.label.starts_with(&format!("{algo}/m{mi}/")))
                .map(|r| r.output)
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        table.row(&[
            f3(*mu),
            f3(mean("cbdt")),
            f3(mean("cbd")),
            f3(mean("combined")),
        ]);
    }
    table.print();
    println!();
}

/// Structured case: waves of short jobs interleaved with staggered long
/// jobs. Duration classes alone pack long jobs of wildly different
/// departures together; departure classes alone mix short and long jobs
/// arriving together. The combined strategy separates both dimensions.
fn structured() {
    println!("E6b — structured short/long waves (usage in ticks, lower is better)\n");
    let mut triples: Vec<(f64, i64, i64)> = Vec::new();
    // 10 waves, 200 apart: each wave has 4 short jobs (dur 40) and one
    // long job (dur 2000) whose departures stagger across waves.
    for w in 0..10i64 {
        let t = w * 200;
        for _ in 0..4 {
            triples.push((0.25, t, t + 40));
        }
        triples.push((0.25, t, t + 2000));
    }
    let inst = Instance::from_triples(&triples);
    let params = AlgoParams::from_instance(&inst);

    let mut table = Table::new(&["algo", "usage", "bins", "ratio_vs_lb3"]);
    let mut usages = std::collections::HashMap::new();
    for algo in ["first-fit", "cbdt", "cbd", "combined"] {
        let mut p = online_packer(algo, params);
        let m = measure_online(&inst, p.as_mut(), ClairvoyanceMode::Clairvoyant, false)
            .expect("measure");
        usages.insert(algo.to_string(), m.usage);
        table.row(&[
            algo.to_string(),
            m.usage.to_string(),
            m.bins.to_string(),
            f3(m.ratio_vs_lb3),
        ]);
    }
    table.print();
    // The combined strategy must match or beat plain FF on this structured
    // family, and be competitive with the best single strategy.
    let best_single = usages["cbdt"].min(usages["cbd"]);
    println!(
        "\ncombined={} vs best single={} vs first-fit={}",
        usages["combined"], best_single, usages["first-fit"]
    );
}
