//! Experiment F1–F4 — executable versions of the paper's definitional
//! figures:
//!
//! * **Figure 1** (span of an item list): the span/gap computation on the
//!   figure's layout.
//! * **Figure 2** (X-periods): the staircase reduction and X-period
//!   decomposition used by Theorem 1's proof, verified on every bin of a
//!   real Duration Descending First Fit packing.
//! * **Figures 3–4** (demand chart and stripes): Dual Coloring Phase 1
//!   placement on a staircase instance with Lemmas 3–5 asserted, and the
//!   Phase 2 stripe packing with its per-time open-bin cap.

use dbp_algos::offline::xperiods::verify_decomposition;
use dbp_algos::offline::{
    max_overlap_depth, phase1_with_coloring, phase2, placements_within_chart, verify_lemma2,
    DualColoring, DurationDescendingFirstFit,
};
use dbp_bench::report::Table;
use dbp_core::accounting::lower_bounds;
use dbp_core::events::load_segments;
use dbp_core::{Instance, Item, OfflinePacker, Size};
use dbp_workloads::random::UniformWorkload;
use dbp_workloads::Workload;

fn main() {
    figure1();
    figure2();
    figures3_4();
    println!("\nall construction checks passed ... OK");
}

fn figure1() {
    println!("Figure 1 — span of an item list");
    let inst = Instance::from_triples(&[(0.3, 0, 4), (0.3, 2, 6), (0.3, 5, 8), (0.3, 10, 13)]);
    let lb = lower_bounds(&inst);
    println!(
        "  items cover [0,8) u [10,13): span = {} (gap [8,10) excluded)\n",
        inst.span()
    );
    assert_eq!(inst.span(), 11);
    assert_eq!(lb.span, 11);
}

fn figure2() {
    println!("Figure 2 — X-period decomposition over a real DDFF packing");
    let inst = UniformWorkload::new(300).generate_seeded(5);
    let packing = DurationDescendingFirstFit::new().pack(&inst);
    packing.validate(&inst).expect("valid");
    let mut checked = 0;
    for (bin, ids) in packing.iter_bins() {
        let items: Vec<Item> = ids
            .iter()
            .map(|id| *inst.item(*id).expect("item exists"))
            .collect();
        // verify_decomposition asserts: staircase ordering, disjoint
        // X-periods, and Σ l(X(r_i)) = span(R_k).
        let xp = verify_decomposition(&items);
        checked += 1;
        if bin.0 < 3 {
            println!(
                "  bin {}: {} items -> {} staircase X-periods, span {}",
                bin.0,
                items.len(),
                xp.len(),
                packing.bin_usage(&inst, bin)
            );
        }
    }
    println!("  verified the identity on all {checked} bins\n");
}

fn figures3_4() {
    println!("Figures 3-4 — Dual Coloring demand chart and stripe packing");
    // A staircase of small items like the figures.
    let inst = Instance::from_triples(&[
        (0.3, 0, 8),
        (0.5, 2, 12),
        (0.25, 4, 16),
        (0.5, 10, 20),
        (0.2, 14, 22),
        (0.4, 6, 18),
    ]);
    let (small, _) = inst.split_small_large();
    let (placements, coloring) = phase1_with_coloring(&small);
    assert_eq!(placements.len(), small.len(), "Lemma 4");
    assert!(max_overlap_depth(&placements) <= 2, "Lemma 5");
    assert!(placements_within_chart(&small, &placements), "Lemma 3");
    assert!(
        verify_lemma2(&small, &coloring),
        "Lemma 2: chart fully colored"
    );
    println!(
        "  Lemma 2 check: {} red rects + {} blue columns tile the chart exactly",
        coloring.red.len(),
        coloring.blue.len()
    );

    let mut t = Table::new(&["item", "interval", "size", "top_altitude", "bottom"]);
    for p in &placements {
        t.row(&[
            format!("{}", p.item.id()),
            format!("{}", p.item.interval()),
            format!("{:.3}", p.item.size().as_f64()),
            format!("{:.3}", p.altitude as f64 / Size::SCALE as f64),
            format!("{:.3}", p.bottom() as f64 / Size::SCALE as f64),
        ]);
    }
    t.print();

    // Render the demand chart with placements (the Figure 3 picture).
    println!("\n  demand chart (letters = placed items, dots = blue area):\n");
    print!(
        "{}",
        dbp_algos::offline::chart_render::render_chart(&small, &placements, 66, 12)
    );

    let bins = phase2(&placements);
    println!("\n  Phase 2 bins: {}", bins.len());

    // Full algorithm: per-time open-bin cap 4⌈S(t)⌉ (Theorem 2 proof).
    let packing = DualColoring::new().pack(&inst);
    packing.validate(&inst).expect("valid");
    for seg in load_segments(inst.items()) {
        let open = packing.bins_open_at(&inst, seg.interval.start());
        let cap = 4 * seg.total_size.ceil_units() as usize;
        assert!(open <= cap, "open-bin cap violated");
    }
    let lb = lower_bounds(&inst);
    let usage = packing.total_usage(&inst);
    println!(
        "  usage {} <= 4 x LB3 {} (Theorem 2) : {}",
        usage,
        lb.lb3,
        usage <= 4 * lb.lb3
    );
    assert!(usage <= 4 * lb.lb3);
}
