//! Experiment F8 — regenerates **Figure 8** of the paper: the best
//! achievable competitive ratios of classify-by-departure-time First Fit
//! (`2√μ + 3`), classify-by-duration First Fit (`min_n μ^{1/n} + n + 3`),
//! and plain non-clairvoyant First Fit (`μ + 4`) as functions of the
//! max/min item duration ratio `μ`, at the optimal parameter settings with
//! `Δ`, `μ` known (Theorems 4 and 5).
//!
//! The paper's qualitative claims, checked programmatically at the end:
//! the classified algorithms are asymptotically far below `μ + 4`; CBDT
//! wins for `μ < 4`; CBD wins for `μ > 4`; they tie at `μ = 4`.

use dbp_bench::plot::{Chart, Series};
use dbp_bench::report::{f3, Table};
use dbp_theory::figure8;

fn main() {
    // The paper plots μ from 1 to 100; sample densely near the crossover.
    let mut mus: Vec<f64> = vec![
        1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 25.0, 32.0,
        40.0, 50.0, 64.0, 80.0, 100.0,
    ];
    mus.dedup();
    let rows = figure8(&mus);

    let mut table = Table::new(&[
        "mu",
        "first_fit(mu+4)",
        "cbdt(2sqrt(mu)+3)",
        "cbd(min_n)",
        "cbd_n",
    ]);
    for r in &rows {
        table.row(&[
            f3(r.mu),
            f3(r.first_fit),
            f3(r.cbdt),
            f3(r.cbd),
            r.cbd_n.to_string(),
        ]);
    }
    println!("Figure 8 — best achievable competitive ratios vs mu (durations known)\n");
    table.print();

    // Render the figure itself (log μ axis, like the paper's plot).
    let chart = Chart {
        width: 68,
        height: 18,
        log_x: true,
        x_label: "mu".into(),
        y_label: "competitive ratio".into(),
    };
    let series = vec![
        Series {
            name: "first fit (non-clairvoyant), mu+4".into(),
            points: rows.iter().map(|r| (r.mu, r.first_fit)).collect(),
        },
        Series {
            name: "classify-by-departure-time, 2*sqrt(mu)+3".into(),
            points: rows.iter().map(|r| (r.mu, r.cbdt)).collect(),
        },
        Series {
            name: "classify-by-duration, min_n mu^(1/n)+n+3".into(),
            points: rows.iter().map(|r| (r.mu, r.cbd)).collect(),
        },
    ];
    println!();
    print!("{}", chart.render(&series));

    // Programmatic checks of the paper's qualitative claims.
    let mut ok = true;
    for r in &rows {
        // At μ=1 both formulas give exactly 5 — a tie, so the win checks
        // are non-strict at the boundary.
        if r.mu < 4.0 && r.cbdt > r.cbd + 1e-9 {
            println!("VIOLATION: CBDT should win at mu={}", r.mu);
            ok = false;
        }
        if r.mu > 4.0 && r.cbd > r.cbdt + 1e-9 {
            println!("VIOLATION: CBD should win at mu={}", r.mu);
            ok = false;
        }
    }
    let at4 = rows.iter().find(|r| r.mu == 4.0).expect("mu=4 sampled");
    if (at4.cbdt - at4.cbd).abs() > 1e-9 {
        println!("VIOLATION: no tie at mu=4");
        ok = false;
    }
    println!(
        "\ncrossover check: CBDT wins for mu<4, CBD wins for mu>4, tie at mu=4 ... {}",
        if ok { "OK" } else { "FAILED" }
    );
    println!(
        "golden-ratio lower bound for any online algorithm (Theorem 3): {:.6}",
        dbp_theory::online_lower_bound()
    );
    assert!(ok, "Figure 8 qualitative claims must hold");

    // The related-work landscape as a table (the §1/§2 bounds, evaluated).
    println!("\nknown-results landscape at mu = 16:\n");
    let mut lt = Table::new(&["result", "source", "kind", "value"]);
    for r in dbp_theory::known_bounds(16.0) {
        lt.row(&[
            r.name.to_string(),
            r.source.to_string(),
            if r.is_upper {
                "upper".into()
            } else {
                "lower".into()
            },
            f3(r.value),
        ]);
    }
    lt.print();
}
