//! Experiment F6/F7 — the three-stage usage decomposition of §5.2
//! (Figures 6 and 7) measured on real classify-by-departure-time runs.
//!
//! For a Poisson workload, the total usage of CBDT is decomposed per
//! category into stage A (`[t₁, t₂)`, at most one open bin), stage B
//! (`[t₂, t₃)`, ≥ 2 bins with average level > 1/2 — Lemma 6), and stage C
//! (`[t₃, t+ρ)`). The decomposition tiles the total exactly; the per-stage
//! analytic caps (3), (4), (8) are reported next to the measured values.

use dbp_algos::instrument::stage_breakdown;
use dbp_algos::online::ClassifyByDepartureTime;
use dbp_bench::report::{f3, Table};
use dbp_core::accounting::lower_bounds;
use dbp_core::OnlineEngine;
use dbp_workloads::random::{DurationDist, PoissonWorkload};
use dbp_workloads::Workload;

fn main() {
    let workload =
        PoissonWorkload::new(0.4, 5_000).with_durations(DurationDist::Uniform { lo: 20, hi: 320 });
    println!("Stage decomposition of classify-by-departure-time First Fit (Figures 6-7)\n");
    println!("workload: {}\n", workload.name());

    let mut table = Table::new(&[
        "rho",
        "usage",
        "stage_A",
        "stage_B",
        "stage_C",
        "A_cap",
        "categories",
        "tiles_exactly",
    ]);
    for rho in [40i64, 80, 160, 320, 640] {
        let inst = workload.generate_seeded(11);
        let delta = inst.min_duration().unwrap();
        let mu_delta = inst.max_duration().unwrap();
        let mut packer = ClassifyByDepartureTime::new(rho);
        let mut obs = dbp_core::observe::Tee(
            dbp_core::observe::EventLog::new(),
            dbp_obs::MetricsAggregator::new(),
        );
        let run = OnlineEngine::clairvoyant()
            .run_observed(&inst, &mut packer, &mut obs)
            .expect("run");
        run.packing.validate(&inst).expect("valid");
        let (cats, agg) = stage_breakdown(&inst, &run, rho);

        // Cross-check the decomposition against the observed event
        // stream: the run replayed from events must yield the identical
        // stage breakdown, and the observed fleet timeline must integrate
        // to the same usage the stages tile.
        let replay = dbp_obs::replay_events(&obs.0.events).expect("replay");
        replay.verify().expect("replay verifies");
        let (_, agg_replayed) = stage_breakdown(&inst, &replay.run, rho);
        assert_eq!(
            (agg.stage_a, agg.stage_b, agg.stage_c),
            (
                agg_replayed.stage_a,
                agg_replayed.stage_b,
                agg_replayed.stage_c
            ),
            "stage breakdown must be identical on the event-derived run (rho={rho})"
        );
        let metrics = obs.1.report();
        assert_eq!(
            metrics.usage(),
            run.usage,
            "observed fleet timeline must integrate to usage (rho={rho})"
        );

        // Inequality (3): usage_A ≤ (μ−1)Δ · (#categories − 1)
        //               ≤ (μΔ − Δ) · span/ρ.
        let lb = lower_bounds(&inst);
        let a_cap = (mu_delta - delta) as f64 * (lb.span as f64 / rho as f64);
        let tiles = agg.total() == run.usage;
        table.row(&[
            rho.to_string(),
            run.usage.to_string(),
            agg.stage_a.to_string(),
            agg.stage_b.to_string(),
            agg.stage_c.to_string(),
            f3(a_cap),
            cats.len().to_string(),
            tiles.to_string(),
        ]);
        assert!(tiles, "stages must tile total usage exactly");
        assert!(
            (agg.stage_a as f64) <= a_cap + 1e-9,
            "inequality (3) violated at rho={rho}"
        );
    }
    table.print();
    println!(
        "\nchecks: stages tile usage exactly; usage_A within the (3) cap; \
         event-derived runs reproduce the decomposition ... OK"
    );
}
