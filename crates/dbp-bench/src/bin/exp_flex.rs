//! Experiment E10 — flexible jobs with release times and deadlines (§6
//! future work; Khandekar et al.'s setting).
//!
//! Sweeps the scheduling slack (deadline − release − length, as a multiple
//! of job length) and compares: the rigid baseline (start at release, pack
//! with DDFF), the constructive flexible greedy, and greedy + local
//! search. Expected shape: usage falls monotonically-ish as slack grows —
//! flexibility converts disjoint busy periods into overlapped ones — with
//! local search extracting most of the benefit.

use dbp_bench::report::{f3, Table};
use dbp_bench::{run_grid, GridCell};
use dbp_core::Size;
use dbp_flex::{flex_lower_bound, flex_schedule, flex_schedule_optimized, rigid_schedule, FlexJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 6;

fn gen_jobs(n: usize, slack_factor: f64, seed: u64) -> Vec<FlexJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let release = rng.gen_range(0..2_000i64);
            let length = rng.gen_range(20..200i64);
            let slack = (length as f64 * slack_factor).round() as i64;
            let size = Size::from_f64(rng.gen_range(0.1..0.6));
            FlexJob::new(i as u32, size, release, release + length + slack, length)
        })
        .collect()
}

fn main() {
    println!("E10 — flexible jobs: usage vs scheduling slack (n=120, {SEEDS} seeds)\n");
    let slacks = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];

    let mut cells = Vec::new();
    for (si, _) in slacks.iter().enumerate() {
        for seed in 0..SEEDS {
            cells.push(GridCell {
                label: format!("s{si}/seed{seed}"),
                input: (si, seed),
            });
        }
    }
    let results = run_grid(cells, None, |(si, seed)| {
        let jobs = gen_jobs(120, slacks[*si], *seed);
        let lb = flex_lower_bound(&jobs).max(1) as f64;
        let rigid = rigid_schedule(&jobs).validate(&jobs).expect("rigid valid") as f64;
        let greedy = flex_schedule(&jobs).validate(&jobs).expect("greedy valid") as f64;
        let opt = flex_schedule_optimized(&jobs)
            .validate(&jobs)
            .expect("optimized valid") as f64;
        (rigid / lb, greedy / lb, opt / lb)
    });

    let mut table = Table::new(&[
        "slack_factor",
        "rigid_vs_lb",
        "greedy_vs_lb",
        "greedy+search_vs_lb",
    ]);
    let mut prev_opt = f64::INFINITY;
    for (si, slack) in slacks.iter().enumerate() {
        let rs: Vec<&(f64, f64, f64)> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("s{si}/")))
            .map(|r| &r.output)
            .collect();
        let n = rs.len() as f64;
        let rigid = rs.iter().map(|r| r.0).sum::<f64>() / n;
        let greedy = rs.iter().map(|r| r.1).sum::<f64>() / n;
        let opt = rs.iter().map(|r| r.2).sum::<f64>() / n;
        table.row(&[f3(*slack), f3(rigid), f3(greedy), f3(opt)]);
        // Optimized never loses to the constructive greedy.
        assert!(opt <= greedy + 1e-9);
        // More slack should not make the optimized schedule *much* worse
        // (it monotonically widens the feasible set per seed, but the
        // greedy is a heuristic — allow small noise).
        assert!(opt <= prev_opt + 0.05, "slack {slack} regressed");
        prev_opt = prev_opt.min(opt);
    }
    table.print();
    println!("\nchecks: local search <= greedy; usage non-increasing in slack (±0.05) ... OK");
}
