//! Vector-engine throughput benchmark: stream a million-item correlated
//! vector workload through the full vector roster and record the
//! trajectory in `BENCH_vector.json`.
//!
//! The vector sibling of `bench_engine`: one [`VecStreamingSession`] per
//! algorithm fed arrivals one at a time, timing the whole stream
//! including departure processing, tracking peak open bins and a
//! live-memory proxy. The workload and cell recipes are shared with the
//! `dbp bench --check` gate ([`dbp_bench::check::vector_baseline_instance`]),
//! so a checked-in baseline regenerates bit-identical instances.
//!
//! Usage: `cargo run --release -p dbp-bench --bin bench_vector [-- flags]`
//!
//! * `--short`  — ~100k items instead of ~1M (the CI smoke configuration).
//! * `--serial` — one cell at a time, for minimum-noise timings.
//! * `--out P`  — write the JSON report to `P` (default
//!   `BENCH_vector.json` in the working directory, i.e. the repo root).
//!
//! The JSON is a measurement artifact: regenerate it with a release build
//! from the repo root after engine changes (see `docs/performance.md`).

use dbp_bench::check::vector_baseline_instance;
use dbp_bench::registry::{vector_packer, vector_packer_linear, AlgoParams, VECTOR_ALGOS};
use dbp_bench::report::Table;
use dbp_bench::{run_grid, GridCell};
use dbp_core::{VecClairvoyance, VecStreamingSession};
use std::time::Instant;

const SEED: u64 = 1;

struct AlgoReport {
    items: usize,
    elapsed_s: f64,
    items_per_sec: f64,
    peak_open_bins: usize,
    peak_live_bytes: usize,
    bins_opened: usize,
    usage: u128,
}

fn usage_exit() -> ! {
    eprintln!("usage: bench_vector [--short] [--serial] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut short = false;
    let mut serial = false;
    let mut out_path = String::from("BENCH_vector.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--serial" => serial = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage_exit()),
            _ => usage_exit(),
        }
    }

    let mode = if short { "short" } else { "full" };
    let inst = vector_baseline_instance(mode, "default").expect("default vector workload");
    // Deep-fleet variant: one arrival per tick held by mean-1000
    // exponential durations, so hundreds of bins stay open and a linear
    // open-bin walk pays for every one of them on every placement.
    let deep_inst = vector_baseline_instance(mode, "deep").expect("deep vector workload");
    println!(
        "vector engine benchmark ({mode}): {} items, {} axes, seed {SEED}\n  deep-fleet cells: {} items\n",
        inst.len(),
        inst.dims(),
        deep_inst.len(),
    );
    if !short {
        assert!(
            inst.len() >= 1_000_000,
            "full mode must stream at least one million items"
        );
    }

    // Cell input: (algo, deep workload?, linear-scan foil?). The foil
    // cells re-run the two headline rules on the deep fleet with the
    // O(fleet) open-bin walk, so the indexed speedup is measured inside
    // the artifact rather than against a stale baseline.
    let mut cells: Vec<GridCell<(&str, bool, bool)>> = VECTOR_ALGOS
        .iter()
        .map(|algo| GridCell {
            label: algo.to_string(),
            input: (*algo, false, false),
        })
        .collect();
    cells.extend(["first-fit", "best-fit"].iter().map(|algo| GridCell {
        label: format!("{algo}@deep"),
        input: (*algo, true, false),
    }));
    cells.extend(["first-fit", "best-fit"].iter().map(|algo| GridCell {
        label: format!("{algo}@deep/linear"),
        input: (*algo, true, true),
    }));
    let n_cells = cells.len();
    let workers = if serial {
        1
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n_cells)
    };
    let inst_ref = &inst;
    let deep_ref = &deep_inst;
    let results = run_grid(
        cells,
        Some(workers),
        move |&(algo, deep, linear): &(&str, bool, bool)| {
            let inst = if deep { deep_ref } else { inst_ref };
            let params = AlgoParams::from_vec_instance(inst);
            let mut packer = if linear {
                vector_packer_linear(algo, params)
            } else {
                vector_packer(algo, params)
            };
            let mut session =
                VecStreamingSession::new(VecClairvoyance::Clairvoyant, packer.as_mut());
            let mut peak_open_bins = 0usize;
            let mut peak_live_bytes = 0usize;
            let started = Instant::now();
            for (k, item) in inst.items().iter().enumerate() {
                session.arrive(item).expect("benchmark stream is valid");
                peak_open_bins = peak_open_bins.max(session.open_bins());
                if k % 1024 == 0 {
                    peak_live_bytes = peak_live_bytes.max(session.approx_live_bytes());
                }
            }
            let run = session.finish().expect("stream drains cleanly");
            let elapsed_s = started.elapsed().as_secs_f64();
            if deep && !short {
                // The whole point of the cell: the fleet really is deep.
                assert!(
                    peak_open_bins >= 300,
                    "{algo}@deep peaked at only {peak_open_bins} open bins"
                );
            }
            AlgoReport {
                items: inst.len(),
                elapsed_s,
                items_per_sec: inst.len() as f64 / elapsed_s,
                peak_open_bins,
                peak_live_bytes,
                bins_opened: run.bins_opened(),
                usage: run.usage,
            }
        },
    );

    let mut table = Table::new(&[
        "algo",
        "items/s",
        "elapsed_s",
        "peak_open",
        "peak_live_KiB",
        "bins",
        "usage",
    ]);
    for r in &results {
        let o = &r.output;
        table.row(&[
            r.label.clone(),
            format!("{:.0}", o.items_per_sec),
            format!("{:.3}", o.elapsed_s),
            o.peak_open_bins.to_string(),
            format!("{}", o.peak_live_bytes / 1024),
            o.bins_opened.to_string(),
            o.usage.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dbp-bench/vector-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"workload\": {{ \"generator\": \"corr-vec\", \"dims\": {}, \"seed\": {SEED}, \"items\": {} }},\n",
        inst.dims(),
        inst.len()
    ));
    json.push_str(&format!(
        "  \"deep_workload\": {{ \"generator\": \"corr-vec/deep\", \"dims\": {}, \"seed\": {SEED}, \"items\": {} }},\n",
        deep_inst.dims(),
        deep_inst.len()
    ));
    json.push_str(&format!("  \"parallel_workers\": {workers},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let o = &r.output;
        // Labels are `algo`, `algo@deep`, or `algo@deep/linear`; the
        // JSON keeps the roster name, workload, and scan machinery as
        // separate fields so the perf gate can rebuild the right
        // instance and packer variant per cell.
        let (algo, rest) = match r.label.split_once('@') {
            Some((a, w)) => (a, w),
            None => (r.label.as_str(), "default"),
        };
        let (cell_workload, scan) = match rest.split_once('/') {
            Some((w, s)) => (w, s),
            None => (rest, "indexed"),
        };
        json.push_str(&format!(
            "    {{ \"algo\": \"{algo}\", \"workload\": \"{cell_workload}\", \
             \"scan\": \"{scan}\", \
             \"items\": {}, \"elapsed_s\": {:.6}, \
             \"items_per_sec\": {:.0}, \"peak_open_bins\": {}, \
             \"peak_live_bytes\": {}, \"bins_opened\": {}, \"usage\": {} }}{}\n",
            o.items,
            o.elapsed_s,
            o.items_per_sec,
            o.peak_open_bins,
            o.peak_live_bytes,
            o.bins_opened,
            o.usage,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
    println!("OK");
}
