//! Experiment E1 — empirical approximation ratios of the offline
//! algorithms (§4).
//!
//! Two regimes:
//!
//! * **Small instances** (n = 10): ratios against the *exact* repacking
//!   adversary `OPT_total` — the denominator of Theorems 1 and 2. DDFF must
//!   stay below 5, Dual Coloring below 4.
//! * **Large instances** (n = 1000): ratios against LB3 (≤ `OPT_total`, so
//!   the theorem bounds still apply to the reported numbers).
//!
//! Also reports the Dual Coloring large-item ablation (interval-FF vs
//! one-bin-per-item) called out in DESIGN.md §5.

use dbp_bench::registry::{offline_packer, OFFLINE_ALGOS};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_offline, run_grid, GridCell};
use dbp_workloads::random::{SizeDist, UniformWorkload};
use dbp_workloads::scenarios::{AnalyticsWorkload, CloudGamingWorkload, SpikeWorkload};
use dbp_workloads::Workload;

fn main() {
    small_exact();
    large_lb3();
}

fn small_exact() {
    println!("E1a — offline ratios vs exact OPT_total (n=10, 20 seeds)\n");
    let workload = UniformWorkload::new(10).with_sizes(SizeDist::Uniform { lo: 0.1, hi: 0.9 });
    let mut cells = Vec::new();
    for algo in OFFLINE_ALGOS {
        for seed in 0..20u64 {
            cells.push(GridCell {
                label: format!("{algo}/seed{seed}"),
                input: (algo.to_string(), seed),
            });
        }
    }
    let results = run_grid(cells, None, |(algo, seed)| {
        let inst = workload.generate_seeded(*seed);
        let m = measure_offline(&inst, offline_packer(algo).as_ref(), true).expect("measure");
        m.ratio_vs_opt.expect("exact opt requested")
    });

    let mut table = Table::new(&["algo", "mean_ratio_vs_opt", "max_ratio_vs_opt", "bound"]);
    for algo in OFFLINE_ALGOS {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/")))
            .map(|r| r.output)
            .collect();
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let max = rs.iter().cloned().fold(0.0, f64::max);
        let bound = match *algo {
            "ddff" => "5 (Thm 1)",
            "dual-coloring" | "dual-coloring-1pb" => "4 (Thm 2)",
            _ => "-",
        };
        table.row(&[algo.to_string(), f3(mean), f3(max), bound.to_string()]);
        match *algo {
            "ddff" => assert!(max < 5.0, "Theorem 1 violated: {max}"),
            "dual-coloring" | "dual-coloring-1pb" => {
                assert!(max <= 4.0 + 1e-9, "Theorem 2 violated: {max}")
            }
            _ => {}
        }
    }
    table.print();
    println!("\nchecks: DDFF < 5 x OPT, DualColoring <= 4 x OPT on all seeds ... OK\n");
}

fn large_lb3() {
    println!("E1b — offline ratios vs LB3 on large workload families (n~1000, 5 seeds)\n");
    let workloads: Vec<(String, Box<dyn Workload + Sync>)> = vec![
        ("uniform".into(), Box::new(UniformWorkload::new(1000))),
        (
            "gaming".into(),
            Box::new(CloudGamingWorkload::new(800, 40_000)),
        ),
        (
            "analytics".into(),
            Box::new(AnalyticsWorkload::new(40, 2_000, 25)),
        ),
        ("spike".into(), Box::new(SpikeWorkload::new(10, 100, 1_000))),
    ];

    let mut cells = Vec::new();
    for algo in OFFLINE_ALGOS {
        for (wname, _) in &workloads {
            for seed in 0..5u64 {
                cells.push(GridCell {
                    label: format!("{algo}/{wname}/seed{seed}"),
                    input: (algo.to_string(), wname.clone(), seed),
                });
            }
        }
    }
    let wl_ref = &workloads;
    let results = run_grid(cells, None, move |(algo, wname, seed)| {
        let w = &wl_ref.iter().find(|(n, _)| n == wname).unwrap().1;
        let inst = w.generate_seeded(*seed);
        let m = measure_offline(&inst, offline_packer(algo).as_ref(), false).expect("measure");
        m.ratio_vs_lb3
    });

    let mut table = Table::new(&["workload", "algo", "mean_ratio_vs_lb3", "max"]);
    for (wname, _) in &workloads {
        for algo in OFFLINE_ALGOS {
            let rs: Vec<f64> = results
                .iter()
                .filter(|r| r.label.starts_with(&format!("{algo}/{wname}/")))
                .map(|r| r.output)
                .collect();
            let mean = rs.iter().sum::<f64>() / rs.len() as f64;
            let max = rs.iter().cloned().fold(0.0, f64::max);
            table.row(&[wname.clone(), algo.to_string(), f3(mean), f3(max)]);
            match *algo {
                "ddff" => assert!(max < 5.0),
                "dual-coloring" | "dual-coloring-1pb" => assert!(max <= 4.0 + 1e-9),
                _ => {}
            }
        }
    }
    table.print();
    println!("\nchecks: theorem bounds hold against LB3 on every family ... OK");
}
