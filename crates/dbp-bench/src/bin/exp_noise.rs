//! Experiment E5 — sensitivity to inaccurate duration estimates (§6).
//!
//! The paper's concluding remarks ask how inaccurate departure estimates
//! affect the clairvoyant strategies. The engine's noisy mode feeds the
//! packers multiplicative-error estimates while the simulation still uses
//! true departures. For each error level, mean usage ratios (vs LB3) are
//! reported for CBDT, CBD and the combined strategy, with plain
//! (non-clairvoyant) First Fit as the reference floor that needs no
//! estimates at all.
//!
//! Expected shape: graceful degradation — small errors barely move the
//! ratios (category boundaries are coarse), and even ±50% noise keeps the
//! classified strategies at or below the FF baseline.

use dbp_bench::registry::{online_packer, AlgoParams};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_online, run_grid, GridCell};
use dbp_core::online::ClairvoyanceMode;
use dbp_sim::NoisyEstimator;
use dbp_workloads::random::MuSweepWorkload;
use dbp_workloads::Workload;

const SEEDS: u64 = 6;
const ALGOS: &[&str] = &["cbdt", "cbd", "combined"];

fn main() {
    let (delta, mu) = (20i64, 64.0);
    println!("E5 — noisy duration estimates at mu={mu} (n=400, {SEEDS} seeds)\n");
    let errors = [0.0, 0.05, 0.10, 0.20, 0.50];

    let mut cells = Vec::new();
    for algo in ALGOS {
        for (ei, _) in errors.iter().enumerate() {
            for seed in 0..SEEDS {
                cells.push(GridCell {
                    label: format!("{algo}/e{ei}/seed{seed}"),
                    input: (algo.to_string(), ei, seed),
                });
            }
        }
    }
    let results = run_grid(cells, None, |(algo, ei, seed)| {
        let err = errors[*ei];
        let inst = MuSweepWorkload::new(400, delta, mu).generate_seeded(*seed);
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        let mode = if err == 0.0 {
            ClairvoyanceMode::Clairvoyant
        } else {
            NoisyEstimator::new(seed * 7919 + 13, err).mode()
        };
        measure_online(&inst, packer.as_mut(), mode, false)
            .expect("measure")
            .ratio_vs_lb3
    });

    // FF baseline (needs no estimates).
    let mut ff_sum = 0.0;
    for seed in 0..SEEDS {
        let inst = MuSweepWorkload::new(400, delta, mu).generate_seeded(seed);
        let mut ff = online_packer("first-fit", AlgoParams::from_instance(&inst));
        ff_sum += measure_online(&inst, ff.as_mut(), ClairvoyanceMode::NonClairvoyant, false)
            .expect("measure")
            .ratio_vs_lb3;
    }
    let ff_mean = ff_sum / SEEDS as f64;

    let mut header = vec!["max_rel_error".to_string()];
    header.extend(ALGOS.iter().map(|a| a.to_string()));
    header.push("first-fit(no estimates)".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for (ei, err) in errors.iter().enumerate() {
        let mut row = vec![format!("{:.0}%", err * 100.0)];
        for algo in ALGOS {
            let rs: Vec<f64> = results
                .iter()
                .filter(|r| r.label.starts_with(&format!("{algo}/e{ei}/")))
                .map(|r| r.output)
                .collect();
            row.push(f3(rs.iter().sum::<f64>() / rs.len() as f64));
        }
        row.push(f3(ff_mean));
        table.row(&row);
    }
    table.print();

    // Degradation check: at every error level the classified strategies
    // must remain valid (checked in measure) — report whether they beat FF.
    println!(
        "\n(classified strategies degrade gracefully; FF baseline = {} needs no estimates)",
        f3(ff_mean)
    );
}
