//! Telemetry-overhead benchmark: stream a million-item Poisson workload
//! through each algorithm twice — bare session vs. session with a
//! sampled [`TelemetryRecorder`] attached — and record the throughput
//! delta in `BENCH_telemetry.json`.
//!
//! The acceptance target is **under 5% overhead** with the default
//! recorder: work histograms stride deterministically (1-in-16
//! placements/closes) and the `Instant::now()` reads that dominate
//! observation cost are paid on one arrival in 64. The emitted file
//! doubles as the perf-gate baseline for
//! `dbp bench --check BENCH_telemetry.json`.
//!
//! Usage: `cargo run --release -p dbp-bench --bin bench_telemetry [-- flags]`
//!
//! * `--short` — ~100k items instead of ~1M (the CI smoke configuration).
//! * `--out P` — write the JSON report to `P` (default
//!   `BENCH_telemetry.json` in the working directory, i.e. the repo root).
//!
//! Cells run serially, interleaving off/on per algorithm so each pair
//! shares its thermal and cache environment, and every cell is run
//! best-of-15 (minimum elapsed wins) after one unmeasured warmup round,
//! to shed scheduler noise — single-CPU CI runners and containers see
//! ±10% swings on individual cells, and only the paired minima
//! converge. The JSON is a measurement artifact: regenerate it with a
//! release build from the repo root after engine or telemetry changes
//! (see `docs/performance.md`).

use dbp_bench::registry::{online_packer, AlgoParams};
use dbp_bench::report::Table;
use dbp_core::stream::StreamingSession;
use dbp_core::ClairvoyanceMode;
use dbp_telemetry::TelemetryRecorder;
use dbp_workloads::random::PoissonWorkload;
use dbp_workloads::Workload;
use std::time::Instant;

const SEED: u64 = 1;
/// The scan-cost spectrum: first-fit is the cheapest per-arrival loop
/// (where observer overhead shows up most), best-fit the heaviest scan,
/// cbdt the paper's flagship.
const ALGOS: &[&str] = &["first-fit", "best-fit", "cbdt"];

struct CellReport {
    algo: String,
    telemetry: &'static str,
    items: usize,
    elapsed_s: f64,
    items_per_sec: f64,
    bins_opened: usize,
    usage: u128,
}

fn usage_exit() -> ! {
    eprintln!("usage: bench_telemetry [--short] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut short = false;
    let mut out_path = String::from("BENCH_telemetry.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage_exit()),
            _ => usage_exit(),
        }
    }

    let horizon = if short { 26_000 } else { 260_000 };
    let workload = PoissonWorkload::new(4.0, horizon);
    let inst = workload.generate_seeded(SEED);
    let params = AlgoParams::from_instance(&inst);
    let mode = if short { "short" } else { "full" };
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "telemetry benchmark ({mode}): {} items from {} seed {SEED}, host parallelism {host_parallelism}\n",
        inst.len(),
        workload.name(),
    );
    if !short {
        assert!(
            inst.len() >= 1_000_000,
            "full mode must stream at least one million items"
        );
    }

    const ROUNDS: usize = 15;
    let mut results: Vec<CellReport> = Vec::new();
    for algo in ALGOS {
        // Best-of-N with off/sampled alternating within each round: keep
        // the round with the smallest elapsed time per variant. Minimum
        // (not mean) is the right folding for throughput — noise from
        // the scheduler and frequency scaling only ever adds time.
        // Round 0 is an unmeasured warmup (cold caches and page-ins
        // would otherwise penalise whichever cell runs first).
        let mut best_off: Option<CellReport> = None;
        let mut best_sampled: Option<CellReport> = None;
        for round in 0..=ROUNDS {
            for telemetry in ["off", "sampled"] {
                let mut packer = online_packer(algo, params);
                let (elapsed_s, run) = if telemetry == "off" {
                    let mut session =
                        StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
                    let started = Instant::now();
                    for item in inst.items() {
                        session.arrive(item).expect("benchmark stream is valid");
                    }
                    let run = session.finish().expect("stream drains cleanly");
                    (started.elapsed().as_secs_f64(), run)
                } else {
                    let mut session = StreamingSession::with_observer(
                        ClairvoyanceMode::Clairvoyant,
                        packer.as_mut(),
                        TelemetryRecorder::new(),
                    );
                    let started = Instant::now();
                    for item in inst.items() {
                        session.arrive(item).expect("benchmark stream is valid");
                    }
                    let (run, _) = session
                        .finish_with_observer()
                        .expect("stream drains cleanly");
                    (started.elapsed().as_secs_f64(), run)
                };
                let cell = CellReport {
                    algo: (*algo).to_string(),
                    telemetry,
                    items: inst.len(),
                    elapsed_s,
                    items_per_sec: inst.len() as f64 / elapsed_s,
                    bins_opened: run.bins_opened(),
                    usage: run.usage,
                };
                if round == 0 {
                    continue; // warmup round: run, but don't score
                }
                let best = if telemetry == "off" {
                    &mut best_off
                } else {
                    &mut best_sampled
                };
                if best.as_ref().is_none_or(|b| cell.elapsed_s < b.elapsed_s) {
                    *best = Some(cell);
                }
            }
        }
        results.push(best_off.expect("at least one round ran"));
        results.push(best_sampled.expect("at least one round ran"));
    }

    let mut table = Table::new(&["algo", "telemetry", "items/s", "elapsed_s", "bins", "usage"]);
    for r in &results {
        table.row(&[
            r.algo.clone(),
            r.telemetry.to_string(),
            format!("{:.0}", r.items_per_sec),
            format!("{:.3}", r.elapsed_s),
            r.bins_opened.to_string(),
            r.usage.to_string(),
        ]);
    }
    table.print();

    // Overhead of the sampled recorder relative to the bare session, per
    // algorithm (the trajectory's acceptance metric: < 5%).
    let overhead_pct = |algo: &str| -> f64 {
        let at = |telemetry: &str| {
            results
                .iter()
                .find(|r| r.algo == algo && r.telemetry == telemetry)
                .map(|r| r.items_per_sec)
                .unwrap_or(f64::NAN)
        };
        (at("off") - at("sampled")) / at("off") * 100.0
    };
    println!();
    for algo in ALGOS {
        println!(
            "{algo}: sampled-telemetry overhead = {:.2}%",
            overhead_pct(algo)
        );
    }

    // The observed stream must be the same stream: identical packings.
    for algo in ALGOS {
        let pair: Vec<&CellReport> = results.iter().filter(|r| r.algo == *algo).collect();
        assert_eq!(
            (pair[0].bins_opened, pair[0].usage),
            (pair[1].bins_opened, pair[1].usage),
            "{algo}: telemetry changed the packing"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dbp-bench/telemetry-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"workload\": {{ \"generator\": \"{}\", \"seed\": {SEED}, \"items\": {} }},\n",
        workload.name(),
        inst.len()
    ));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str("  \"overhead_pct\": {");
    for (i, algo) in ALGOS.iter().enumerate() {
        json.push_str(&format!(
            " \"{algo}\": {:.2}{}",
            overhead_pct(algo),
            if i + 1 < ALGOS.len() { "," } else { " " }
        ));
    }
    json.push_str("},\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"algo\": \"{}\", \"telemetry\": \"{}\", \"items\": {}, \
             \"elapsed_s\": {:.6}, \"items_per_sec\": {:.0}, \"bins_opened\": {}, \
             \"usage\": {} }}{}\n",
            r.algo,
            r.telemetry,
            r.items,
            r.elapsed_s,
            r.items_per_sec,
            r.bins_opened,
            r.usage,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
    println!("OK");
}
