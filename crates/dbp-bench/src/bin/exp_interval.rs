//! Experiment E4 — interval scheduling with bounded parallelism: the §5.3
//! remark that Theorem 5 improves Shalom et al.'s BucketFirstFit analysis.
//!
//! BucketFirstFit *is* classify-by-duration First Fit specialized to unit
//! demands; the paper improves its competitive-ratio bound from
//! `(2α+2)·⌈log_α μ⌉` to `α + ⌈log_α μ⌉ + 4`. We run BucketFirstFit (and
//! plain online First Fit, plus the offline longest-first 4-approximation)
//! on unit-demand jobs for several machine capacities `g`, and report
//! measured busy-time ratios against the `∫⌈N(t)/g⌉dt` lower bound next
//! to both analytic bounds: the measured ratios sit far below the new
//! bound, which itself is far below the old one.

use dbp_bench::report::{f3, Table};
use dbp_interval::{bucket_first_fit, busy_lower_bound, longest_first, online_first_fit, Job};
use dbp_theory::{bucket_ff_bound, cbd_bound};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gen_jobs(n: usize, mu: f64, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    let delta = 20i64;
    let max = (delta as f64 * mu) as i64;
    (0..n)
        .map(|i| {
            let a = rng.gen_range(0..n as i64 * 4);
            let len = if i == 0 {
                delta
            } else if i == 1 {
                max
            } else {
                let x: f64 = rng.gen_range((delta as f64).ln()..=(max as f64).ln());
                (x.exp().round() as i64).clamp(delta, max)
            };
            Job::new(i as u32, a, a + len)
        })
        .collect()
}

fn main() {
    let (mu, alpha) = (64.0, 2.0);
    println!("E4 — interval scheduling (unit demands): BucketFirstFit vs bounds");
    println!("mu={mu}, alpha={alpha}, n=600 jobs, 5 seeds\n");

    let mut table = Table::new(&[
        "g",
        "ff_ratio",
        "bucket_ff_ratio",
        "longest_first_ratio",
        "new_bound(a+log+4)",
        "old_bound((2a+2)log)",
    ]);
    for g in [2usize, 4, 8, 16] {
        let mut ff_sum = 0.0;
        let mut bff_sum = 0.0;
        let mut lf_sum = 0.0;
        let seeds = 5;
        for seed in 0..seeds {
            let jobs = gen_jobs(600, mu, seed);
            let lb = busy_lower_bound(&jobs, g) as f64;
            let ff = online_first_fit(&jobs, g);
            ff.validate(&jobs, g).expect("ff valid");
            let bff = bucket_first_fit(&jobs, g, 20, alpha);
            bff.validate(&jobs, g).expect("bff valid");
            let lf = longest_first(&jobs, g);
            lf.validate(&jobs, g).expect("lf valid");
            ff_sum += ff.busy_time() as f64 / lb;
            bff_sum += bff.busy_time() as f64 / lb;
            lf_sum += lf.busy_time() as f64 / lb;
        }
        let n = seeds as f64;
        let new_bound = cbd_bound(alpha, mu);
        let old_bound = bucket_ff_bound(alpha, mu);
        table.row(&[
            g.to_string(),
            f3(ff_sum / n),
            f3(bff_sum / n),
            f3(lf_sum / n),
            f3(new_bound),
            f3(old_bound),
        ]);
        assert!(bff_sum / n <= new_bound, "new bound violated at g={g}");
        assert!(lf_sum / n <= 4.0, "Flammini 4-approx violated at g={g}");
        assert!(new_bound < old_bound);
    }
    table.print();
    println!(
        "\nchecks: measured BucketFF <= new bound {} << old bound {}; longest-first <= 4 ... OK",
        f3(cbd_bound(alpha, mu)),
        f3(bucket_ff_bound(alpha, mu))
    );
}
