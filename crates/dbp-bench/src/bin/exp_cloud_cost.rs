//! Experiment E9 — end-to-end cloud renting cost (the paper's motivating
//! application, §1).
//!
//! The cluster simulator runs every online scheduler on the cloud-gaming
//! and recurring-analytics traces under both billing models: per-tick
//! (the exact MinUsageTime objective) and per-hour round-up (AWS-style).
//! Reported: cost, servers acquired, peak fleet size, utilization, and the
//! usage ratio against LB3. This is the table an operator would read to
//! choose a scheduler.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_bench::report::{f3, Table};
use dbp_core::online::ClairvoyanceMode;
use dbp_sim::{simulate, Billing};
use dbp_workloads::scenarios::{AnalyticsWorkload, CloudGamingWorkload};
use dbp_workloads::Workload;

fn main() {
    // One tick = one second; hour = 3600 ticks.
    let traces: Vec<(&str, dbp_core::Instance)> = vec![
        (
            "cloud-gaming",
            CloudGamingWorkload::new(1500, 6 * 3600).generate_seeded(42),
        ),
        (
            "analytics",
            AnalyticsWorkload::new(60, 3600, 8).generate_seeded(42),
        ),
    ];

    for (tname, inst) in &traces {
        println!(
            "E9 — {tname}: n={}, span={} s, mu={:.1}\n",
            inst.len(),
            inst.span(),
            inst.mu().unwrap_or(1.0)
        );
        let params = AlgoParams::from_instance(inst);
        let mut table = Table::new(&[
            "scheduler",
            "server_hours_cost",
            "per_tick_cost",
            "servers",
            "peak",
            "utilization",
            "ratio_vs_lb",
        ]);
        let hourly = Billing::PerHour {
            ticks_per_hour: 3600,
            price: 1.0,
        };
        for algo in ONLINE_ALGOS {
            let mut packer = online_packer(algo, params);
            let mode = if matches!(*algo, "cbdt" | "cbd" | "combined") {
                ClairvoyanceMode::Clairvoyant
            } else {
                ClairvoyanceMode::NonClairvoyant
            };
            let rep = simulate(inst, packer.as_mut(), mode.clone(), hourly).expect("sim");
            let mut p2 = online_packer(algo, params);
            let per_tick = simulate(inst, p2.as_mut(), mode, dbp_sim::unit_billing())
                .expect("sim")
                .cost;
            table.row(&[
                algo.to_string(),
                f3(rep.cost),
                f3(per_tick),
                rep.servers_acquired.to_string(),
                rep.peak_servers.to_string(),
                f3(rep.utilization),
                f3(rep.ratio_vs_lb),
            ]);
        }
        table.print();
        println!();
    }
    println!("(clairvoyant schedulers use known session-end times, as the paper's\n cloud-gaming motivation assumes; Any Fit baselines run non-clairvoyantly)");
}
