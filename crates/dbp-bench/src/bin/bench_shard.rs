//! Sharded-streaming throughput benchmark: stream a million-item deep
//! Poisson workload through [`ShardedSession`] fleets of 1, 2, 4, and 8
//! shards and record the trajectory in `BENCH_shard.json`.
//!
//! The workload is chosen so placement cost is dominated by open-bin
//! scans (long exponential durations keep a deep fleet — hundreds of
//! open bins — and best-fit scans all of them per arrival). Sharding
//! then wins even on one core: each shard's scan covers only its own
//! K-times-smaller fleet. `host_parallelism` is recorded, and when a
//! fleet asks for more worker threads than the host has cores the run
//! warns on stderr and tags the JSON `"degraded_parallelism": true`, so
//! single-core results are never mistaken for parallel speedup.
//!
//! Usage: `cargo run --release -p dbp-bench --bin bench_shard [-- flags]`
//!
//! * `--short`  — ~100k items instead of ~1M (the CI smoke configuration).
//! * `--serial` — one worker thread per fleet regardless of shard count.
//! * `--out P`  — write the JSON report to `P` (default
//!   `BENCH_shard.json` in the working directory, i.e. the repo root).
//!
//! The JSON is a measurement artifact: regenerate it with a release
//! build from the repo root after engine or shard changes (see
//! `docs/performance.md`).

use dbp_bench::registry::{online_packer, AlgoParams};
use dbp_bench::report::Table;
use dbp_core::ClairvoyanceMode;
use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};
use dbp_workloads::random::{DurationDist, PoissonWorkload};
use dbp_workloads::Workload;
use std::time::Instant;

const SEED: u64 = 1;
/// Scan-heavy subset of the roster: best-fit is the pure O(fleet) scan,
/// first-fit the early-exit scan, cbdt the per-class scan.
const ALGOS: &[&str] = &["best-fit", "first-fit", "cbdt"];
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

struct ConfigReport {
    algo: String,
    shards: usize,
    workers: usize,
    items: u64,
    elapsed_s: f64,
    items_per_sec: f64,
    peak_open_bins: usize,
    max_shard_peak: usize,
    bins_opened: u64,
    usage: u128,
    imbalance: f64,
}

fn usage_exit() -> ! {
    eprintln!("usage: bench_shard [--short] [--serial] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut short = false;
    let mut serial = false;
    let mut out_path = String::from("BENCH_shard.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--serial" => serial = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage_exit()),
            _ => usage_exit(),
        }
    }

    // Poisson arrivals at 4 items/tick, exponential durations with mean
    // 500: expected level ≈ rate · mean duration · mean size ≈ 550, so a
    // best-fit fleet holds several hundred open bins and every placement
    // scans them all. That is the scan depth sharding divides by K.
    let horizon = if short { 26_000 } else { 260_000 };
    let workload = PoissonWorkload::new(4.0, horizon).with_durations(DurationDist::Exponential {
        mean: 500.0,
        min: 1,
        max: 5_000,
    });
    let inst = workload.generate_seeded(SEED);
    let params = AlgoParams::from_instance(&inst);
    let mode = if short { "short" } else { "full" };
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "shard benchmark ({mode}): {} items from {} seed {SEED}, host parallelism {host_parallelism}\n",
        inst.len(),
        workload.name(),
    );
    // Provenance guard: if any fleet below asks for more workers than the
    // host has cores, the threads time-slice one core and the speedup
    // column measures scan-depth division, not parallelism. Say so loudly
    // and tag the JSON so downstream readers can't mistake the numbers.
    let max_workers = if serial {
        1
    } else {
        *SHARD_COUNTS.iter().max().unwrap_or(&1)
    };
    let degraded_parallelism = max_workers > host_parallelism;
    if degraded_parallelism {
        eprintln!(
            "WARNING: up to {max_workers} worker threads on a \
             {host_parallelism}-core host — worker threads exceed cores, so \
             multi-shard rows measure scan-depth division, NOT parallel \
             speedup. The JSON report is tagged \"degraded_parallelism\": true.\n"
        );
    }
    if !short {
        assert!(
            inst.len() >= 1_000_000,
            "full mode must stream at least one million items"
        );
    }

    let mut results: Vec<ConfigReport> = Vec::new();
    for algo in ALGOS {
        for &shards in SHARD_COUNTS {
            let workers = if serial { 1 } else { shards };
            let cfg = ShardConfig {
                threads: Some(workers),
                collect_metrics: false,
                ..ShardConfig::new(shards, ShardRouter::hash())
            };
            let packers = (0..shards).map(|_| online_packer(algo, params)).collect();
            let mut fleet = ShardedSession::new(ClairvoyanceMode::Clairvoyant, packers, cfg)
                .expect("benchmark config is valid");
            let started = Instant::now();
            for item in inst.items() {
                fleet.arrive(item).expect("benchmark stream is valid");
            }
            let report = fleet.finish().expect("stream drains cleanly");
            let elapsed_s = started.elapsed().as_secs_f64();
            let (_, imbalance) = report.balance();
            results.push(ConfigReport {
                algo: (*algo).to_string(),
                shards,
                workers,
                items: report.items,
                elapsed_s,
                items_per_sec: report.items as f64 / elapsed_s,
                peak_open_bins: report.peak_open_bins,
                max_shard_peak: report
                    .slices
                    .iter()
                    .map(|s| s.peak_open_bins)
                    .max()
                    .unwrap_or(0),
                bins_opened: report.bins_opened,
                usage: report.usage,
                imbalance,
            });
        }
    }

    let mut table = Table::new(&[
        "algo",
        "K",
        "workers",
        "items/s",
        "elapsed_s",
        "fleet_peak",
        "shard_peak",
        "bins",
        "usage",
    ]);
    for r in &results {
        table.row(&[
            r.algo.clone(),
            r.shards.to_string(),
            r.workers.to_string(),
            format!("{:.0}", r.items_per_sec),
            format!("{:.3}", r.elapsed_s),
            r.peak_open_bins.to_string(),
            r.max_shard_peak.to_string(),
            r.bins_opened.to_string(),
            r.usage.to_string(),
        ]);
    }
    table.print();

    // Throughput of the 8-shard fleet relative to the 1-shard baseline,
    // per algorithm (the trajectory's acceptance metric).
    let speedup_8v1 = |algo: &str| -> f64 {
        let at = |k: usize| {
            results
                .iter()
                .find(|r| r.algo == algo && r.shards == k)
                .map(|r| r.items_per_sec)
                .unwrap_or(f64::NAN)
        };
        at(8) / at(1)
    };
    println!();
    for algo in ALGOS {
        println!(
            "{algo}: 8-shard speedup over 1-shard = {:.2}x",
            speedup_8v1(algo)
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dbp-bench/shard-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"workload\": {{ \"generator\": \"{}\", \"seed\": {SEED}, \"items\": {} }},\n",
        workload.name(),
        inst.len()
    ));
    json.push_str(&format!(
        "  \"router\": \"{}\",\n",
        ShardRouter::hash().name()
    ));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str(&format!(
        "  \"degraded_parallelism\": {degraded_parallelism},\n"
    ));
    json.push_str("  \"speedup_8v1\": {");
    for (i, algo) in ALGOS.iter().enumerate() {
        json.push_str(&format!(
            " \"{algo}\": {:.3}{}",
            speedup_8v1(algo),
            if i + 1 < ALGOS.len() { "," } else { " " }
        ));
    }
    json.push_str("},\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"algo\": \"{}\", \"shards\": {}, \"workers\": {}, \"items\": {}, \
             \"elapsed_s\": {:.6}, \"items_per_sec\": {:.0}, \"peak_open_bins\": {}, \
             \"max_shard_peak\": {}, \"bins_opened\": {}, \"usage\": {}, \
             \"imbalance\": {:.4} }}{}\n",
            r.algo,
            r.shards,
            r.workers,
            r.items,
            r.elapsed_s,
            r.items_per_sec,
            r.peak_open_bins,
            r.max_shard_peak,
            r.bins_opened,
            r.usage,
            r.imbalance,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
    println!("OK");
}
