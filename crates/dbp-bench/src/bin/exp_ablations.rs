//! Ablation experiments for the design choices DESIGN.md §5 calls out:
//!
//! 1. **DDFF sort order** — descending duration (Theorem 1's requirement)
//!    vs ascending vs demand-descending, on random and staircase
//!    workloads. Shows the sort key is load-bearing, not incidental.
//! 2. **Dual Coloring large-item rule** — interval First Fit vs
//!    one-bin-per-item for the `s > 1/2` group (both satisfy Theorem 2's
//!    analysis; the former wastes less on sequential large items).
//! 3. **Classification granularity at the extremes** — CBDT with ρ→0
//!    (every departure its own class: no sharing within windows) and
//!    ρ→∞ (one class: plain FF), bracketing the useful range.
//! 4. **Fixed vs sliding departure windows** — the paper's analyzable
//!    bucketing vs boundary-free sliding compatibility; the measured gap
//!    is the price of analyzability.

use dbp_algos::online::{ClassifyByDepartureTime, SlidingDepartureWindow};
use dbp_bench::registry::{offline_packer, online_packer, AlgoParams};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_offline, measure_online, run_grid, GridCell};
use dbp_core::online::ClairvoyanceMode;
use dbp_core::Instance;
use dbp_workloads::random::UniformWorkload;
use dbp_workloads::Workload;

fn main() {
    sort_order();
    large_rule();
    rho_extremes();
    sliding_vs_fixed();
}

fn staircase() -> Instance {
    let mut triples = Vec::new();
    for w in 0..10i64 {
        triples.push((0.5, w * 100, w * 100 + 900)); // backbone
        triples.push((0.5, w * 100, w * 100 + 40)); // rider
    }
    Instance::from_triples(&triples)
}

fn sort_order() {
    println!("Ablation 1 — first-fit sort order (mean ratio vs LB3, 10 seeds)\n");
    let orders = [
        "ddff",
        "duration-ascending-ff",
        "demand-descending-ff",
        "arrival-ff",
    ];
    let mut cells = Vec::new();
    for algo in orders {
        for seed in 0..10u64 {
            cells.push(GridCell {
                label: format!("{algo}/seed{seed}"),
                input: (algo.to_string(), seed),
            });
        }
    }
    let results = run_grid(cells, None, |(algo, seed)| {
        let inst = UniformWorkload::new(600).generate_seeded(*seed);
        measure_offline(&inst, offline_packer(algo).as_ref(), false)
            .expect("measure")
            .ratio_vs_lb3
    });
    let mut table = Table::new(&["order", "uniform_mean", "staircase"]);
    let stair = staircase();
    for algo in orders {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/")))
            .map(|r| r.output)
            .collect();
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let s = measure_offline(&stair, offline_packer(algo).as_ref(), false)
            .expect("measure")
            .ratio_vs_lb3;
        table.row(&[algo.to_string(), f3(mean), f3(s)]);
    }
    table.print();
    // Theorem 1 is a worst-case statement, not per-instance dominance;
    // the check is on the aggregate: descending must win on average.
    let mean_of = |algo: &str| -> f64 {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/")))
            .map(|r| r.output)
            .collect();
        rs.iter().sum::<f64>() / rs.len() as f64
    };
    assert!(
        mean_of("ddff") <= mean_of("duration-ascending-ff") + 1e-9,
        "descending lost to ascending on average"
    );
    println!("\ncheck: descending <= ascending in the uniform mean ... OK\n");
}

fn large_rule() {
    println!("Ablation 2 — Dual Coloring large-item rule (mean ratio vs LB3, 10 seeds)\n");
    let mut table = Table::new(&["rule", "mean_ratio", "max_ratio"]);
    for algo in ["dual-coloring", "dual-coloring-1pb"] {
        let mut rs = Vec::new();
        for seed in 0..10u64 {
            // Large-heavy workload so the rule matters.
            let inst = UniformWorkload::new(400)
                .with_sizes(dbp_workloads::random::SizeDist::Uniform { lo: 0.3, hi: 0.95 })
                .generate_seeded(seed);
            rs.push(
                measure_offline(&inst, offline_packer(algo).as_ref(), false)
                    .expect("measure")
                    .ratio_vs_lb3,
            );
        }
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let max = rs.iter().cloned().fold(0.0, f64::max);
        table.row(&[algo.to_string(), f3(mean), f3(max)]);
        assert!(max <= 4.0 + 1e-9, "Theorem 2 violated by {algo}");
    }
    table.print();
    println!("\ncheck: both rules within the Theorem 2 bound ... OK\n");
}

fn rho_extremes() {
    println!("Ablation 3 — CBDT classification granularity extremes\n");
    let inst = UniformWorkload::new(600).generate_seeded(3);
    let params = AlgoParams::from_instance(&inst);
    let mut table = Table::new(&["packer", "usage", "bins", "ratio_vs_lb3"]);

    // rho = 1 tick: each departure tick its own category.
    let mut tiny = ClassifyByDepartureTime::new(1);
    let m =
        measure_online(&inst, &mut tiny, ClairvoyanceMode::Clairvoyant, false).expect("measure");
    table.row(&[
        "cbdt(rho=1)".into(),
        m.usage.to_string(),
        m.bins.to_string(),
        f3(m.ratio_vs_lb3),
    ]);

    // Optimal rho.
    let mut opt = online_packer("cbdt", params);
    let m_opt =
        measure_online(&inst, opt.as_mut(), ClairvoyanceMode::Clairvoyant, false).expect("measure");
    table.row(&[
        m_opt.algo.clone(),
        m_opt.usage.to_string(),
        m_opt.bins.to_string(),
        f3(m_opt.ratio_vs_lb3),
    ]);

    // rho = entire horizon: single category — identical decisions to FF.
    let horizon = inst.last_departure().unwrap() - inst.first_arrival().unwrap() + 1;
    let mut huge = ClassifyByDepartureTime::new(horizon);
    let m_huge =
        measure_online(&inst, &mut huge, ClairvoyanceMode::Clairvoyant, false).expect("measure");
    table.row(&[
        "cbdt(rho=horizon)".into(),
        m_huge.usage.to_string(),
        m_huge.bins.to_string(),
        f3(m_huge.ratio_vs_lb3),
    ]);

    let mut ff = online_packer("first-fit", params);
    let m_ff =
        measure_online(&inst, ff.as_mut(), ClairvoyanceMode::Clairvoyant, false).expect("measure");
    table.row(&[
        "first-fit".into(),
        m_ff.usage.to_string(),
        m_ff.bins.to_string(),
        f3(m_ff.ratio_vs_lb3),
    ]);
    table.print();

    assert_eq!(
        m_huge.usage, m_ff.usage,
        "one-category CBDT must collapse to plain First Fit"
    );
    println!("\ncheck: cbdt(rho=horizon) == first-fit exactly ... OK\n");
}

/// Ablation 4 — fixed bucketing (the paper's analyzable rule) vs sliding
/// departure compatibility (no boundary artifacts, but no proven bound).
fn sliding_vs_fixed() {
    println!("Ablation 4 — fixed departure buckets vs sliding compatibility (10 seeds)\n");
    let mut table = Table::new(&["rho", "fixed_mean_ratio", "sliding_mean_ratio"]);
    for rho in [40i64, 160, 640] {
        let mut fixed_sum = 0.0;
        let mut slide_sum = 0.0;
        let seeds = 10u64;
        for seed in 0..seeds {
            let inst = UniformWorkload::new(500)
                .with_durations(dbp_workloads::random::DurationDist::Uniform { lo: 20, hi: 1280 })
                .generate_seeded(seed);
            let mut fixed = ClassifyByDepartureTime::new(rho);
            fixed_sum += measure_online(&inst, &mut fixed, ClairvoyanceMode::Clairvoyant, false)
                .expect("measure")
                .ratio_vs_lb3;
            let mut sliding = SlidingDepartureWindow::new(rho);
            slide_sum += measure_online(&inst, &mut sliding, ClairvoyanceMode::Clairvoyant, false)
                .expect("measure")
                .ratio_vs_lb3;
        }
        table.row(&[
            rho.to_string(),
            f3(fixed_sum / seeds as f64),
            f3(slide_sum / seeds as f64),
        ]);
    }
    table.print();
    println!("\n(sliding avoids bucket-boundary splits; the fixed rule is what the\n paper's Theorem 4 analysis needs — the gap quantifies the analysis tax)");
}
