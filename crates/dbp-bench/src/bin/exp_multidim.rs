//! Experiment E8 — the multi-resource extension (§6 future work).
//!
//! Two-dimensional (CPU, memory) items packed by First Fit with and
//! without the §5 classification strategies; usage ratios against the
//! per-dimension Proposition 3 bound `max_d ∫⌈S_d(t)⌉dt`. The qualitative
//! Figure 8 story should survive the added dimension: classification keeps
//! ratios flat as `μ` grows while plain FF degrades.

use dbp_bench::report::{f3, Table};
use dbp_bench::{run_grid, GridCell};
use dbp_core::Size;
use dbp_multidim::{
    multi_lower_bound, pack_online, validate, Classification, MultiInstance, MultiItem,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 6;

fn gen(n: usize, mu: f64, seed: u64) -> MultiInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let delta = 20i64;
    let max = (delta as f64 * mu) as i64;
    let items = (0..n)
        .map(|i| {
            let a = rng.gen_range(0..n as i64 * 2);
            let d = if i == 0 {
                delta
            } else if i == 1 {
                max
            } else {
                let x: f64 = rng.gen_range((delta as f64).ln()..=(max as f64).ln());
                (x.exp().round() as i64).clamp(delta, max)
            };
            let cpu = Size::from_f64(rng.gen_range(0.05..0.5));
            let mem = Size::from_f64(rng.gen_range(0.05..0.5));
            MultiItem::new(i as u32, vec![cpu, mem], a, a + d)
        })
        .collect();
    MultiInstance::new(items)
}

fn main() {
    println!("E8 — 2-D (CPU, memory) MinUsageTime DBP (n=400, {SEEDS} seeds)\n");
    let mus = [2.0, 8.0, 32.0, 128.0];
    type ClassifierFn = Box<dyn Fn(f64, i64) -> Classification + Sync>;
    let classifiers: Vec<(&str, ClassifierFn)> = vec![
        ("first-fit", Box::new(|_, _| Classification::None)),
        (
            "cbdt",
            Box::new(|mu: f64, delta: i64| Classification::ByDepartureTime {
                rho: ((mu.sqrt() * delta as f64).round() as i64).max(1),
            }),
        ),
        (
            "cbd",
            Box::new(|mu: f64, delta: i64| Classification::ByDuration {
                base: delta,
                alpha: dbp_algos::online::ClassifyByDuration::with_known_durations(delta, mu)
                    .alpha(),
            }),
        ),
    ];

    let mut cells = Vec::new();
    for (ci, _) in classifiers.iter().enumerate() {
        for (mi, _) in mus.iter().enumerate() {
            for seed in 0..SEEDS {
                cells.push(GridCell {
                    label: format!("c{ci}/m{mi}/seed{seed}"),
                    input: (ci, mi, seed),
                });
            }
        }
    }
    let cls = &classifiers;
    let results = run_grid(cells, None, move |(ci, mi, seed)| {
        let mu = mus[*mi];
        let inst = gen(400, mu, *seed);
        let delta = 20i64;
        let c = (cls[*ci].1)(mu, delta);
        let run = pack_online(&inst, c);
        validate(&inst, &run).expect("valid multi packing");
        let lb = multi_lower_bound(&inst).max(1);
        run.usage as f64 / lb as f64
    });

    let mut table = Table::new(&["mu", "first-fit", "cbdt", "cbd"]);
    for (mi, mu) in mus.iter().enumerate() {
        let mean = |ci: usize| -> f64 {
            let rs: Vec<f64> = results
                .iter()
                .filter(|r| r.label.starts_with(&format!("c{ci}/m{mi}/")))
                .map(|r| r.output)
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        table.row(&[f3(*mu), f3(mean(0)), f3(mean(1)), f3(mean(2))]);
    }
    table.print();
    println!("\n(ratios are vs the per-dimension LB — a weaker denominator than 1-D LB3,\n so absolute values run higher; the classification-flattens-growth shape is the claim)");
}
