//! Experiment F5/T3 — the executable **Theorem 3 / Figure 5** adversary.
//!
//! For each online algorithm in the roster, the adversary presents the
//! two-item prefix (sizes `1/2 − ε`, durations `x` and 1), observes whether
//! the algorithm co-located the items, and plays the punishing
//! continuation. The achieved ratio is reported against the exact
//! no-migration optimum. At `x = φ ≈ 1.618` every algorithm's ratio must
//! be at least `φ` minus discretization slack — no online algorithm
//! escapes the golden-ratio bound.

use dbp_algos::adversary::{golden_ratio, guaranteed_ratio, run_adversary, AdversaryCase};
use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_bench::report::{f3, Table};

fn main() {
    let unit: i64 = 100_000; // duration "1" in ticks: fine discretization
    let tau: i64 = 1;
    let params = AlgoParams {
        delta: unit,
        mu: 2.0,
    };

    println!("Theorem 3 adversary (Figure 5): ratio forced on each online algorithm\n");
    let mut table = Table::new(&[
        "x/unit",
        "algo",
        "case",
        "alg_usage",
        "opt_usage",
        "ratio",
        "guaranteed",
    ]);
    let xs = [1.2, 1.4, golden_ratio(), 1.8, 2.0];
    let mut at_phi_min = f64::INFINITY;
    for &x_over in &xs {
        let x = (x_over * unit as f64).round() as i64;
        for name in ONLINE_ALGOS {
            let mut packer = online_packer(name, params);
            let rep = run_adversary(packer.as_mut(), unit, x, tau);
            if (x_over - golden_ratio()).abs() < 1e-9 {
                at_phi_min = at_phi_min.min(rep.ratio);
            }
            table.row(&[
                f3(x_over),
                name.to_string(),
                match rep.case {
                    AdversaryCase::A => "A".into(),
                    AdversaryCase::B => "B".into(),
                },
                rep.algorithm_usage.to_string(),
                rep.optimum_usage.to_string(),
                f3(rep.ratio),
                f3(guaranteed_ratio(x_over)),
            ]);
        }
    }
    table.print();

    println!(
        "\nphi = {:.6}; minimum ratio over the roster at x = phi: {:.6}",
        golden_ratio(),
        at_phi_min
    );
    let slack = 0.01; // finite unit & tau discretization
    assert!(
        at_phi_min >= golden_ratio() - slack,
        "some algorithm escaped the golden-ratio bound"
    );
    println!("Theorem 3 check: every algorithm forced to >= phi - {slack} ... OK");
}
