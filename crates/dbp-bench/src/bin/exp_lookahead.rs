//! Experiment E12 — bounded arrival lookahead: how much future-arrival
//! visibility buys, complementing the paper's departure-clairvoyance axis.
//!
//! Sweeps the window `W` from 0 (the online problem) to beyond the span
//! (the offline problem) on random and structured workloads, reporting
//! mean usage ratios vs LB3 alongside the W=0 ≡ arrival-First-Fit and
//! W=∞ ≡ DDFF anchors. A side finding worth reporting honestly: partial
//! windows are *not* monotone — a planner optimizing a horizon that then
//! shifts can do slightly worse than a blinder one.

use dbp_algos::lookahead::run_lookahead;
use dbp_bench::report::{f3, Table};
use dbp_bench::{run_grid, GridCell};
use dbp_core::accounting::lower_bounds;
use dbp_workloads::random::{DurationDist, UniformWorkload};
use dbp_workloads::Workload;

const SEEDS: u64 = 6;

fn main() {
    println!("E12 — arrival-lookahead sweep (n=300, {SEEDS} seeds)\n");
    let windows: Vec<i64> = vec![0, 10, 25, 50, 100, 250, 1000, 100_000];

    let mut cells = Vec::new();
    for (wi, _) in windows.iter().enumerate() {
        for seed in 0..SEEDS {
            cells.push(GridCell {
                label: format!("w{wi}/seed{seed}"),
                input: (wi, seed),
            });
        }
    }
    let win_ref = &windows;
    let results = run_grid(cells, None, move |(wi, seed)| {
        let inst = UniformWorkload::new(300)
            .with_durations(DurationDist::ShortLong {
                short: 20,
                long: 600,
                p_short: 0.7,
            })
            .generate_seeded(*seed);
        let la = run_lookahead(&inst, win_ref[*wi]);
        la.packing.validate(&inst).expect("valid");
        la.usage as f64 / lower_bounds(&inst).best().max(1) as f64
    });

    let mut table = Table::new(&["window", "mean_ratio_vs_lb3"]);
    for (wi, w) in windows.iter().enumerate() {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("w{wi}/")))
            .map(|r| r.output)
            .collect();
        table.row(&[w.to_string(), f3(rs.iter().sum::<f64>() / rs.len() as f64)]);
    }
    table.print();

    // Structured pairing family where visibility pays sharply: waves of
    // one long then one short half-size item, 50 ticks apart. Blind
    // arrival FF pairs each long with the adjacent short (every bin lives
    // ~the long duration); with a window covering the next wave, the
    // planner pairs longs with longs.
    println!("\nstructured interleaved waves (usage in ticks):");
    let mut triples = Vec::new();
    for wv in 0..10i64 {
        triples.push((0.5, wv * 50, wv * 50 + 2000)); // long
        triples.push((0.5, wv * 50 + 1, wv * 50 + 81)); // short (straddles the next wave)
    }
    let inst = dbp_core::Instance::from_triples(&triples);
    let mut table2 = Table::new(&["window", "usage", "ratio_vs_lb3"]);
    let lb = lower_bounds(&inst).best().max(1);
    let mut sweep = Vec::new();
    for w in [0i64, 10, 60, 120, 5000] {
        let la = run_lookahead(&inst, w);
        la.packing.validate(&inst).expect("valid");
        sweep.push((w, la.usage));
        table2.row(&[
            w.to_string(),
            la.usage.to_string(),
            f3(la.usage as f64 / lb as f64),
        ]);
    }
    table2.print();
    assert!(
        sweep.last().unwrap().1 <= sweep.first().unwrap().1,
        "full visibility must not lose to none on the wave family"
    );
    println!(
        "\nfinding: once bins may be reused across idle gaps (the natural model\n         for lookahead planning), arrival visibility buys almost nothing —\n         blind arrival-FF already sits within ~1% of LB3 here. The valuable\n         information is DEPARTURE clairvoyance (the paper's axis), which is\n         what separates algorithms in the online, closing-bin model (E2/E11)."
    );
    println!("\n(W=0 is offline arrival-First-Fit; very large W matches DDFF quality;\n intermediate windows need not be monotone — partial plans can mislead)");
}
