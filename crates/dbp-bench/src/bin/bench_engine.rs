//! Engine throughput benchmark: stream a million-item workload through
//! the full online roster and record the trajectory in `BENCH_engine.json`.
//!
//! Unlike the Criterion micro-benches (which time small closed loops),
//! this measures the *engine* end to end the way an integrator runs it:
//! one [`StreamingSession`] per algorithm fed arrivals one at a time,
//! timing the whole stream including departure processing, and tracking
//! peak open bins plus a live-memory RSS proxy
//! ([`StreamingSession::approx_live_bytes`], sampled every 1024
//! arrivals). Cells fan out across cores via [`dbp_bench::run_grid`].
//!
//! Usage: `cargo run --release -p dbp-bench --bin bench_engine [-- flags]`
//!
//! * `--short`  — ~100k items instead of ~1M (the CI smoke configuration).
//! * `--serial` — one cell at a time, for minimum-noise timings.
//! * `--out P`  — write the JSON report to `P` (default
//!   `BENCH_engine.json` in the working directory, i.e. the repo root).
//!
//! The JSON is a measurement artifact: regenerate it with a release build
//! from the repo root after engine changes (see `docs/performance.md`).

use dbp_bench::registry::{online_packer, online_packer_linear, AlgoParams, ONLINE_ALGOS};
use dbp_bench::report::Table;
use dbp_bench::{run_grid, GridCell};
use dbp_core::stream::StreamingSession;
use dbp_core::ClairvoyanceMode;
use dbp_workloads::random::{DurationDist, PoissonWorkload};
use dbp_workloads::Workload;
use std::time::Instant;

const SEED: u64 = 1;

struct AlgoReport {
    items: usize,
    elapsed_s: f64,
    items_per_sec: f64,
    peak_open_bins: usize,
    peak_live_bytes: usize,
    bins_opened: usize,
    usage: u128,
}

fn usage_exit() -> ! {
    eprintln!("usage: bench_engine [--short] [--serial] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut short = false;
    let mut serial = false;
    let mut out_path = String::from("BENCH_engine.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--serial" => serial = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage_exit()),
            _ => usage_exit(),
        }
    }

    // Poisson arrivals at 4 items/tick: the horizon sets the expected
    // item count. The full horizon targets comfortably over one million
    // items (40σ above the line for this rate), per the perf trajectory's
    // acceptance floor.
    let horizon = if short { 26_000 } else { 260_000 };
    let workload = PoissonWorkload::new(4.0, horizon);
    let inst = workload.generate_seeded(SEED);
    // Deep-fleet variant: identical arrivals, but exponential durations
    // with mean 1000 hold expected concurrent load ≈ rate · mean duration
    // · mean size ≈ 1100 bins' worth, so every algorithm sustains a fleet
    // of 1000+ open bins. This is the cell that catches scan-depth
    // cliffs: a linear open-bin walk collapses here while the indexed
    // fit queries stay flat.
    let deep_workload =
        PoissonWorkload::new(4.0, horizon).with_durations(DurationDist::Exponential {
            mean: 1000.0,
            min: 1,
            max: 10_000,
        });
    let deep_inst = deep_workload.generate_seeded(SEED);
    let mode = if short { "short" } else { "full" };
    println!(
        "engine benchmark ({mode}): {} items from {} seed {SEED}\n  deep-fleet cells: {} items from {}\n",
        inst.len(),
        workload.name(),
        deep_inst.len(),
        deep_workload.name(),
    );
    if !short {
        assert!(
            inst.len() >= 1_000_000,
            "full mode must stream at least one million items"
        );
    }

    // Cell input: (algo, deep workload?, linear-scan foil?). The foil
    // cells re-run the two headline rules on the deep fleet with the
    // seed's O(fleet) open-bin walk, so the indexed speedup is measured
    // inside the artifact rather than against a stale baseline.
    let mut cells: Vec<GridCell<(&str, bool, bool)>> = ONLINE_ALGOS
        .iter()
        .map(|algo| GridCell {
            label: algo.to_string(),
            input: (*algo, false, false),
        })
        .collect();
    cells.extend(ONLINE_ALGOS.iter().map(|algo| GridCell {
        label: format!("{algo}@deep"),
        input: (*algo, true, false),
    }));
    cells.extend(["first-fit", "best-fit"].iter().map(|algo| GridCell {
        label: format!("{algo}@deep/linear"),
        input: (*algo, true, true),
    }));
    let n_cells = cells.len();
    let workers = if serial {
        1
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n_cells)
    };
    let inst_ref = &inst;
    let deep_ref = &deep_inst;
    let results = run_grid(
        cells,
        Some(workers),
        move |&(algo, deep, linear): &(&str, bool, bool)| {
            let inst = if deep { deep_ref } else { inst_ref };
            let params = AlgoParams::from_instance(inst);
            let mut packer = if linear {
                online_packer_linear(algo, params)
            } else {
                online_packer(algo, params)
            };
            let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
            let mut peak_open_bins = 0usize;
            let mut peak_live_bytes = 0usize;
            let started = Instant::now();
            for (k, item) in inst.items().iter().enumerate() {
                session.arrive(item).expect("benchmark stream is valid");
                peak_open_bins = peak_open_bins.max(session.open_bins());
                if k % 1024 == 0 {
                    peak_live_bytes = peak_live_bytes.max(session.approx_live_bytes());
                }
            }
            let run = session.finish().expect("stream drains cleanly");
            let elapsed_s = started.elapsed().as_secs_f64();
            if deep && !short {
                // The whole point of the cell: the fleet really is deep.
                assert!(
                    peak_open_bins >= 1000,
                    "{algo}@deep peaked at only {peak_open_bins} open bins"
                );
            }
            AlgoReport {
                items: inst.len(),
                elapsed_s,
                items_per_sec: inst.len() as f64 / elapsed_s,
                peak_open_bins,
                peak_live_bytes,
                bins_opened: run.bins_opened(),
                usage: run.usage,
            }
        },
    );

    let mut table = Table::new(&[
        "algo",
        "items/s",
        "elapsed_s",
        "peak_open",
        "peak_live_KiB",
        "bins",
        "usage",
    ]);
    for r in &results {
        let o = &r.output;
        table.row(&[
            r.label.clone(),
            format!("{:.0}", o.items_per_sec),
            format!("{:.3}", o.elapsed_s),
            o.peak_open_bins.to_string(),
            format!("{}", o.peak_live_bytes / 1024),
            o.bins_opened.to_string(),
            o.usage.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dbp-bench/engine-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"workload\": {{ \"generator\": \"{}\", \"seed\": {SEED}, \"items\": {} }},\n",
        workload.name(),
        inst.len()
    ));
    json.push_str(&format!(
        "  \"deep_workload\": {{ \"generator\": \"{}\", \"seed\": {SEED}, \"items\": {} }},\n",
        deep_workload.name(),
        deep_inst.len()
    ));
    json.push_str(&format!("  \"parallel_workers\": {workers},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let o = &r.output;
        // Labels are `algo`, `algo@deep`, or `algo@deep/linear`; the
        // JSON keeps the roster name, workload, and scan machinery as
        // separate fields so the perf gate can rebuild the right
        // instance and packer variant per cell.
        let (algo, rest) = match r.label.split_once('@') {
            Some((a, w)) => (a, w),
            None => (r.label.as_str(), "default"),
        };
        let (cell_workload, scan) = match rest.split_once('/') {
            Some((w, s)) => (w, s),
            None => (rest, "indexed"),
        };
        json.push_str(&format!(
            "    {{ \"algo\": \"{algo}\", \"workload\": \"{cell_workload}\", \
             \"scan\": \"{scan}\", \
             \"items\": {}, \"elapsed_s\": {:.6}, \
             \"items_per_sec\": {:.0}, \"peak_open_bins\": {}, \
             \"peak_live_bytes\": {}, \"bins_opened\": {}, \"usage\": {} }}{}\n",
            o.items,
            o.elapsed_s,
            o.items_per_sec,
            o.peak_open_bins,
            o.peak_live_bytes,
            o.bins_opened,
            o.usage,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
    println!("OK");
}
