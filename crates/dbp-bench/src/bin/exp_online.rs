//! Experiment E2 — empirical competitive ratios of every online algorithm
//! across a `μ` sweep: the measured analogue of Figure 8's ordering.
//!
//! For each `μ ∈ {1, 2, 4, …, 128}`, instances with exactly that duration
//! ratio are generated ([`MuSweepWorkload`]); every roster algorithm runs
//! under the appropriate clairvoyance (classification strategies get true
//! departures; Any Fit variants don't need them), and mean usage ratios
//! against LB3 are reported. Expected shape: plain First Fit degrades as
//! `μ` grows while CBDT/CBD/combined stay flat — and each algorithm stays
//! below its theorem bound.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_online, run_grid, GridCell};
use dbp_core::online::ClairvoyanceMode;
use dbp_theory::{cbd_best_known, cbdt_best_known, ff_non_clairvoyant};
use dbp_workloads::random::{MuSweepWorkload, SizeDist};
use dbp_workloads::Workload;

const SEEDS: u64 = 5;

fn main() {
    println!("E2 — online competitive ratios vs LB3 across mu (n=400, {SEEDS} seeds)\n");
    let mus: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

    let mut cells = Vec::new();
    for &mu in &mus {
        for algo in ONLINE_ALGOS {
            for seed in 0..SEEDS {
                cells.push(GridCell {
                    label: format!("{algo}/mu{mu}/seed{seed}"),
                    input: (algo.to_string(), mu, seed),
                });
            }
        }
    }
    let results = run_grid(cells, None, |(algo, mu, seed)| {
        let w =
            MuSweepWorkload::new(400, 20, *mu).with_sizes(SizeDist::Uniform { lo: 0.05, hi: 0.6 });
        let inst = w.generate_seeded(*seed);
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        let m = measure_online(&inst, packer.as_mut(), ClairvoyanceMode::Clairvoyant, false)
            .expect("measure");
        (m.ratio_vs_lb3, m.counters)
    });

    let mean = |algo: &str, mu: f64| -> f64 {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/mu{mu}/")))
            .map(|r| r.output.0)
            .collect();
        rs.iter().sum::<f64>() / rs.len() as f64
    };

    let mut header: Vec<&str> = vec!["mu"];
    header.extend(ONLINE_ALGOS);
    header.extend(["bound_ff", "bound_cbdt", "bound_cbd"]);
    let mut table = Table::new(&header);
    for &mu in &mus {
        let mut row = vec![f3(mu)];
        for algo in ONLINE_ALGOS {
            row.push(f3(mean(algo, mu)));
        }
        row.push(f3(ff_non_clairvoyant(mu)));
        row.push(f3(cbdt_best_known(mu)));
        row.push(f3(cbd_best_known(mu).0));
        table.row(&row);
    }
    table.print();

    // Shape checks: every measured ratio below its theorem bound; at large
    // mu the classified strategies beat plain FF on these adversarial-free
    // random workloads or at least stay within their flat bounds.
    for &mu in &mus {
        assert!(
            mean("first-fit", mu) <= ff_non_clairvoyant(mu) + 1e-9,
            "FF bound violated at mu={mu}"
        );
        assert!(
            mean("cbdt", mu) <= cbdt_best_known(mu) + 1e-9,
            "CBDT bound violated at mu={mu}"
        );
        assert!(
            mean("cbd", mu) <= cbd_best_known(mu).0 + 1e-9,
            "CBD bound violated at mu={mu}"
        );
    }
    println!("\nchecks: every measured mean ratio below its theorem bound ... OK");

    // Observability cross-section: aggregate run counters per algorithm
    // over the whole grid — scan depth and decision latency are the cost
    // side of the ratios above.
    let mut ctable = Table::new(&[
        "algo",
        "items",
        "reuse_frac",
        "mean_scan",
        "ns_per_decision",
    ]);
    for algo in ONLINE_ALGOS {
        let mut total = dbp_obs::CountersSnapshot::default();
        for r in results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/")))
        {
            let c = r.output.1;
            total.items_packed += c.items_packed;
            total.placements_reused += c.placements_reused;
            total.bins_opened += c.bins_opened;
            total.bins_closed += c.bins_closed;
            total.candidates_scanned += c.candidates_scanned;
            total.decide_ns_total += c.decide_ns_total;
            total.decide_ns_max = total.decide_ns_max.max(c.decide_ns_max);
        }
        ctable.row(&[
            algo.to_string(),
            total.items_packed.to_string(),
            f3(total.reuse_fraction()),
            f3(total.mean_candidates()),
            f3(total.mean_decide_ns()),
        ]);
        assert_eq!(
            total.bins_opened, total.bins_closed,
            "every opened bin must close ({algo})"
        );
    }
    println!("\nrun counters (whole grid):");
    ctable.print();

    // Trace-replay oracle: one representative run per algorithm must
    // reconstruct bit-for-bit from its own event stream.
    for algo in ONLINE_ALGOS {
        let w =
            MuSweepWorkload::new(400, 20, 16.0).with_sizes(SizeDist::Uniform { lo: 0.05, hi: 0.6 });
        let inst = w.generate_seeded(0);
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        let mut log = dbp_core::observe::EventLog::new();
        let run = dbp_core::OnlineEngine::clairvoyant()
            .run_observed(&inst, packer.as_mut(), &mut log)
            .expect("observed run");
        let replay = dbp_obs::replay_events(&log.events).expect("replay");
        replay.verify().expect("replay verifies");
        assert_eq!(replay.run.usage, run.usage, "replayed usage ({algo})");
        assert_eq!(
            replay.run.packing, run.packing,
            "replayed bin assignments ({algo})"
        );
    }
    println!(
        "checks: traces replay bit-for-bit for all {} algorithms ... OK",
        ONLINE_ALGOS.len()
    );
}
