//! Experiment E2 — empirical competitive ratios of every online algorithm
//! across a `μ` sweep: the measured analogue of Figure 8's ordering.
//!
//! For each `μ ∈ {1, 2, 4, …, 128}`, instances with exactly that duration
//! ratio are generated ([`MuSweepWorkload`]); every roster algorithm runs
//! under the appropriate clairvoyance (classification strategies get true
//! departures; Any Fit variants don't need them), and mean usage ratios
//! against LB3 are reported. Expected shape: plain First Fit degrades as
//! `μ` grows while CBDT/CBD/combined stay flat — and each algorithm stays
//! below its theorem bound.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_bench::report::{f3, Table};
use dbp_bench::{measure_online, run_grid, GridCell};
use dbp_core::online::ClairvoyanceMode;
use dbp_theory::{cbd_best_known, cbdt_best_known, ff_non_clairvoyant};
use dbp_workloads::random::{MuSweepWorkload, SizeDist};
use dbp_workloads::Workload;

const SEEDS: u64 = 5;

fn main() {
    println!("E2 — online competitive ratios vs LB3 across mu (n=400, {SEEDS} seeds)\n");
    let mus: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

    let mut cells = Vec::new();
    for &mu in &mus {
        for algo in ONLINE_ALGOS {
            for seed in 0..SEEDS {
                cells.push(GridCell {
                    label: format!("{algo}/mu{mu}/seed{seed}"),
                    input: (algo.to_string(), mu, seed),
                });
            }
        }
    }
    let results = run_grid(cells, None, |(algo, mu, seed)| {
        let w =
            MuSweepWorkload::new(400, 20, *mu).with_sizes(SizeDist::Uniform { lo: 0.05, hi: 0.6 });
        let inst = w.generate_seeded(*seed);
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        let m = measure_online(&inst, packer.as_mut(), ClairvoyanceMode::Clairvoyant, false);
        m.ratio_vs_lb3
    });

    let mean = |algo: &str, mu: f64| -> f64 {
        let rs: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/mu{mu}/")))
            .map(|r| r.output)
            .collect();
        rs.iter().sum::<f64>() / rs.len() as f64
    };

    let mut header: Vec<&str> = vec!["mu"];
    header.extend(ONLINE_ALGOS);
    header.extend(["bound_ff", "bound_cbdt", "bound_cbd"]);
    let mut table = Table::new(&header);
    for &mu in &mus {
        let mut row = vec![f3(mu)];
        for algo in ONLINE_ALGOS {
            row.push(f3(mean(algo, mu)));
        }
        row.push(f3(ff_non_clairvoyant(mu)));
        row.push(f3(cbdt_best_known(mu)));
        row.push(f3(cbd_best_known(mu).0));
        table.row(&row);
    }
    table.print();

    // Shape checks: every measured ratio below its theorem bound; at large
    // mu the classified strategies beat plain FF on these adversarial-free
    // random workloads or at least stay within their flat bounds.
    for &mu in &mus {
        assert!(
            mean("first-fit", mu) <= ff_non_clairvoyant(mu) + 1e-9,
            "FF bound violated at mu={mu}"
        );
        assert!(
            mean("cbdt", mu) <= cbdt_best_known(mu) + 1e-9,
            "CBDT bound violated at mu={mu}"
        );
        assert!(
            mean("cbd", mu) <= cbd_best_known(mu).0 + 1e-9,
            "CBD bound violated at mu={mu}"
        );
    }
    println!("\nchecks: every measured mean ratio below its theorem bound ... OK");
}
