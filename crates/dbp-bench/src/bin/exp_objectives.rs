//! Experiment E13 — MinUsageTime vs classical DBP objectives (§2).
//!
//! The paper's related work contrasts its objective with Coffman et al.'s
//! classical Dynamic Bin Packing, which minimizes the *maximum number of
//! concurrently open bins* and "does not consider the duration of bin
//! usage". This experiment makes the divergence concrete: the same
//! algorithms ranked under both objectives, plus a construction where the
//! usage-optimal and peak-optimal packings genuinely differ — evidence
//! that optimizing the classical objective can be a poor proxy for
//! renting cost, the paper's §2 point.

use dbp_bench::registry::{online_packer, AlgoParams, ONLINE_ALGOS};
use dbp_bench::report::{f3, Table};
use dbp_core::accounting::lower_bounds;
use dbp_core::online::ClairvoyanceMode;
use dbp_core::OnlineEngine;
use dbp_workloads::scenarios::CloudGamingWorkload;
use dbp_workloads::Workload;

fn main() {
    both_objectives_on_real_trace();
    divergence_construction();
}

fn both_objectives_on_real_trace() {
    println!("E13a — both objectives on a gaming trace (n=1000)\n");
    let inst = CloudGamingWorkload::new(1_000, 20_000).generate_seeded(7);
    let lb = lower_bounds(&inst).best().max(1);
    let params = AlgoParams::from_instance(&inst);
    let mut table = Table::new(&["algo", "usage_ratio(MinUsageTime)", "peak_bins(classical)"]);
    let mut rows: Vec<(String, f64, i64)> = Vec::new();
    for algo in ONLINE_ALGOS {
        let mut p = online_packer(algo, params);
        let mode = if matches!(*algo, "cbdt" | "cbd" | "combined") {
            ClairvoyanceMode::Clairvoyant
        } else {
            ClairvoyanceMode::NonClairvoyant
        };
        let run = OnlineEngine::new(mode).run(&inst, p.as_mut()).expect("run");
        run.packing.validate(&inst).expect("valid");
        let usage_ratio = run.usage as f64 / lb as f64;
        let peak = run.fleet_series().max();
        table.row(&[algo.to_string(), f3(usage_ratio), peak.to_string()]);
        rows.push((algo.to_string(), usage_ratio, peak));
    }
    table.print();

    // The rankings under the two objectives need not agree.
    let mut by_usage = rows.clone();
    by_usage.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut by_peak = rows.clone();
    by_peak.sort_by_key(|r| r.2);
    println!(
        "\nbest by usage: {} | best by peak bins: {}{}",
        by_usage[0].0,
        by_peak[0].0,
        if by_usage[0].0 == by_peak[0].0 {
            " (agree on this trace)"
        } else {
            " (objectives disagree!)"
        }
    );
}

/// A construction where minimizing peak bins hurts usage time: one long
/// thin item per wave can share a single bin with everything (peak 1 is
/// impossible anyway), but packing *for* peak (always reuse) strands the
/// bin open, while packing for usage splits by departure.
fn divergence_construction() {
    println!("\nE13b — objectives genuinely diverge (tail-trap shape)\n");
    let inst = dbp_workloads::adversarial::ff_tail_trap(8, 2000, 10);
    let params = AlgoParams::from_instance(&inst);
    let mut table = Table::new(&["algo", "usage", "peak_bins"]);
    let mut measured = Vec::new();
    for algo in ["first-fit", "cbdt"] {
        let mut p = online_packer(algo, params);
        let mode = if algo == "cbdt" {
            ClairvoyanceMode::Clairvoyant
        } else {
            ClairvoyanceMode::NonClairvoyant
        };
        let run = OnlineEngine::new(mode).run(&inst, p.as_mut()).expect("run");
        let peak = run.fleet_series().max();
        table.row(&[algo.to_string(), run.usage.to_string(), peak.to_string()]);
        measured.push((algo, run.usage, peak));
    }
    table.print();
    // FF has minimal peak (k bins, same as CBDT needs at burst) yet ~8x
    // the usage — classical DBP's objective is blind to this difference.
    let (ff, cbdt) = (&measured[0], &measured[1]);
    assert!(ff.1 > 4 * cbdt.1, "usage must diverge sharply");
    assert!(
        (ff.2 - cbdt.2).abs() <= ff.2 / 2,
        "peaks stay comparable while usage diverges"
    );
    println!(
        "\nFF and CBDT need comparable peak fleets ({} vs {}), but FF pays {}x\nthe usage — the classical objective cannot see the difference (§2).",
        ff.2,
        cbdt.2,
        ff.1 / cbdt.1
    );
}
