//! Minimal table/CSV output for the experiment binaries.
//!
//! Every `exp_*` binary prints a human-readable aligned table to stdout
//! followed by a machine-readable CSV block fenced by `--- csv ---` /
//! `--- end csv ---`, so results can be both eyeballed and parsed.

/// A simple column-aligned table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                line.push_str(&cells[i]);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the CSV block.
    pub fn csv(&self) -> String {
        let mut out = String::from("--- csv ---\n");
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out.push_str("--- end csv ---\n");
        out
    }

    /// Prints both renderings to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
        print!("{}", self.csv());
    }
}

/// Formats a float with 3 decimals (experiment-standard precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new(&["algo", "ratio"]);
        t.row(&["ff".into(), "1.25".into()]);
        t.row(&["dual-coloring".into(), "2".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("algo"));
        assert!(lines[2].starts_with("ff"));
        let csv = t.csv();
        assert!(csv.contains("algo,ratio\n"));
        assert!(csv.contains("dual-coloring,2\n"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
