//! Algorithm registry: build packers by name so experiments share one
//! roster and CLI flags stay stable.

use dbp_algos::offline::{
    ArrivalFirstFit, DemandDescendingFirstFit, DualColoring, DurationAscendingFirstFit,
    DurationDescendingFirstFit, LargeItemRule,
};
use dbp_algos::online::{
    AnyFit, ClassifyByDepartureTime, ClassifyByDuration, CombinedClassify, DotProductFit,
    HybridFirstFit, MaxNormFit, VecAnyFit, VecClassifyByDepartureTime, VecClassifyByDuration,
};
use dbp_core::{OfflinePacker, OnlinePacker, VecOnlinePacker};

/// Instance-derived parameters a packer constructor may need.
#[derive(Clone, Copy, Debug)]
pub struct AlgoParams {
    /// Minimum item duration `Δ` in ticks.
    pub delta: i64,
    /// Max/min duration ratio `μ`.
    pub mu: f64,
}

impl AlgoParams {
    /// Extracts `Δ` and `μ` from an instance (defaults for empty ones).
    pub fn from_instance(inst: &dbp_core::Instance) -> Self {
        AlgoParams {
            delta: inst.min_duration().unwrap_or(1),
            mu: inst.mu().unwrap_or(1.0),
        }
    }

    /// Extracts `Δ` and `μ` from a vector instance — the classification
    /// strategies depend only on time structure, so the derivation is
    /// dimension-blind.
    pub fn from_vec_instance(inst: &dbp_core::VecInstance) -> Self {
        AlgoParams {
            delta: inst.min_duration().unwrap_or(1),
            mu: inst.mu().unwrap_or(1.0),
        }
    }
}

/// The canonical online roster used by the E2/E5/E9 sweeps.
pub const ONLINE_ALGOS: &[&str] = &[
    "first-fit",
    "best-fit",
    "worst-fit",
    "next-fit",
    "hybrid-ff",
    "cbdt",
    "cbd",
    "combined",
];

/// The canonical offline roster used by the E1 sweep. The last two are
/// sort-order ablations of DDFF with no proven bounds.
pub const OFFLINE_ALGOS: &[&str] = &[
    "ddff",
    "dual-coloring",
    "dual-coloring-1pb",
    "arrival-ff",
    "duration-ascending-ff",
    "demand-descending-ff",
];

/// Builds an online packer by roster name. Classification strategies use
/// their Theorem 4/5 optimal parameters derived from `params`.
///
/// # Panics
/// On an unknown name.
pub fn online_packer(name: &str, params: AlgoParams) -> Box<dyn OnlinePacker + Send> {
    match name {
        "first-fit" => Box::new(AnyFit::first_fit()),
        "best-fit" => Box::new(AnyFit::best_fit()),
        "worst-fit" => Box::new(AnyFit::worst_fit()),
        "next-fit" => Box::new(AnyFit::next_fit()),
        "hybrid-ff" => Box::new(HybridFirstFit::default()),
        "cbdt" => Box::new(ClassifyByDepartureTime::with_known_durations(
            params.delta,
            params.mu,
        )),
        "cbd" => Box::new(ClassifyByDuration::with_known_durations(
            params.delta,
            params.mu,
        )),
        "combined" => Box::new(CombinedClassify::with_known_durations(
            params.delta,
            params.mu,
        )),
        other => panic!("unknown online algorithm {other:?}"),
    }
}

/// Builds the linear-scan variant of a roster packer: the same algorithm
/// with the same parameters, but answering every placement by the seed's
/// O(category) open-bin walk instead of the indexed fit queries. The two
/// variants are decision-identical by construction; this factory exists
/// so the audit harness (and the indexed-vs-linear CI smoke) can prove
/// it on every run rather than trust it.
///
/// # Panics
/// On an unknown name.
pub fn online_packer_linear(name: &str, params: AlgoParams) -> Box<dyn OnlinePacker + Send> {
    match name {
        "first-fit" => Box::new(AnyFit::first_fit().with_linear_scan()),
        "best-fit" => Box::new(AnyFit::best_fit().with_linear_scan()),
        "worst-fit" => Box::new(AnyFit::worst_fit().with_linear_scan()),
        "next-fit" => Box::new(AnyFit::next_fit().with_linear_scan()),
        "hybrid-ff" => Box::new(HybridFirstFit::default().with_linear_scan()),
        "cbdt" => Box::new(
            ClassifyByDepartureTime::with_known_durations(params.delta, params.mu)
                .with_linear_scan(),
        ),
        "cbd" => Box::new(
            ClassifyByDuration::with_known_durations(params.delta, params.mu).with_linear_scan(),
        ),
        "combined" => Box::new(
            CombinedClassify::with_known_durations(params.delta, params.mu).with_linear_scan(),
        ),
        other => panic!("unknown online algorithm {other:?}"),
    }
}

/// The canonical vector online roster: the Any-Fit family and both
/// classification strategies under all-axes feasibility, plus the two
/// vector-native heuristics (Murhekar et al. 2023).
pub const VECTOR_ALGOS: &[&str] = &[
    "first-fit",
    "best-fit",
    "worst-fit",
    "next-fit",
    "cbdt",
    "cbd",
    "dot-product",
    "max-norm",
];

/// Builds a vector online packer by roster name. Classification
/// strategies use their Theorem 4/5 optimal parameters derived from
/// `params`, exactly like [`online_packer`].
///
/// # Panics
/// On an unknown name.
pub fn vector_packer(name: &str, params: AlgoParams) -> Box<dyn VecOnlinePacker + Send> {
    match name {
        "first-fit" => Box::new(VecAnyFit::first_fit()),
        "best-fit" => Box::new(VecAnyFit::best_fit()),
        "worst-fit" => Box::new(VecAnyFit::worst_fit()),
        "next-fit" => Box::new(VecAnyFit::next_fit()),
        "cbdt" => Box::new(VecClassifyByDepartureTime::with_known_durations(
            params.delta,
            params.mu,
        )),
        "cbd" => Box::new(VecClassifyByDuration::with_known_durations(
            params.delta,
            params.mu,
        )),
        "dot-product" => Box::new(DotProductFit::new()),
        "max-norm" => Box::new(MaxNormFit::new()),
        other => panic!("unknown vector algorithm {other:?}"),
    }
}

/// Builds the linear-scan foil of a vector roster packer (decision-
/// identical by construction; see [`online_packer_linear`]). For the
/// vector-native heuristics the scan is linear in both modes, so the
/// foil is the packer itself.
///
/// # Panics
/// On an unknown name.
pub fn vector_packer_linear(name: &str, params: AlgoParams) -> Box<dyn VecOnlinePacker + Send> {
    match name {
        "first-fit" => Box::new(VecAnyFit::first_fit().with_linear_scan()),
        "best-fit" => Box::new(VecAnyFit::best_fit().with_linear_scan()),
        "worst-fit" => Box::new(VecAnyFit::worst_fit().with_linear_scan()),
        "next-fit" => Box::new(VecAnyFit::next_fit().with_linear_scan()),
        "cbdt" => Box::new(
            VecClassifyByDepartureTime::with_known_durations(params.delta, params.mu)
                .with_linear_scan(),
        ),
        "cbd" => Box::new(
            VecClassifyByDuration::with_known_durations(params.delta, params.mu).with_linear_scan(),
        ),
        "dot-product" => Box::new(DotProductFit::new().with_linear_scan()),
        "max-norm" => Box::new(MaxNormFit::new().with_linear_scan()),
        other => panic!("unknown vector algorithm {other:?}"),
    }
}

/// Builds an offline packer by roster name.
///
/// # Panics
/// On an unknown name.
pub fn offline_packer(name: &str) -> Box<dyn OfflinePacker + Send> {
    match name {
        "ddff" => Box::new(DurationDescendingFirstFit::new()),
        "dual-coloring" => Box::new(DualColoring::new()),
        "dual-coloring-1pb" => Box::new(DualColoring::with_large_rule(LargeItemRule::OnePerBin)),
        "arrival-ff" => Box::new(ArrivalFirstFit::new()),
        "duration-ascending-ff" => Box::new(DurationAscendingFirstFit),
        "demand-descending-ff" => Box::new(DemandDescendingFirstFit),
        other => panic!("unknown offline algorithm {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_core::Instance;

    #[test]
    fn roster_constructs() {
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 2, 40)]);
        let p = AlgoParams::from_instance(&inst);
        for name in ONLINE_ALGOS {
            let packer = online_packer(name, p);
            assert!(!packer.name().is_empty());
            // The linear foil reports the same display name: it is the
            // same algorithm, only the scan machinery differs.
            let linear = online_packer_linear(name, p);
            assert_eq!(linear.name(), packer.name());
        }
        for name in OFFLINE_ALGOS {
            let packer = offline_packer(name);
            assert!(!packer.name().is_empty());
        }
        for name in VECTOR_ALGOS {
            let packer = vector_packer(name, p);
            assert!(!packer.name().is_empty());
            let linear = vector_packer_linear(name, p);
            assert_eq!(linear.name(), packer.name());
        }
    }

    #[test]
    #[should_panic(expected = "unknown online algorithm")]
    fn unknown_name_panics() {
        let _ = online_packer("nope", AlgoParams { delta: 1, mu: 1.0 });
    }
}
