//! A deliberately naive streaming engine: the performance foil.
//!
//! This replicates the *pre-indexed* engine's bookkeeping, kept here as
//! an executable record of what the indexed engine in `dbp-core` was
//! measured against (see `docs/performance.md`):
//!
//! * open bins live in a plain `Vec` — closing a bin is a linear scan
//!   plus `Vec::remove` (an O(fleet) shift),
//! * bin records are found by scanning the full history (`O(bins ever
//!   opened)` per touch),
//! * the item→bin `placement` map is never pruned and the duplicate-id
//!   `seen` set keeps every id, so memory grows with stream *length*
//!   rather than concurrent load.
//!
//! It packs with the Next Fit rule (newest open bin or a new one), whose
//! decision itself is O(1) — so every cost this engine pays beyond the
//! indexed one is pure bookkeeping overhead, which is exactly what the
//! differential perf test wants to isolate. Results are bit-identical to
//! `OnlineEngine` driving `AnyFit::next_fit()`; the differential tests
//! assert that.

use dbp_core::{Instance, Item, ItemId, Size, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One bin's lifetime as the reference engine records it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefBin {
    /// Opening time (arrival of the first item).
    pub opened_at: Time,
    /// Closing time (departure of the last item).
    pub closed_at: Time,
    /// Every item ever placed in the bin, in placement order.
    pub items: Vec<ItemId>,
}

/// The reference engine's run outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefRun {
    /// Total usage time in ticks (sum of bin lifetimes).
    pub usage: u128,
    /// Per-bin records in opening order.
    pub bins: Vec<RefBin>,
}

struct OpenSlot {
    record: usize,
    level: Size,
    active: Vec<ItemId>,
}

/// The seed's record access: scan the full bin history for the record,
/// even though the index alone would do.
fn record_mut(bins: &mut [RefBin], record: usize) -> &mut RefBin {
    bins.iter_mut()
        .enumerate()
        .find(|(i, _)| *i == record)
        .map(|(_, r)| r)
        .expect("record exists")
}

/// Runs Next Fit over the instance with seed-style linear bookkeeping.
///
/// # Panics
/// On duplicate item ids, out-of-order arrivals, or an item that cannot
/// fit an empty bin — the same inputs the real engine rejects as errors.
pub fn reference_next_fit(inst: &Instance) -> RefRun {
    let mut bins: Vec<RefBin> = Vec::new();
    let mut open: Vec<OpenSlot> = Vec::new();
    let mut departures: BinaryHeap<Reverse<(Time, ItemId)>> = BinaryHeap::new();
    // Grows with stream length, never pruned — the seed behavior.
    let mut placement: HashMap<ItemId, usize> = HashMap::new();
    // Sizes keyed by id: `inst.items()` is arrival-sorted, so indexing it
    // by raw id reads the wrong item whenever arrivals are not in id
    // order (caught by dbp-audit as a Size underflow at departure).
    let mut sizes: HashMap<ItemId, Size> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut last_arrival: Option<Time> = None;

    let close_until = |t: Time,
                       open: &mut Vec<OpenSlot>,
                       bins: &mut Vec<RefBin>,
                       departures: &mut BinaryHeap<Reverse<(Time, ItemId)>>,
                       placement: &HashMap<ItemId, usize>,
                       sizes: &HashMap<ItemId, Size>| {
        while let Some(&Reverse((dt, id))) = departures.peek() {
            if dt > t {
                break;
            }
            departures.pop();
            let record = placement[&id];
            // Linear scan for the bin, linear shift to drop it: the
            // seed's departure path.
            let pos = open
                .iter()
                .position(|s| s.record == record)
                .expect("departing item's bin is open");
            let slot = &mut open[pos];
            let at = slot.active.iter().position(|a| *a == id).unwrap();
            slot.active.swap_remove(at);
            slot.level -= sizes[&id];
            if slot.active.is_empty() {
                open.remove(pos);
                record_mut(bins, record).closed_at = dt;
            }
        }
    };

    for item in inst.items() {
        let now = item.arrival();
        assert!(
            last_arrival.is_none_or(|l| now >= l),
            "arrivals must be non-decreasing"
        );
        last_arrival = Some(now);
        assert!(seen.insert(item.id().0), "duplicate item id {}", item.id());
        close_until(
            now,
            &mut open,
            &mut bins,
            &mut departures,
            &placement,
            &sizes,
        );

        // Next Fit: the newest open bin or a fresh one.
        let record = match open.last_mut() {
            Some(slot) if slot.level + item.size() <= Size::CAPACITY => {
                slot.level += item.size();
                slot.active.push(item.id());
                slot.record
            }
            _ => {
                assert!(item.size() <= Size::CAPACITY, "item exceeds capacity");
                let record = bins.len();
                bins.push(RefBin {
                    opened_at: now,
                    closed_at: now,
                    items: Vec::new(),
                });
                open.push(OpenSlot {
                    record,
                    level: item.size(),
                    active: vec![item.id()],
                });
                record
            }
        };
        record_mut(&mut bins, record).items.push(item.id());
        placement.insert(item.id(), record);
        sizes.insert(item.id(), item.size());
        departures.push(Reverse((item.departure(), item.id())));
    }
    close_until(
        Time::MAX,
        &mut open,
        &mut bins,
        &mut departures,
        &placement,
        &sizes,
    );
    assert!(open.is_empty());

    let usage = bins
        .iter()
        .map(|b| (b.closed_at - b.opened_at) as u128)
        .sum();
    RefRun { usage, bins }
}

/// Builds the all-overlapping workload the perf comparison uses: `n`
/// items of size 0.45, arriving one tick apart, all departing after the
/// last arrival — Next Fit pairs them two per bin, so roughly `n / 2`
/// bins are open simultaneously at the peak.
pub fn wide_fleet_instance(n: u32) -> Instance {
    let items: Vec<Item> = (0..n)
        .map(|k| {
            let t = k as Time;
            Item::new(k, Size::from_f64(0.45), t, n as Time + t + 1)
        })
        .collect();
    Instance::from_items(items).expect("valid workload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_hand_computed_next_fit() {
        // Two halves share bin 0; 0.9 opens bin 1; the next 0.5 cannot
        // join the newest bin (level 0.9), so it opens bin 2 even though
        // bin 0 has room — that's Next Fit.
        let inst = Instance::from_triples(&[(0.5, 0, 10), (0.5, 1, 8), (0.9, 2, 6), (0.5, 3, 12)]);
        let run = reference_next_fit(&inst);
        assert_eq!(run.bins.len(), 3);
        assert_eq!(run.usage, 10 + 4 + 9);
        assert_eq!(run.bins[0].items, vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn wide_fleet_peaks_at_half_n() {
        let inst = wide_fleet_instance(100);
        let run = reference_next_fit(&inst);
        assert_eq!(run.bins.len(), 50);
    }

    #[test]
    fn departures_use_the_departing_items_own_size() {
        // Ids deliberately out of arrival order: item 1 arrives (and
        // departs) first. Indexing `inst.items()` (arrival-sorted) by raw
        // id would charge item 1's departure with item 0's 0.9 size and
        // underflow the 0.1 level. Found by dbp-audit's differential
        // fuzzer.
        let items = vec![
            Item::new(0, Size::from_f64(0.9), 10, 20),
            Item::new(1, Size::from_f64(0.1), 0, 5),
        ];
        let inst = Instance::from_items(items).unwrap();
        let run = reference_next_fit(&inst);
        assert_eq!(run.bins.len(), 2);
        assert_eq!(run.usage, 5 + (20 - 10) as u128);
    }
}
