//! Measurement helpers: run a packer, validate the packing, compute
//! ratios and run counters.

use dbp_core::accounting::lower_bounds;
use dbp_core::online::ClairvoyanceMode;
use dbp_core::{DbpError, Instance, OfflinePacker, OnlineEngine, OnlinePacker};
use dbp_obs::counters::{Counters, CountersSnapshot};

/// One validated run's headline numbers.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Algorithm display name.
    pub algo: String,
    /// Total usage in ticks.
    pub usage: u128,
    /// Bins/servers used.
    pub bins: usize,
    /// The LB3 lower bound (Proposition 3) in ticks.
    pub lb3: u128,
    /// `usage / lb3` (1.0 when both are zero). Upper-bounds the true
    /// competitive ratio since `LB3 ≤ OPT_total`.
    pub ratio_vs_lb3: f64,
    /// `usage / OPT_total` when the exact adversary was computed.
    pub ratio_vs_opt: Option<f64>,
    /// Run counters (placements, bins, scan depth, decision latency).
    /// Zeroed for offline packers, whose decisions happen outside the
    /// engine loop.
    pub counters: CountersSnapshot,
}

fn ratio(usage: u128, denom: u128) -> f64 {
    if denom == 0 {
        1.0
    } else {
        usage as f64 / denom as f64
    }
}

/// Runs an online packer under the given clairvoyance mode, validates the
/// result, and computes ratios. `exact_opt` controls whether the exact
/// repacking adversary `OPT_total` is also computed (exponential per load
/// segment — keep instances small).
pub fn measure_online(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    exact_opt: bool,
) -> Result<Measurement, DbpError> {
    let mut counters = Counters::new();
    let run = OnlineEngine::new(mode).run_observed(inst, packer, &mut counters)?;
    run.packing.validate(inst)?;
    let lb = lower_bounds(inst);
    let opt = exact_opt.then(|| dbp_algos::exact::opt_total(inst));
    Ok(Measurement {
        algo: packer.name(),
        usage: run.usage,
        bins: run.bins_opened(),
        lb3: lb.lb3,
        ratio_vs_lb3: ratio(run.usage, lb.lb3),
        ratio_vs_opt: opt.map(|o| ratio(run.usage, o)),
        counters: counters.snapshot(),
    })
}

/// Runs an offline packer, validates, computes ratios (see
/// [`measure_online`] for `exact_opt`).
pub fn measure_offline(
    inst: &Instance,
    packer: &dyn OfflinePacker,
    exact_opt: bool,
) -> Result<Measurement, DbpError> {
    let packing = packer.pack(inst);
    packing.validate(inst)?;
    let usage = packing.total_usage(inst);
    let lb = lower_bounds(inst);
    let opt = exact_opt.then(|| dbp_algos::exact::opt_total(inst));
    Ok(Measurement {
        algo: packer.name().to_string(),
        usage,
        bins: packing.num_bins(),
        lb3: lb.lb3,
        ratio_vs_lb3: ratio(usage, lb.lb3),
        ratio_vs_opt: opt.map(|o| ratio(usage, o)),
        counters: CountersSnapshot::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::offline::DurationDescendingFirstFit;
    use dbp_algos::online::AnyFit;

    #[test]
    fn online_measurement_sane() {
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.3, 5, 9)]);
        let m = measure_online(
            &inst,
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::Clairvoyant,
            true,
        )
        .unwrap();
        assert!(m.ratio_vs_lb3 >= 1.0);
        let vs_opt = m.ratio_vs_opt.unwrap();
        assert!(vs_opt >= 1.0 && vs_opt <= m.ratio_vs_lb3 + 1e-12);
        assert_eq!(m.counters.items_packed, 3);
        assert_eq!(m.counters.bins_opened as usize, m.bins);
    }

    #[test]
    fn offline_measurement_sane() {
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.3, 5, 9)]);
        let m = measure_offline(&inst, &DurationDescendingFirstFit::new(), true).unwrap();
        assert!(m.ratio_vs_lb3 >= 1.0);
        assert!(m.ratio_vs_opt.unwrap() <= 5.0, "Theorem 1");
    }

    /// Regression for the `ratio_vs_lb3` doc/code mismatch: the field is
    /// defined as `usage / lb3` and must divide by `lb.lb3` specifically,
    /// not whichever bound happens to be `lb.best()`.
    #[test]
    fn ratio_vs_lb3_divides_by_lb3() {
        let inst = Instance::from_triples(&[
            (0.6, 0, 10),
            (0.6, 2, 12),
            (0.3, 5, 9),
            (0.8, 20, 45),
            (0.5, 21, 33),
        ]);
        let lb = lower_bounds(&inst);
        let m = measure_online(
            &inst,
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::Clairvoyant,
            false,
        )
        .unwrap();
        assert_eq!(m.lb3, lb.lb3);
        assert!((m.ratio_vs_lb3 - m.usage as f64 / lb.lb3 as f64).abs() < 1e-12);
    }

    /// An infeasible run is now an `Err`, not a panic.
    #[test]
    fn engine_errors_propagate() {
        use dbp_core::online::{Decision, ItemView, OpenBins};
        struct Overfill;
        impl OnlinePacker for Overfill {
            fn name(&self) -> String {
                "overfill".into()
            }
            fn place(&mut self, _: &ItemView, open: &OpenBins) -> Decision {
                open.first()
                    .map(|b| Decision::Existing(b.id()))
                    .unwrap_or(Decision::NEW)
            }
        }
        let inst = Instance::from_triples(&[(0.8, 0, 10), (0.8, 1, 9)]);
        let err =
            measure_online(&inst, &mut Overfill, ClairvoyanceMode::Clairvoyant, false).unwrap_err();
        assert!(matches!(err, DbpError::BadDecision { .. }));
    }
}
