//! Measurement helpers: run a packer, validate the packing, compute
//! ratios.

use dbp_core::accounting::lower_bounds;
use dbp_core::online::ClairvoyanceMode;
use dbp_core::{Instance, OfflinePacker, OnlineEngine, OnlinePacker};

/// One validated run's headline numbers.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Algorithm display name.
    pub algo: String,
    /// Total usage in ticks.
    pub usage: u128,
    /// Bins/servers used.
    pub bins: usize,
    /// The LB3 lower bound (Proposition 3) in ticks.
    pub lb3: u128,
    /// `usage / lb3` (1.0 when both are zero). Upper-bounds the true
    /// competitive ratio since `LB3 ≤ OPT_total`.
    pub ratio_vs_lb3: f64,
    /// `usage / OPT_total` when the exact adversary was computed.
    pub ratio_vs_opt: Option<f64>,
}

fn ratio(usage: u128, denom: u128) -> f64 {
    if denom == 0 {
        1.0
    } else {
        usage as f64 / denom as f64
    }
}

/// Runs an online packer under the given clairvoyance mode, validates the
/// result, and computes ratios. `exact_opt` controls whether the exact
/// repacking adversary `OPT_total` is also computed (exponential per load
/// segment — keep instances small).
pub fn measure_online(
    inst: &Instance,
    packer: &mut dyn OnlinePacker,
    mode: ClairvoyanceMode,
    exact_opt: bool,
) -> Measurement {
    let run = OnlineEngine::new(mode)
        .run(inst, packer)
        .expect("engine run");
    run.packing.validate(inst).expect("valid packing");
    let lb = lower_bounds(inst);
    let opt = exact_opt.then(|| dbp_algos::exact::opt_total(inst));
    Measurement {
        algo: packer.name(),
        usage: run.usage,
        bins: run.bins_opened(),
        lb3: lb.lb3,
        ratio_vs_lb3: ratio(run.usage, lb.best()),
        ratio_vs_opt: opt.map(|o| ratio(run.usage, o)),
    }
}

/// Runs an offline packer, validates, computes ratios (see
/// [`measure_online`] for `exact_opt`).
pub fn measure_offline(
    inst: &Instance,
    packer: &dyn OfflinePacker,
    exact_opt: bool,
) -> Measurement {
    let packing = packer.pack(inst);
    packing.validate(inst).expect("valid packing");
    let usage = packing.total_usage(inst);
    let lb = lower_bounds(inst);
    let opt = exact_opt.then(|| dbp_algos::exact::opt_total(inst));
    Measurement {
        algo: packer.name().to_string(),
        usage,
        bins: packing.num_bins(),
        lb3: lb.lb3,
        ratio_vs_lb3: ratio(usage, lb.best()),
        ratio_vs_opt: opt.map(|o| ratio(usage, o)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_algos::offline::DurationDescendingFirstFit;
    use dbp_algos::online::AnyFit;

    #[test]
    fn online_measurement_sane() {
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.3, 5, 9)]);
        let m = measure_online(
            &inst,
            &mut AnyFit::first_fit(),
            ClairvoyanceMode::Clairvoyant,
            true,
        );
        assert!(m.ratio_vs_lb3 >= 1.0);
        let vs_opt = m.ratio_vs_opt.unwrap();
        assert!(vs_opt >= 1.0 && vs_opt <= m.ratio_vs_lb3 + 1e-12);
    }

    #[test]
    fn offline_measurement_sane() {
        let inst = Instance::from_triples(&[(0.6, 0, 10), (0.6, 2, 12), (0.3, 5, 9)]);
        let m = measure_offline(&inst, &DurationDescendingFirstFit::new(), true);
        assert!(m.ratio_vs_lb3 >= 1.0);
        assert!(m.ratio_vs_opt.unwrap() <= 5.0, "Theorem 1");
    }
}
