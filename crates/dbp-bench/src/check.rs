//! The perf-regression gate: compare a fresh benchmark run against a
//! checked-in `BENCH_*.json` baseline, cell by cell.
//!
//! `dbp bench --check BENCH_shard.json --tolerance 20` re-runs every
//! `(algo, shards)` cell the baseline recorded — with the same workload
//! recipe, derived from the baseline's `mode` — and flags any cell whose
//! fresh throughput fell more than the tolerance below the recorded
//! `items_per_sec`. Three baseline schemas are understood:
//!
//! | schema | cell key | fresh run |
//! |---|---|---|
//! | `dbp-bench/engine-v1` | `algo` | plain [`StreamingSession`] |
//! | `dbp-bench/shard-v1` | `algo/k{K}` | [`ShardedSession`] with the recorded worker count |
//! | `dbp-bench/telemetry-v1` | `algo/{off,sampled}` | session without / with a [`TelemetryRecorder`] |
//! | `dbp-bench/vector-v1` | `algo` | [`VecStreamingSession`] over the correlated vector workload |
//!
//! Wall-clock throughput is inherently noisy and machine-dependent, so
//! the gate records both hosts' parallelism, compares *ratios* rather
//! than absolute times, and defaults to a generous tolerance; a baseline
//! produced on different hardware is still useful for catching
//! order-of-magnitude regressions, and `host_parallelism` in the report
//! says when to distrust a tight margin. Baselines recorded with
//! `degraded_parallelism: true` (multi-worker cells timed on a host with
//! fewer cores than workers) are not trustworthy for their multi-worker
//! cells at all — those cells are skipped with a warning instead of
//! gated, while their single-worker cells still gate normally.
//! `--inject <pct>` synthetically
//! slows the fresh measurements to prove the gate trips (the CI smoke
//! job runs the gate twice: once expecting exit 0, once with an injected
//! regression expecting exit 5).

use crate::registry::{
    online_packer, online_packer_linear, vector_packer, vector_packer_linear, AlgoParams,
};
use dbp_core::stream::StreamingSession;
use dbp_core::{ClairvoyanceMode, Instance, VecInstance, VecStreamingSession};
use dbp_obs::json::{self, Json};
use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};
use dbp_telemetry::TelemetryRecorder;
use dbp_workloads::random::{DurationDist, PoissonWorkload};
use dbp_workloads::vector::{CorrelatedVectorWorkload, VectorWorkload};
use dbp_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

/// Every benchmark binary streams this seed.
const SEED: u64 = 1;

/// One baseline measurement to reproduce.
#[derive(Clone, Debug)]
pub struct BaselineCell {
    /// Algorithm name from the roster.
    pub algo: String,
    /// Shard count (1 for unsharded schemas).
    pub shards: usize,
    /// Worker threads the baseline used (1 for unsharded schemas).
    pub workers: usize,
    /// Telemetry variant for `telemetry-v1` cells (`"off"`/`"sampled"`).
    pub telemetry: Option<String>,
    /// Workload variant the cell streamed (`None`/`"default"` for the
    /// schema's standard recipe, `"deep"` for the 1000+-open-bin
    /// deep-fleet cells the engine benchmark records).
    pub workload: Option<String>,
    /// Scan machinery the cell used (`None`/`"indexed"` for the fit
    /// index, `"linear"` for the open-bin-walk foil cells).
    pub scan: Option<String>,
    /// Recorded throughput.
    pub items_per_sec: f64,
}

impl BaselineCell {
    /// The display key the gate reports the cell under.
    pub fn label(&self) -> String {
        let base = match (&self.telemetry, self.shards) {
            (Some(t), _) => format!("{}/{t}", self.algo),
            (None, 1) => self.algo.clone(),
            (None, k) => format!("{}/k{k}", self.algo),
        };
        let base = match self.workload.as_deref() {
            Some(w) if w != "default" => format!("{base}@{w}"),
            _ => base,
        };
        match self.scan.as_deref() {
            Some(s) if s != "indexed" => format!("{base}/{s}"),
            _ => base,
        }
    }

    /// The workload recipe key this cell must be re-measured under.
    fn workload_key(&self) -> &str {
        self.workload.as_deref().unwrap_or("default")
    }

    /// Whether the cell must be re-measured with the linear-scan foil.
    fn linear_scan(&self) -> bool {
        self.scan.as_deref() == Some("linear")
    }
}

/// A parsed `BENCH_*.json` baseline.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Schema tag, e.g. `dbp-bench/shard-v1`.
    pub schema: String,
    /// `"full"` (~1M items) or `"short"` (~100k, the CI smoke size).
    pub mode: String,
    /// `host_parallelism` / `parallel_workers` the baseline recorded.
    pub host_parallelism: usize,
    /// Whether the recording host had fewer cores than the widest cell's
    /// worker count (the bench binaries tag such runs): multi-worker
    /// timings in the file are time-sliced, not parallel, and must not
    /// be used as regression baselines.
    pub degraded_parallelism: bool,
    /// The measurements, in file order.
    pub cells: Vec<BaselineCell>,
}

impl Baseline {
    /// Whether a cell's recorded timing is untrustworthy (see
    /// [`Baseline::degraded_parallelism`]): in a degraded file, every
    /// multi-worker cell was time-sliced on too few cores.
    pub fn cell_degraded(&self, cell: &BaselineCell) -> bool {
        self.degraded_parallelism && cell.workers > 1
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

/// Parses a benchmark baseline, accepting any of the three schemas.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let root = json::parse(text)?;
    let schema = field(&root, "schema")?
        .as_str()
        .ok_or("schema is not a string")?
        .to_string();
    if !matches!(
        schema.as_str(),
        "dbp-bench/engine-v1"
            | "dbp-bench/shard-v1"
            | "dbp-bench/telemetry-v1"
            | "dbp-bench/vector-v1"
    ) {
        return Err(format!("unsupported baseline schema {schema:?}"));
    }
    let mode = field(&root, "mode")?
        .as_str()
        .ok_or("mode is not a string")?
        .to_string();
    let host_parallelism = root
        .get("host_parallelism")
        .or_else(|| root.get("parallel_workers"))
        .and_then(Json::as_u64)
        .unwrap_or(1) as usize;
    let degraded_parallelism = matches!(root.get("degraded_parallelism"), Some(Json::Bool(true)));
    let mut cells = Vec::new();
    for cell in field(&root, "results")?
        .as_array()
        .ok_or("results is not an array")?
    {
        cells.push(BaselineCell {
            algo: field(cell, "algo")?
                .as_str()
                .ok_or("algo is not a string")?
                .to_string(),
            shards: cell.get("shards").and_then(Json::as_u64).unwrap_or(1) as usize,
            workers: cell.get("workers").and_then(Json::as_u64).unwrap_or(1) as usize,
            telemetry: cell
                .get("telemetry")
                .and_then(Json::as_str)
                .map(str::to_string),
            workload: cell
                .get("workload")
                .and_then(Json::as_str)
                .map(str::to_string),
            scan: cell.get("scan").and_then(Json::as_str).map(str::to_string),
            items_per_sec: field(cell, "items_per_sec")?
                .as_f64()
                .ok_or("items_per_sec is not a number")?,
        });
    }
    if cells.is_empty() {
        return Err("baseline has no result cells".into());
    }
    Ok(Baseline {
        schema,
        mode,
        host_parallelism,
        degraded_parallelism,
        cells,
    })
}

/// The benchmark horizon for a baseline mode (the same constants the
/// bench binaries bake in).
fn horizon_for(mode: &str) -> Result<i64, String> {
    match mode {
        "full" => Ok(260_000),
        "short" => Ok(26_000),
        other => Err(format!("unknown baseline mode {other:?}")),
    }
}

/// Regenerates the instance a baseline cell streamed: every schema uses
/// Poisson(rate = 4) at seed 1; the shard benchmark's default recipe
/// deepens the fleet with long exponential durations, and `"deep"` cells
/// (the engine benchmark's 1000+-open-bin rows) use the even longer
/// mean-1000 exponential durations their bench binary bakes in.
pub fn baseline_instance(schema: &str, mode: &str, workload: &str) -> Result<Instance, String> {
    let horizon = horizon_for(mode)?;
    let base = PoissonWorkload::new(4.0, horizon);
    let workload = match (schema, workload) {
        ("dbp-bench/shard-v1", "default") => base.with_durations(DurationDist::Exponential {
            mean: 500.0,
            min: 1,
            max: 5_000,
        }),
        (_, "default") => base,
        (_, "deep") => base.with_durations(DurationDist::Exponential {
            mean: 1000.0,
            min: 1,
            max: 10_000,
        }),
        (_, other) => return Err(format!("unknown cell workload {other:?}")),
    };
    // Disambiguated: the blanket `VectorWorkload` impl gives every
    // scalar workload a second `generate_seeded`.
    Ok(Workload::generate_seeded(&workload, SEED))
}

/// Item count for a `vector-v1` baseline mode. Unlike the Poisson
/// schemas (which target an expected count through a horizon), the
/// correlated vector workload draws an exact item count.
fn vector_items_for(mode: &str) -> Result<usize, String> {
    match mode {
        "full" => Ok(1_050_000),
        "short" => Ok(105_000),
        other => Err(format!("unknown baseline mode {other:?}")),
    }
}

/// Regenerates the vector instance a `vector-v1` baseline cell
/// streamed: 3-axis correlated demands (`ρ = 0.6`) at seed 1. The
/// `"deep"` variant stretches arrivals to one per tick and holds items
/// with mean-1000 exponential durations, sustaining a fleet of hundreds
/// of open bins — the cell that catches vector scan-depth cliffs.
pub fn vector_baseline_instance(mode: &str, workload: &str) -> Result<VecInstance, String> {
    let n = vector_items_for(mode)?;
    let means = [0.3, 0.2, 0.45];
    let base = CorrelatedVectorWorkload::new(n, &means, 0.5, 0.6)
        .map_err(|e| format!("vector baseline workload: {e}"))?;
    let w = match workload {
        "default" => base,
        "deep" => base
            .with_durations(DurationDist::Exponential {
                mean: 1000.0,
                min: 1,
                max: 10_000,
            })
            .with_arrival_span(n as i64),
        other => return Err(format!("unknown cell workload {other:?}")),
    };
    Ok(VectorWorkload::generate_seeded(&w, SEED))
}

/// One gate comparison.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Cell key (see [`BaselineCell::label`]).
    pub label: String,
    /// Recorded throughput.
    pub baseline_ips: f64,
    /// Fresh throughput (after any injected slowdown).
    pub fresh_ips: f64,
    /// `(fresh - baseline) / baseline`, in percent; negative is slower.
    pub delta_pct: f64,
    /// Whether the cell fell below the tolerance.
    pub regressed: bool,
    /// Whether the cell was skipped (degraded baseline): not
    /// re-measured, never regressed, `fresh_ips`/`delta_pct` are zero.
    pub skipped: bool,
}

/// The gate's verdict over every baseline cell.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Baseline schema the gate compared against.
    pub schema: String,
    /// Baseline mode (`full`/`short`).
    pub mode: String,
    /// Allowed throughput drop, in percent.
    pub tolerance_pct: f64,
    /// Synthetic slowdown applied to fresh runs (0 = none).
    pub injected_pct: f64,
    /// Parallelism recorded in the baseline file.
    pub baseline_host_parallelism: usize,
    /// Parallelism of the machine running the gate — when it differs
    /// from the baseline's, treat tight margins as noise.
    pub host_parallelism: usize,
    /// Per-cell comparisons, in baseline order.
    pub rows: Vec<CheckRow>,
}

impl CheckReport {
    /// True when no cell regressed.
    pub fn ok(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed)
    }

    /// The regressed cells.
    pub fn regressions(&self) -> Vec<&CheckRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// The cells skipped because the baseline recorded them under
    /// degraded parallelism.
    pub fn skipped(&self) -> Vec<&CheckRow> {
        self.rows.iter().filter(|r| r.skipped).collect()
    }

    /// Serializes the comparison (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dbp-bench/check-v1\",\n");
        let _ = writeln!(out, "  \"baseline_schema\": \"{}\",", self.schema);
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(out, "  \"tolerance_pct\": {:.2},", self.tolerance_pct);
        let _ = writeln!(out, "  \"injected_pct\": {:.2},", self.injected_pct);
        let _ = writeln!(
            out,
            "  \"baseline_host_parallelism\": {},",
            self.baseline_host_parallelism
        );
        let _ = writeln!(out, "  \"host_parallelism\": {},", self.host_parallelism);
        let _ = writeln!(out, "  \"ok\": {},", self.ok());
        let _ = writeln!(out, "  \"skipped_cells\": {},", self.skipped().len());
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{ \"cell\": \"{}\", \"baseline_ips\": {:.0}, \"fresh_ips\": {:.0}, \
                 \"delta_pct\": {:.2}, \"regressed\": {}, \"skipped\": {} }}{}",
                json::escape(&r.label),
                r.baseline_ips,
                r.fresh_ips,
                r.delta_pct,
                r.regressed,
                r.skipped,
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Times one fresh run of a baseline cell and returns its items/sec,
/// best-of-3: the minimum elapsed time of three back-to-back runs.
/// Scheduler and frequency noise only ever adds time, and on shared
/// single-CPU runners individual cells swing by ±10–20% — enough to
/// trip the gate spuriously from a single sample.
fn run_cell(schema: &str, inst: &Instance, cell: &BaselineCell) -> Result<f64, String> {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        best = best.min(run_cell_once(schema, inst, cell)?);
    }
    Ok(inst.len() as f64 / best.max(f64::MIN_POSITIVE))
}

/// One timed run of a baseline cell; returns elapsed seconds.
fn run_cell_once(schema: &str, inst: &Instance, cell: &BaselineCell) -> Result<f64, String> {
    let params = AlgoParams::from_instance(inst);
    let err = |e: dbp_core::DbpError| format!("{}: {e}", cell.label());
    // Foil cells are re-measured with the same linear-scan packer
    // variant they recorded, so their (deliberately slow) baselines are
    // compared like-for-like.
    let make = |name: &str| {
        if cell.linear_scan() {
            online_packer_linear(name, params)
        } else {
            online_packer(name, params)
        }
    };
    let elapsed_s = match (schema, cell.telemetry.as_deref()) {
        ("dbp-bench/shard-v1", _) => {
            let cfg = ShardConfig {
                threads: Some(cell.workers.max(1)),
                ..ShardConfig::new(cell.shards.max(1), ShardRouter::hash())
            };
            let packers = (0..cell.shards.max(1)).map(|_| make(&cell.algo)).collect();
            let mut fleet =
                ShardedSession::new(ClairvoyanceMode::Clairvoyant, packers, cfg).map_err(err)?;
            let started = Instant::now();
            for item in inst.items() {
                fleet.arrive(item).map_err(err)?;
            }
            fleet.finish().map_err(err)?;
            started.elapsed().as_secs_f64()
        }
        (_, Some("sampled")) => {
            let mut packer = make(&cell.algo);
            let mut session = StreamingSession::with_observer(
                ClairvoyanceMode::Clairvoyant,
                packer.as_mut(),
                TelemetryRecorder::new(),
            );
            let started = Instant::now();
            for item in inst.items() {
                session.arrive(item).map_err(err)?;
            }
            session.finish().map_err(err)?;
            started.elapsed().as_secs_f64()
        }
        _ => {
            // Engine cells and telemetry-off cells: a bare session.
            let mut packer = make(&cell.algo);
            let mut session = StreamingSession::new(ClairvoyanceMode::Clairvoyant, packer.as_mut());
            let started = Instant::now();
            for item in inst.items() {
                session.arrive(item).map_err(err)?;
            }
            session.finish().map_err(err)?;
            started.elapsed().as_secs_f64()
        }
    };
    Ok(elapsed_s)
}

/// Times one fresh run of a `vector-v1` baseline cell, best-of-3 like
/// [`run_cell`].
fn run_vec_cell(inst: &VecInstance, cell: &BaselineCell) -> Result<f64, String> {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        best = best.min(run_vec_cell_once(inst, cell)?);
    }
    Ok(inst.len() as f64 / best.max(f64::MIN_POSITIVE))
}

fn run_vec_cell_once(inst: &VecInstance, cell: &BaselineCell) -> Result<f64, String> {
    let params = AlgoParams::from_vec_instance(inst);
    let err = |e: dbp_core::DbpError| format!("{}: {e}", cell.label());
    let mut packer = if cell.linear_scan() {
        vector_packer_linear(&cell.algo, params)
    } else {
        vector_packer(&cell.algo, params)
    };
    let mut session =
        VecStreamingSession::new(dbp_core::VecClairvoyance::Clairvoyant, packer.as_mut());
    let started = Instant::now();
    for item in inst.items() {
        session.arrive(item).map_err(err)?;
    }
    session.finish().map_err(err)?;
    Ok(started.elapsed().as_secs_f64())
}

/// Runs the gate: every baseline cell re-measured serially (one cell at
/// a time, for minimum timing noise) and compared at `tolerance_pct`.
/// `inject_pct > 0` synthetically slows every fresh measurement by that
/// percentage — the self-proof that the gate can trip.
pub fn run_check(
    baseline: &Baseline,
    tolerance_pct: f64,
    inject_pct: f64,
) -> Result<CheckReport, String> {
    if !(0.0..100.0).contains(&tolerance_pct) {
        return Err(format!("tolerance {tolerance_pct}% out of range [0, 100)"));
    }
    if !(0.0..100.0).contains(&inject_pct) {
        return Err(format!("inject {inject_pct}% out of range [0, 100)"));
    }
    // Cells may stream different workload recipes (`default` vs `deep`);
    // build each instance once and share it across its cells.
    let is_vector = baseline.schema == "dbp-bench/vector-v1";
    let mut instances: std::collections::HashMap<&str, Instance> = std::collections::HashMap::new();
    let mut vec_instances: std::collections::HashMap<&str, VecInstance> =
        std::collections::HashMap::new();
    let mut rows = Vec::new();
    for cell in &baseline.cells {
        if cell.items_per_sec <= 0.0 {
            return Err(format!(
                "{}: non-positive baseline throughput",
                cell.label()
            ));
        }
        if baseline.cell_degraded(cell) {
            // A multi-worker timing from a degraded recording is not a
            // baseline at all; skip it (the caller warns) rather than
            // gate against time-sliced numbers.
            rows.push(CheckRow {
                label: cell.label(),
                baseline_ips: cell.items_per_sec,
                fresh_ips: 0.0,
                delta_pct: 0.0,
                regressed: false,
                skipped: true,
            });
            continue;
        }
        let key = cell.workload_key();
        let fresh = if is_vector {
            if !vec_instances.contains_key(key) {
                let inst = vector_baseline_instance(&baseline.mode, key)?;
                vec_instances.insert(key, inst);
            }
            run_vec_cell(&vec_instances[key], cell)?
        } else {
            if !instances.contains_key(key) {
                let inst = baseline_instance(&baseline.schema, &baseline.mode, key)?;
                instances.insert(key, inst);
            }
            run_cell(&baseline.schema, &instances[key], cell)?
        };
        let fresh_ips = fresh * (1.0 - inject_pct / 100.0);
        let delta_pct = (fresh_ips - cell.items_per_sec) / cell.items_per_sec * 100.0;
        rows.push(CheckRow {
            label: cell.label(),
            baseline_ips: cell.items_per_sec,
            fresh_ips,
            delta_pct,
            regressed: delta_pct < -tolerance_pct,
            skipped: false,
        });
    }
    Ok(CheckReport {
        schema: baseline.schema.clone(),
        mode: baseline.mode.clone(),
        tolerance_pct,
        injected_pct: inject_pct,
        baseline_host_parallelism: baseline.host_parallelism,
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_SHARD: &str = r#"{
      "schema": "dbp-bench/shard-v1",
      "mode": "short",
      "workload": { "generator": "poisson(rate=4,horizon=26000)", "seed": 1, "items": 104000 },
      "host_parallelism": 4,
      "results": [
        { "algo": "first-fit", "shards": 2, "workers": 2, "items_per_sec": 500000 },
        { "algo": "best-fit", "shards": 1, "workers": 1, "items_per_sec": 200000 }
      ]
    }"#;

    #[test]
    fn baseline_parses_all_schemas() {
        let b = parse_baseline(TINY_SHARD).unwrap();
        assert_eq!(b.schema, "dbp-bench/shard-v1");
        assert_eq!(b.mode, "short");
        assert_eq!(b.host_parallelism, 4);
        assert_eq!(b.cells.len(), 2);
        assert_eq!(b.cells[0].label(), "first-fit/k2");
        assert_eq!(b.cells[1].label(), "best-fit");
        assert_eq!(b.cells[0].workers, 2);

        let engine = r#"{ "schema": "dbp-bench/engine-v1", "mode": "full",
          "parallel_workers": 8,
          "results": [ { "algo": "cbdt", "items_per_sec": 1000 } ] }"#;
        let b = parse_baseline(engine).unwrap();
        assert_eq!(b.host_parallelism, 8);
        assert_eq!(b.cells[0].label(), "cbdt");

        let telem = r#"{ "schema": "dbp-bench/telemetry-v1", "mode": "short",
          "host_parallelism": 1,
          "results": [ { "algo": "first-fit", "telemetry": "sampled", "items_per_sec": 1000 } ] }"#;
        let b = parse_baseline(telem).unwrap();
        assert_eq!(b.cells[0].label(), "first-fit/sampled");

        // Per-cell workload variants: "default" stays unsuffixed, "deep"
        // shows up in the label and selects the deep-fleet recipe.
        let deep = r#"{ "schema": "dbp-bench/engine-v1", "mode": "short",
          "parallel_workers": 1,
          "results": [
            { "algo": "best-fit", "workload": "default", "scan": "indexed", "items_per_sec": 1000 },
            { "algo": "best-fit", "workload": "deep", "items_per_sec": 1000 },
            { "algo": "best-fit", "workload": "deep", "scan": "linear", "items_per_sec": 1000 }
          ] }"#;
        let b = parse_baseline(deep).unwrap();
        assert_eq!(b.cells[0].label(), "best-fit");
        assert_eq!(b.cells[1].label(), "best-fit@deep");
        assert_eq!(b.cells[2].label(), "best-fit@deep/linear");
        assert!(b.cells[2].linear_scan());
        assert!(!b.cells[1].linear_scan());
    }

    #[test]
    fn unknown_cell_workload_is_rejected() {
        assert!(
            baseline_instance("dbp-bench/engine-v1", "short", "shallow").is_err(),
            "unknown workload recipes must not silently fall back"
        );
        assert!(vector_baseline_instance("short", "shallow").is_err());
    }

    /// The vector schema parses, labels like the engine schema, and the
    /// gate re-measures its cells through the vector session (proven the
    /// same way as the scalar gate: an impossible baseline regresses, a
    /// trivial one passes).
    #[test]
    fn vector_baseline_parses_and_gates() {
        let parsed = parse_baseline(
            r#"{ "schema": "dbp-bench/vector-v1", "mode": "short",
              "parallel_workers": 1,
              "results": [
                { "algo": "dot-product", "workload": "default", "scan": "indexed", "items_per_sec": 1000 },
                { "algo": "first-fit", "workload": "deep", "scan": "linear", "items_per_sec": 1000 }
              ] }"#,
        )
        .unwrap();
        assert_eq!(parsed.schema, "dbp-bench/vector-v1");
        assert_eq!(parsed.cells[0].label(), "dot-product");
        assert_eq!(parsed.cells[1].label(), "first-fit@deep/linear");

        // Tiny synthetic instance keeps the gate-trip proof fast: drive
        // run_vec_cell directly rather than through the short recipe.
        let means = [0.3, 0.2];
        let inst = CorrelatedVectorWorkload::new(500, &means, 0.5, 0.0)
            .unwrap()
            .generate_seeded(3);
        let cell = BaselineCell {
            algo: "first-fit".into(),
            shards: 1,
            workers: 1,
            telemetry: None,
            workload: None,
            scan: None,
            items_per_sec: 0.0,
        };
        let ips = run_vec_cell(&inst, &cell).unwrap();
        assert!(ips > 0.0);
        let linear = BaselineCell {
            scan: Some("linear".into()),
            ..cell
        };
        assert!(run_vec_cell(&inst, &linear).unwrap() > 0.0);
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(parse_baseline("{}").is_err(), "missing schema");
        assert!(
            parse_baseline(r#"{ "schema": "dbp-bench/other-v9", "mode": "full", "results": [] }"#)
                .is_err(),
            "unknown schema"
        );
        assert!(
            parse_baseline(r#"{ "schema": "dbp-bench/engine-v1", "mode": "full", "results": [] }"#)
                .is_err(),
            "no cells"
        );
    }

    /// A baseline claiming throughput no real machine reaches: the gate
    /// must flag every cell. And against a claim of ~zero throughput the
    /// same fresh run must pass. Uses a synthetic baseline pinned to the
    /// short-mode recipe so the test stays under a second.
    #[test]
    fn gate_trips_on_slowdown_and_passes_on_speedup() {
        let fast = r#"{ "schema": "dbp-bench/engine-v1", "mode": "short",
          "parallel_workers": 1,
          "results": [ { "algo": "first-fit", "items_per_sec": 1e15 } ] }"#;
        let report = run_check(&parse_baseline(fast).unwrap(), 20.0, 0.0).unwrap();
        assert!(!report.ok(), "impossible baseline must regress");
        assert_eq!(report.regressions().len(), 1);

        let slow = r#"{ "schema": "dbp-bench/engine-v1", "mode": "short",
          "parallel_workers": 1,
          "results": [ { "algo": "first-fit", "items_per_sec": 0.001 } ] }"#;
        let report = run_check(&parse_baseline(slow).unwrap(), 20.0, 0.0).unwrap();
        assert!(report.ok(), "any real machine beats 0.001 items/s");
        let json = report.to_json();
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"cell\": \"first-fit\""));
    }

    #[test]
    fn injection_trips_a_self_comparison() {
        // Measure once, write the measurement as the baseline, then
        // re-check with a 50% injected slowdown at 20% tolerance: the
        // gate must trip even though the machine did not change.
        let inst = baseline_instance("dbp-bench/engine-v1", "short", "default").unwrap();
        let cell = BaselineCell {
            algo: "first-fit".into(),
            shards: 1,
            workers: 1,
            telemetry: None,
            workload: None,
            scan: None,
            items_per_sec: 0.0,
        };
        let measured = run_cell("dbp-bench/engine-v1", &inst, &cell).unwrap();
        let baseline = Baseline {
            schema: "dbp-bench/engine-v1".into(),
            mode: "short".into(),
            host_parallelism: 1,
            degraded_parallelism: false,
            cells: vec![BaselineCell {
                items_per_sec: measured,
                ..cell
            }],
        };
        let report = run_check(&baseline, 20.0, 50.0).unwrap();
        assert!(
            !report.ok(),
            "a 50% injected slowdown must trip 20% tolerance"
        );
        assert_eq!(report.injected_pct, 50.0);
    }

    /// Regression: the gate used to treat `degraded_parallelism`-tagged
    /// baselines (multi-worker cells recorded on a 1-core host) as
    /// trustworthy and gated against their time-sliced numbers. Skip
    /// path: in a degraded file, a multi-worker cell claiming impossible
    /// throughput must be skipped, not regressed — while its
    /// single-worker cells still gate. Non-skip path: the identical
    /// multi-worker cell in an untagged file must still trip the gate.
    #[test]
    fn degraded_baseline_cells_are_skipped_but_untagged_ones_gate() {
        let degraded = r#"{ "schema": "dbp-bench/shard-v1", "mode": "short",
          "host_parallelism": 1, "degraded_parallelism": true,
          "results": [
            { "algo": "first-fit", "shards": 2, "workers": 2, "items_per_sec": 1e15 },
            { "algo": "first-fit", "shards": 1, "workers": 1, "items_per_sec": 0.001 }
          ] }"#;
        let b = parse_baseline(degraded).unwrap();
        assert!(b.degraded_parallelism);
        let report = run_check(&b, 20.0, 0.0).unwrap();
        assert!(
            report.ok(),
            "an impossible degraded multi-worker cell must be skipped, not gated"
        );
        assert_eq!(report.skipped().len(), 1);
        assert_eq!(report.skipped()[0].label, "first-fit/k2");
        assert!(
            !report.rows[1].skipped,
            "single-worker cells in a degraded file still gate"
        );
        let json = report.to_json();
        assert!(json.contains("\"skipped_cells\": 1"));
        assert!(json.contains("\"skipped\": true"));

        // Same multi-worker cell, file not tagged: gates and trips.
        let untagged = r#"{ "schema": "dbp-bench/shard-v1", "mode": "short",
          "host_parallelism": 1,
          "results": [
            { "algo": "first-fit", "shards": 2, "workers": 2, "items_per_sec": 1e15 }
          ] }"#;
        let b = parse_baseline(untagged).unwrap();
        assert!(!b.degraded_parallelism);
        let report = run_check(&b, 20.0, 0.0).unwrap();
        assert!(!report.ok(), "untagged impossible cell must regress");
        assert!(report.skipped().is_empty());
    }

    #[test]
    fn tolerance_bounds_are_enforced() {
        let b = parse_baseline(TINY_SHARD).unwrap();
        assert!(run_check(&b, 100.0, 0.0).is_err());
        assert!(run_check(&b, -1.0, 0.0).is_err());
        assert!(run_check(&b, 20.0, 100.0).is_err());
    }
}
