//! Terminal line charts for the experiment binaries.
//!
//! The paper's Figure 8 is a line chart; regenerating it as CSV is good
//! for tooling but a quick visual check matters too. This module renders
//! multi-series line charts with Unicode braille-ish density using plain
//! characters, log-x support (Figure 8's μ axis), and a legend — no
//! plotting dependencies.

/// One named data series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, ascending x.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Plot width in columns (data area).
    pub width: usize,
    /// Plot height in rows (data area).
    pub height: usize,
    /// Log-scale the x axis (for μ sweeps).
    pub log_x: bool,
    /// Axis titles.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

impl Default for Chart {
    fn default() -> Self {
        Chart {
            width: 64,
            height: 16,
            log_x: false,
            x_label: "x".into(),
            y_label: "y".into(),
        }
    }
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

impl Chart {
    /// Renders the chart with one glyph per series; later series overdraw
    /// earlier ones at collisions.
    pub fn render(&self, series: &[Series]) -> String {
        let xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        if xs.is_empty() {
            return String::from("(empty chart)\n");
        }
        let tx = |x: f64| if self.log_x { x.max(1e-12).ln() } else { x };
        let (x_min, x_max) = min_max(xs.iter().map(|&x| tx(x)));
        let (y_min, y_max) = min_max(ys.iter().copied());
        let x_span = (x_max - x_min).max(1e-12);
        let y_span = (y_max - y_min).max(1e-12);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            // Sample along x so lines are continuous even between points.
            let width = self.width;
            for (col, x) in
                (0..width).map(|c| (c, x_min + x_span * c as f64 / (width - 1).max(1) as f64))
            {
                if let Some(y) = interpolate(&s.points, x, self.log_x) {
                    let row = ((y - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                    let row = (self.height - 1).saturating_sub(row.min(self.height - 1));
                    grid[row][col] = glyph;
                }
            }
        }

        let mut out = String::new();
        out.push_str(&format!(
            "{} (y: {:.2} .. {:.2})\n",
            self.y_label, y_min, y_max
        ));
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_max - y_span * i as f64 / (self.height - 1).max(1) as f64;
            out.push_str(&format!("{y_here:8.2} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(self.width)));
        let x_lo = if self.log_x { x_min.exp() } else { x_min };
        let x_hi = if self.log_x { x_max.exp() } else { x_max };
        out.push_str(&format!(
            "{:>9}{:<.2}{}{:>.2}  ({}{})\n",
            "",
            x_lo,
            " ".repeat(self.width.saturating_sub(12)),
            x_hi,
            self.x_label,
            if self.log_x { ", log scale" } else { "" }
        ));
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
        }
        out
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Piecewise-linear interpolation of `points` at transformed x; `None`
/// outside the data range.
fn interpolate(points: &[(f64, f64)], x: f64, log_x: bool) -> Option<f64> {
    let tx = |v: f64| if log_x { v.max(1e-12).ln() } else { v };
    let n = points.len();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return (tx(points[0].0) - x).abs().le(&1e-9).then_some(points[0].1);
    }
    for w in points.windows(2) {
        let (x0, y0) = (tx(w[0].0), w[0].1);
        let (x1, y1) = (tx(w[1].0), w[1].1);
        if x >= x0 - 1e-12 && x <= x1 + 1e-12 {
            let f = if (x1 - x0).abs() < 1e-12 {
                0.0
            } else {
                (x - x0) / (x1 - x0)
            };
            return Some(y0 + f * (y1 - y0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, pts: &[(f64, f64)]) -> Series {
        Series {
            name: name.into(),
            points: pts.to_vec(),
        }
    }

    #[test]
    fn renders_single_series() {
        let chart = Chart {
            width: 20,
            height: 5,
            ..Default::default()
        };
        let out = chart.render(&[line("lin", &[(0.0, 0.0), (10.0, 10.0)])]);
        assert!(out.contains('o'));
        assert!(out.contains("lin"));
        // The line should touch both the top and bottom rows.
        let rows: Vec<&str> = out.lines().collect();
        assert!(rows[1].contains('o'), "top row: {}", rows[1]);
        assert!(rows[5].contains('o'), "bottom row: {}", rows[5]);
    }

    #[test]
    fn later_series_overdraw() {
        let chart = Chart {
            width: 10,
            height: 3,
            ..Default::default()
        };
        let out = chart.render(&[
            line("a", &[(0.0, 1.0), (1.0, 1.0)]),
            line("b", &[(0.0, 1.0), (1.0, 1.0)]),
        ]);
        assert!(out.contains('+'), "second glyph wins: {out}");
    }

    #[test]
    fn log_x_compresses() {
        let chart = Chart {
            width: 30,
            height: 8,
            log_x: true,
            ..Default::default()
        };
        let out = chart.render(&[line("f", &[(1.0, 1.0), (10.0, 2.0), (100.0, 3.0)])]);
        assert!(out.contains("log scale"));
    }

    #[test]
    fn empty_chart() {
        let chart = Chart::default();
        assert_eq!(chart.render(&[]), "(empty chart)\n");
    }

    #[test]
    fn interpolation_bounds() {
        let pts = [(0.0, 0.0), (10.0, 10.0)];
        assert_eq!(interpolate(&pts, 5.0, false), Some(5.0));
        assert_eq!(interpolate(&pts, -1.0, false), None);
        assert_eq!(interpolate(&pts, 11.0, false), None);
    }
}
