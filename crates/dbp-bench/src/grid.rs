//! Parallel experiment grid runner.
//!
//! Experiments evaluate an (algorithm × workload-config × seed) grid whose
//! cells are independent — a textbook fan-out. The runner uses
//! `std::thread::scope` worker threads pulling cells from a shared atomic
//! cursor (work-stealing-lite). Each worker accumulates `(index, result)`
//! pairs privately and hands them back through its join handle; the merge
//! into a pre-sized slot vector happens after the scope joins, so there is
//! no lock anywhere on the result path and output order stays
//! deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One cell of the grid: an opaque description plus the closure input.
#[derive(Clone, Debug)]
pub struct GridCell<I> {
    /// Stable label for reports (e.g. `"cbdt/mu=16/seed=3"`).
    pub label: String,
    /// The evaluation input.
    pub input: I,
}

/// A labelled result.
#[derive(Clone, Debug)]
pub struct GridResult<O> {
    /// The cell's label.
    pub label: String,
    /// The evaluation output.
    pub output: O,
}

/// Evaluates `eval` over all cells in parallel on up to
/// `threads` workers (defaults to available parallelism when `None`),
/// preserving cell order in the output.
pub fn run_grid<I, O, F>(
    cells: Vec<GridCell<I>>,
    threads: Option<usize>,
    eval: F,
) -> Vec<GridResult<O>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = cells.len();
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n.max(1));

    let cursor = AtomicUsize::new(0);
    let cells_ref = &cells;
    let eval_ref = &eval;

    let per_worker: Vec<Vec<(usize, GridResult<O>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Worker-local accumulator: no sharing, no locking.
                    let mut local: Vec<(usize, GridResult<O>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let cell = &cells_ref[i];
                        let output = eval_ref(&cell.input);
                        local.push((
                            i,
                            GridResult {
                                label: cell.label.clone(),
                                output,
                            },
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid workers must not panic"))
            .collect()
    });

    let mut slots: Vec<Option<GridResult<O>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, result) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} evaluated twice");
        slots[i] = Some(result);
    }

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_cells() {
        let cells: Vec<GridCell<u64>> = (0..100)
            .map(|i| GridCell {
                label: format!("cell{i}"),
                input: i,
            })
            .collect();
        let results = run_grid(cells, Some(8), |&x| x * x);
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("cell{i}"));
            assert_eq!(r.output, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn single_thread_and_empty() {
        let results = run_grid::<u64, u64, _>(Vec::new(), None, |&x| x);
        assert!(results.is_empty());
        let one = run_grid(
            vec![GridCell {
                label: "a".into(),
                input: 7u64,
            }],
            Some(1),
            |&x| x + 1,
        );
        assert_eq!(one[0].output, 8);
    }

    #[test]
    fn heavier_work_parallelizes_correctly() {
        // Correctness under contention: results must match serial eval.
        let cells: Vec<GridCell<u64>> = (0..64)
            .map(|i| GridCell {
                label: i.to_string(),
                input: i,
            })
            .collect();
        let f = |&x: &u64| (0..1000u64).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b));
        let par = run_grid(cells.clone(), Some(16), f);
        let ser = run_grid(cells, Some(1), f);
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn more_threads_than_cells() {
        let cells: Vec<GridCell<u64>> = (0..3)
            .map(|i| GridCell {
                label: i.to_string(),
                input: i,
            })
            .collect();
        let results = run_grid(cells, Some(64), |&x| x);
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.output, i as u64);
        }
    }
}
