//! Parallel experiment grid runner.
//!
//! Experiments evaluate an (algorithm × workload-config × seed) grid whose
//! cells are independent — a textbook fan-out. The runner uses
//! `std::thread::scope` worker threads pulling cells from a shared atomic
//! cursor (work-stealing-lite). Each worker accumulates `(index, result)`
//! pairs privately and hands them back through its join handle; the merge
//! into a pre-sized slot vector happens after the scope joins, so there is
//! no lock anywhere on the result path and output order stays
//! deterministic regardless of scheduling.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One cell of the grid: an opaque description plus the closure input.
#[derive(Clone, Debug)]
pub struct GridCell<I> {
    /// Stable label for reports (e.g. `"cbdt/mu=16/seed=3"`).
    pub label: String,
    /// The evaluation input.
    pub input: I,
}

/// A labelled result.
#[derive(Clone, Debug)]
pub struct GridResult<O> {
    /// The cell's label.
    pub label: String,
    /// The evaluation output.
    pub output: O,
}

/// A cell whose evaluation panicked, captured instead of propagated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellPanic {
    /// The label of the poisoned cell.
    pub label: String,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case); `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for CellPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell '{}' panicked: {}", self.label, self.message)
    }
}

impl std::error::Error for CellPanic {}

/// Evaluates `eval` over all cells in parallel on up to
/// `threads` workers (defaults to available parallelism when `None`),
/// preserving cell order in the output.
///
/// A panicking cell aborts the whole sweep (the historical behaviour).
/// Long or adversarial sweeps — anything where one poisoned cell should
/// report instead of killing a million-case run — should use
/// [`run_grid_checked`].
pub fn run_grid<I, O, F>(
    cells: Vec<GridCell<I>>,
    threads: Option<usize>,
    eval: F,
) -> Vec<GridResult<O>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    run_grid_checked(cells, threads, eval)
        .into_iter()
        .map(|r| GridResult {
            label: r.label,
            output: match r.output {
                Ok(o) => o,
                Err(p) => panic!("{p}"),
            },
        })
        .collect()
}

/// Like [`run_grid`], but each cell's evaluation is isolated with
/// [`catch_unwind`]: a panicking cell yields `Err(CellPanic)` in its slot
/// while every other cell still completes and the output order is
/// preserved. The workers themselves never unwind, so one poisoned cell
/// cannot abort the sweep.
pub fn run_grid_checked<I, O, F>(
    cells: Vec<GridCell<I>>,
    threads: Option<usize>,
    eval: F,
) -> Vec<GridResult<Result<O, CellPanic>>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = cells.len();
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n.max(1));

    let cursor = AtomicUsize::new(0);
    let cells_ref = &cells;
    let eval_ref = &eval;

    type Checked<O> = GridResult<Result<O, CellPanic>>;
    let per_worker: Vec<Vec<(usize, Checked<O>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Worker-local accumulator: no sharing, no locking.
                    let mut local: Vec<(usize, Checked<O>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let cell = &cells_ref[i];
                        // AssertUnwindSafe: `eval` is only ever observed
                        // through `&F`, and a panicking call hands back
                        // nothing — no broken invariant can leak out.
                        let output = catch_unwind(AssertUnwindSafe(|| eval_ref(&cell.input)))
                            .map_err(|payload| CellPanic {
                                label: cell.label.clone(),
                                message: panic_message(payload.as_ref()),
                            });
                        local.push((
                            i,
                            GridResult {
                                label: cell.label.clone(),
                                output,
                            },
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid workers must not panic"))
            .collect()
    });

    let mut slots: Vec<Option<Checked<O>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, result) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} evaluated twice");
        slots[i] = Some(result);
    }

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Renders a caught panic payload: the `&str` / `String` cases cover every
/// `panic!`, `assert!` and `expect` in practice.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_cells() {
        let cells: Vec<GridCell<u64>> = (0..100)
            .map(|i| GridCell {
                label: format!("cell{i}"),
                input: i,
            })
            .collect();
        let results = run_grid(cells, Some(8), |&x| x * x);
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("cell{i}"));
            assert_eq!(r.output, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn single_thread_and_empty() {
        let results = run_grid::<u64, u64, _>(Vec::new(), None, |&x| x);
        assert!(results.is_empty());
        let one = run_grid(
            vec![GridCell {
                label: "a".into(),
                input: 7u64,
            }],
            Some(1),
            |&x| x + 1,
        );
        assert_eq!(one[0].output, 8);
    }

    #[test]
    fn heavier_work_parallelizes_correctly() {
        // Correctness under contention: results must match serial eval.
        let cells: Vec<GridCell<u64>> = (0..64)
            .map(|i| GridCell {
                label: i.to_string(),
                input: i,
            })
            .collect();
        let f = |&x: &u64| (0..1000u64).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b));
        let par = run_grid(cells.clone(), Some(16), f);
        let ser = run_grid(cells, Some(1), f);
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.output, b.output);
        }
    }

    /// Serializes tests that swap the (process-global) panic hook.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn checked_isolates_panicking_cells() {
        let _guard = HOOK_LOCK.lock().unwrap();
        // Silence the default hook's backtrace spew for the expected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cells: Vec<GridCell<u64>> = (0..50)
            .map(|i| GridCell {
                label: format!("cell{i}"),
                input: i,
            })
            .collect();
        let results = run_grid_checked(cells, Some(8), |&x| {
            assert!(x % 7 != 3, "poisoned cell {x}");
            x * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(results.len(), 50);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("cell{i}"));
            if i % 7 == 3 {
                let p = r.output.as_ref().unwrap_err();
                assert_eq!(p.label, r.label);
                assert!(p.message.contains(&format!("poisoned cell {i}")));
            } else {
                assert_eq!(*r.output.as_ref().unwrap(), (i as u64) * 2);
            }
        }
    }

    #[test]
    fn checked_matches_unchecked_when_nothing_panics() {
        let cells: Vec<GridCell<u64>> = (0..40)
            .map(|i| GridCell {
                label: i.to_string(),
                input: i,
            })
            .collect();
        let plain = run_grid(cells.clone(), Some(4), |&x| x.wrapping_mul(13));
        let checked = run_grid_checked(cells, Some(4), |&x| x.wrapping_mul(13));
        for (a, b) in plain.iter().zip(&checked) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.output, *b.output.as_ref().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "boom at 5")]
    fn unchecked_still_propagates_panics() {
        // The expected panic is caught and re-raised only after the hook
        // and lock are restored, so the mutex is never poisoned.
        let result = {
            let _guard = HOOK_LOCK.lock().unwrap();
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let cells: Vec<GridCell<u64>> = (0..10)
                .map(|i| GridCell {
                    label: i.to_string(),
                    input: i,
                })
                .collect();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_grid(cells, Some(2), |&x| {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    x
                })
            }));
            std::panic::set_hook(prev);
            result
        };
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    #[test]
    fn more_threads_than_cells() {
        let cells: Vec<GridCell<u64>> = (0..3)
            .map(|i| GridCell {
                label: i.to_string(),
                input: i,
            })
            .collect();
        let results = run_grid(cells, Some(64), |&x| x);
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.output, i as u64);
        }
    }
}
