//! # dbp-bench — experiment harness
//!
//! Shared machinery for the `exp_*` binaries (one per experiment row in
//! DESIGN.md §4) and the Criterion benchmarks:
//!
//! * [`registry`] — construct any online/offline packer by name, so every
//!   experiment sweeps the same algorithm roster.
//! * [`measure`] — run a packer on an instance and compute usage and
//!   ratios against LB3 / exact `OPT_total`.
//! * [`grid`] — a lock-free scoped-thread parallel grid runner: evaluate an
//!   (algorithm × workload × seed) grid across CPU cores with
//!   deterministic output ordering.
//! * [`report`] — minimal aligned-table / CSV printers so each binary
//!   regenerates its figure as both human-readable rows and
//!   machine-readable CSV.
//! * [`reference`] — a deliberately naive seed-style engine used as the
//!   correctness foil and performance baseline for the indexed engine.

#![warn(missing_docs)]

pub mod check;
pub mod grid;
pub mod measure;
pub mod plot;
pub mod reference;
pub mod registry;
pub mod report;

pub use check::{parse_baseline, run_check, Baseline, CheckReport};
pub use grid::{run_grid, GridCell, GridResult};
pub use measure::{measure_offline, measure_online, Measurement};
pub use registry::{offline_packer, online_packer, OFFLINE_ALGOS, ONLINE_ALGOS};
