//! Hermetic in-tree stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *subset* of the `rand 0.8` API its code
//! actually uses: [`rngs::StdRng`], [`SeedableRng`] and [`Rng`] with
//! `gen_range` / `gen_bool` / `gen`. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic, seedable, and statistically solid for
//! workload generation, which is all this workspace needs (nothing here is
//! cryptographic).
//!
//! Streams differ numerically from the real `rand` crate's `StdRng`
//! (ChaCha12); every consumer in this workspace only relies on
//! *determinism per seed*, never on specific stream values.

#![warn(missing_docs)]

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let b = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `x mod span` without bias mattering for this workspace's use
/// (span ≪ 2^64 everywhere; the modulo bias is ≤ span/2^64).
fn widening_mod(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    (x as u128) % span
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::draw(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = f64::draw(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::draw(self) < p
    }

    /// A uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; perturb it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        let mut c2 = StdRng::seed_from_u64(43);
        let again: Vec<u64> = (0..16).map(|_| c2.gen_range(0..1000u64)).collect();
        assert_eq!(same, again);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((4000..6000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn float_unit_interval_covers() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(0.0..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
