//! Hermetic in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendors the
//! subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup`] with `sample_size` / `throughput` /
//! `bench_with_input` / `bench_function` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! `sample_size` samples and reports the median and min per-iteration
//! wall time (plus derived throughput when set). There is no HTML
//! report, outlier analysis, or baseline comparison — `cargo bench`
//! here is a smoke-and-magnitude tool; `dbp-bench`'s own binaries do
//! the tracked measurements.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    /// Measured per-iteration durations, one per completed sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, adaptively batching fast closures so each sample is
    /// long enough for the clock to resolve.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch-size calibration: grow the batch until one
        // batch takes ≥ ~200µs, so per-iteration noise stays bounded.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= (1 << 20) {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
        }
    }

    fn report(&self, label: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<56} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let rate = throughput.map(|t| {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!(" {:>12.0} elem/s", per_sec(*n)),
                Throughput::Bytes(n) => format!(" {:>12.0} B/s", per_sec(*n)),
            }
        });
        println!(
            "{label:<56} median {median:>12?}  min {min:>12?}{}",
            rate.unwrap_or_default()
        );
    }
}

/// Benchmark throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 16 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 16,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name, None);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(
            &format!("{}/{}", self.name, id.label),
            self.throughput.as_ref(),
        );
        self
    }

    /// Runs a benchmark within the group. Accepts a name or a
    /// [`BenchmarkId`], as real criterion does.
    pub fn bench_function<N: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(
            &format!("{}/{}", self.name, id.into().label),
            self.throughput.as_ref(),
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = <$crate::Criterion as ::std::default::Default>::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`);
            // this stand-in has no flags, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(4);
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("inline", |b| b.iter(|| 2 + 2));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| vec![1u8; 64].len()));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_run() {
        benches();
    }
}
