//! Hermetic in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header, argument
//!   bindings of the form `pat in strategy` and `name: type`;
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   integer and float ranges and for tuples of strategies;
//! * [`collection::vec`] for variable-length vectors;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number; cases are
//!   deterministic per (test name, case index), so failures reproduce
//!   exactly on re-run.
//! * **Default cases = 64** (not 256) to keep the suite fast; tests that
//!   need more say so via `with_cases`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The deterministic RNG driving each generated case.
pub type TestRng = StdRng;

/// Builds the RNG for one (test, case) pair — deterministic across runs,
/// distinct across tests and cases.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Runner configuration (the subset the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// A fixed value as a strategy (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types usable as bare `name: type` arguments in [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let raw: u64 = rng.gen();
                raw as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, spanning many magnitudes.
        let mag: f64 = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag.exp2()
    }
}

/// Collection strategies (the subset the workspace uses).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy for vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.lo..=self.len.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(bindings) { body }` items, where each binding is
/// either `pattern in strategy` or `name: type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__pt_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__pt_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __pt_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::ProptestConfig = $cfg;
            let __pt_name = concat!(module_path!(), "::", stringify!($name));
            for __pt_case in 0..__pt_cfg.cases {
                let mut __pt_rng = $crate::test_rng(__pt_name, __pt_case);
                let __pt_out: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__pt_bind!(__pt_rng; $body; $($args)*)
                })();
                if let ::std::result::Result::Err(e) = __pt_out {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __pt_case,
                        __pt_cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__pt_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __pt_bind {
    ($rng:ident; $body:block;) => {{
        $body;
        ::std::result::Result::Ok(())
    }};
    ($rng:ident; $body:block; $p:pat_param in $s:expr $(, $($rest:tt)*)?) => {{
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__pt_bind!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; $p:ident : $t:ty $(, $($rest:tt)*)?) => {{
        let $p = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__pt_bind!($rng; $body; $($($rest)*)?)
    }};
}

/// Asserts a condition inside a property; on failure the current case
/// fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$a, &$b);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err(::std::format!(
                "{} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __pt_l,
                __pt_r
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$a, &$b);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                __pt_l,
                __pt_r
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$a, &$b);
        if *__pt_l == *__pt_r {
            return ::std::result::Result::Err(::std::format!(
                "{} == {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __pt_l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 0i64..50, b in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!((0..50).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.5..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn maps_and_vecs(v in collection::vec((1u64..=8).prop_map(|x| x * 2), 0..5)) {
            prop_assert!(v.len() < 5);
            for x in v {
                prop_assert!(x % 2 == 0 && x <= 16);
            }
        }

        #[test]
        fn flat_map_and_bare_types((n, k) in (1usize..4).prop_flat_map(|n| (Just(n), 0usize..4)), seed: u64) {
            prop_assert!((1..4).contains(&n) && k < 4);
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::test_rng("x", 3);
        let mut b = crate::test_rng("x", 3);
        let s = 0i64..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        always_fails();
    }
}
