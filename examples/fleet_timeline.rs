//! Fleet timeline export — feeding scheduler output to plotting tools.
//!
//! Runs three schedulers over a diurnal trace, exports each open-server
//! timeline as CSV (plot with any tool), and prints a terminal sparkline
//! so the shapes are visible right here. Also demonstrates the accounting
//! identity: the integral of the fleet timeline equals the usage the
//! engine reports.
//!
//! Run with `cargo run --release --example fleet_timeline`.

use clairvoyant_dbp::core::stats::{instance_stats, StepSeries};
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::scenarios::DiurnalWorkload;

fn sparkline(series: &StepSeries, start: i64, end: i64, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.max().max(1);
    (0..width)
        .map(|i| {
            let t = start + (end - start) * i as i64 / width as i64;
            let v = series.value_at(t);
            BARS[(v * 7 / max).clamp(0, 7) as usize]
        })
        .collect()
}

fn main() {
    // Two simulated days, strong day/night wave.
    let trace = DiurnalWorkload::new(1500, 86_400, 2, 0.8).generate_seeded(5);
    let stats = instance_stats(&trace).expect("nonempty");
    println!(
        "diurnal trace: {} jobs, peak load {:.1} servers-worth, peak concurrency {}",
        stats.items, stats.peak_load, stats.peak_concurrency
    );
    let (start, end) = (
        trace.first_arrival().unwrap(),
        trace.last_departure().unwrap(),
    );

    let engine = OnlineEngine::clairvoyant();
    let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
        Box::new(AnyFit::first_fit()),
        Box::new(ClassifyByDepartureTime::with_known_durations(
            trace.min_duration().unwrap(),
            trace.mu().unwrap(),
        )),
        Box::new(ClassifyByDuration::new(trace.min_duration().unwrap(), 2.0)),
    ];

    let out_dir = std::env::temp_dir().join("dbp-fleet");
    std::fs::create_dir_all(&out_dir).expect("mkdir");
    println!();
    for p in packers.iter_mut() {
        let run = engine.run(&trace, p.as_mut()).expect("run");
        run.packing.validate(&trace).expect("valid");
        let fleet = run.fleet_series();

        // Accounting identity: ∫ fleet dt == usage.
        assert_eq!(fleet.integral() as u128, run.usage);

        let csv_path = out_dir.join(format!(
            "{}.csv",
            p.name().replace(['(', ')', '=', ','], "_")
        ));
        std::fs::write(&csv_path, fleet.to_csv()).expect("write csv");
        println!(
            "{:<24} peak {:>3} servers  usage {:>9}  {}",
            p.name(),
            fleet.max(),
            run.usage,
            sparkline(&fleet, start, end, 60)
        );
        println!("{:<24} csv: {}", "", csv_path.display());
    }
    println!("\n(the day/night wave should be visible in every sparkline; the\n classified fleets run slightly larger but drain more promptly)");
}
