//! Observability tour — decision traces, replay, and time-series metrics.
//!
//! Runs two schedulers over a cloud-gaming trace with the full observer
//! stack attached: a JSONL decision trace ([`TraceWriter`]), the
//! time-series aggregator ([`MetricsAggregator`]), and run counters. The
//! metrics sparklines show the active-bin curve against `⌈S(t)⌉` — the
//! integrand of the paper's LB3 bound — so the vertical gap between the
//! two *is* the money wasted at that instant. The captured trace is then
//! replayed and must reconstruct the packing bit-for-bit.
//!
//! Run with `cargo run --release --example metrics_timeline`.

use clairvoyant_dbp::core::stats::StepSeries;
use clairvoyant_dbp::obs::Counters;
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::scenarios::CloudGamingWorkload;

fn sparkline(series: &StepSeries, start: i64, end: i64, width: usize, max: i64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = max.max(1);
    (0..width)
        .map(|i| {
            let t = start + (end - start) * i as i64 / width as i64;
            let v = series.value_at(t);
            BARS[(v * 7 / max).clamp(0, 7) as usize]
        })
        .collect()
}

fn main() {
    let trace = CloudGamingWorkload::new(600, 12_000).generate_seeded(9);
    let (start, end) = (
        trace.first_arrival().unwrap(),
        trace.last_departure().unwrap(),
    );
    let lb = lower_bounds(&trace);
    println!(
        "cloud-gaming trace: {} sessions over {} ticks, LB3 = {} server-ticks\n",
        trace.len(),
        end - start,
        lb.lb3
    );

    let engine = OnlineEngine::clairvoyant();
    let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
        Box::new(AnyFit::first_fit()),
        Box::new(ClassifyByDepartureTime::with_known_durations(
            trace.min_duration().unwrap(),
            trace.mu().unwrap(),
        )),
    ];
    let out_dir = std::env::temp_dir().join("dbp-metrics");
    std::fs::create_dir_all(&out_dir).expect("mkdir");

    for p in packers.iter_mut() {
        // Tee composes observers; each stays monomorphized (no dyn cost).
        let mut obs = Tee(
            TraceWriter::new(Vec::new()),
            Tee(MetricsAggregator::new(), Counters::new()),
        );
        let run = engine
            .run_observed(&trace, p.as_mut(), &mut obs)
            .expect("run");
        run.packing.validate(&trace).expect("valid");
        let Tee(writer, Tee(agg, counters)) = obs;
        let report = agg.report();

        // The observed timeline integrates to exactly the usage charged,
        // and the observed ⌈S(t)⌉ integrates to exactly LB3.
        assert_eq!(report.usage(), run.usage);
        assert_eq!(report.lb3(), lb.lb3);

        // Replay the JSONL trace: the reconstruction is bit-for-bit.
        let jsonl = String::from_utf8(writer.finish().expect("flush")).expect("utf8");
        let replay = clairvoyant_dbp::obs::replay_jsonl(&jsonl).expect("replay");
        replay.verify().expect("replay verifies");
        assert_eq!(replay.run.usage, run.usage);
        assert_eq!(replay.run.packing, run.packing);

        let scale = report.active_bins.max();
        println!("{}", p.name());
        println!(
            "  servers {}",
            sparkline(&report.active_bins, start, end, 60, scale)
        );
        println!(
            "  ⌈S(t)⌉  {}",
            sparkline(&report.ceil_level, start, end, 60, scale)
        );
        let c = counters.snapshot();
        println!(
            "  usage {} (ratio {:.3} vs LB3)  peak {} servers  mean util {:.1}%",
            run.usage,
            run.usage as f64 / lb.lb3.max(1) as f64,
            report.active_bins.max(),
            report.mean_utilization * 100.0
        );
        println!(
            "  {} placements: {:.0}% reused, mean scan {:.2} bins, {:.0} ns/decision",
            c.items_packed,
            c.reuse_fraction() * 100.0,
            c.mean_candidates(),
            c.mean_decide_ns()
        );
        let csv_path = out_dir.join(format!(
            "{}.csv",
            p.name().replace(['(', ')', '=', ','], "_")
        ));
        std::fs::write(&csv_path, report.to_csv()).expect("write csv");
        println!(
            "  replayed {} events bit-for-bit; csv: {}\n",
            jsonl.lines().count(),
            csv_path.display()
        );
    }
    println!(
        "(both fleets chase the same ⌈S(t)⌉ floor; the classified fleet\n hugs it tighter — that gap is what Theorem 4 bounds)"
    );
}
