//! Quickstart: pack a handful of jobs with every strategy and compare.
//!
//! Run with `cargo run --release --example quickstart`.

use clairvoyant_dbp::prelude::*;

fn main() {
    // A small job trace: (size as fraction of a server, arrival, departure).
    // Departures are known at arrival — the clairvoyant setting.
    let jobs = Instance::from_triples(&[
        (0.50, 0, 40),   // short batch job
        (0.50, 0, 400),  // long service
        (0.25, 10, 50),  // short
        (0.25, 15, 420), // long
        (0.50, 45, 90),  // short, next wave
        (0.75, 60, 460), // long, heavy
        (0.25, 80, 120), // short
    ]);

    println!(
        "{} jobs, span {} ticks, duration ratio mu = {:.1}",
        jobs.len(),
        jobs.span(),
        jobs.mu().unwrap()
    );
    let lb = lower_bounds(&jobs);
    println!(
        "lower bounds: demand {:.1}, span {}, LB3 {}\n",
        lb.demand.ticks_f64(),
        lb.span,
        lb.lb3
    );

    // Online strategies. Any Fit baselines ignore departures; the
    // classification strategies require them.
    let engine = OnlineEngine::clairvoyant();
    let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
        Box::new(AnyFit::first_fit()),
        Box::new(AnyFit::best_fit()),
        Box::new(ClassifyByDepartureTime::new(100)),
        Box::new(ClassifyByDuration::new(40, 3.0)),
        Box::new(CombinedClassify::new(40, 3.0)),
    ];
    println!(
        "{:<22} {:>8} {:>6} {:>8}",
        "algorithm", "usage", "bins", "vs LB3"
    );
    for packer in packers.iter_mut() {
        let run = engine.run(&jobs, packer.as_mut()).expect("run");
        run.packing.validate(&jobs).expect("valid");
        println!(
            "{:<22} {:>8} {:>6} {:>8.3}",
            packer.name(),
            run.usage,
            run.bins_opened(),
            run.usage as f64 / lb.best() as f64
        );
    }

    // Offline: the paper's two approximation algorithms plus the exact
    // optimum (instance is small enough).
    println!();
    for offline in [
        &DurationDescendingFirstFit::new() as &dyn OfflinePacker,
        &DualColoring::new(),
    ] {
        let packing = offline.pack(&jobs);
        packing.validate(&jobs).expect("valid");
        println!(
            "{:<22} {:>8} {:>6}",
            offline.name(),
            packing.total_usage(&jobs),
            packing.num_bins()
        );
    }
    let (opt_usage, opt_packing) = min_usage_packing(&jobs);
    opt_packing.validate(&jobs).expect("valid");
    println!(
        "{:<22} {:>8} {:>6}",
        "exact optimum",
        opt_usage,
        opt_packing.num_bins()
    );
    println!(
        "\nrepacking adversary OPT_total (ratio denominator): {}",
        opt_total(&jobs)
    );
}
