//! Cloud gaming dispatch — the paper's headline application (§1).
//!
//! Game session end times are predictable for many titles, so the
//! dispatcher is clairvoyant. This example runs two regimes and reports
//! honestly on both:
//!
//! * **steady state** — arrivals all day. First Fit does well here: every
//!   hole left by a departing session is quickly refilled by a new one.
//! * **launch event** — thousands of sessions start within minutes (a
//!   tournament or release night) and then arrivals stop. First Fit mixes
//!   short and long sessions on each server, so every server stays rented
//!   until its *longest* session ends; classify-by-departure-time groups
//!   sessions that end together, and servers drain in clean waves. This is
//!   exactly the drain pathology behind the paper's `μ+4` lower-bound-type
//!   behaviour for Any Fit, and where clairvoyance pays.
//!
//! Run with `cargo run --release --example cloud_gaming`.

use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::scenarios::CloudGamingWorkload;

fn report(label: &str, trace: &Instance, rho: i64) -> (f64, f64) {
    let hourly = Billing::PerHour {
        ticks_per_hour: 3600,
        price: 0.50, // $/server-hour
    };
    let mut ff = AnyFit::first_fit();
    let baseline =
        simulate(trace, &mut ff, ClairvoyanceMode::NonClairvoyant, hourly).expect("simulation");
    let mut cbdt = ClassifyByDepartureTime::new(rho);
    let smart =
        simulate(trace, &mut cbdt, ClairvoyanceMode::Clairvoyant, hourly).expect("simulation");

    println!(
        "\n== {label}: {} sessions, mu = {:.1} ==",
        trace.len(),
        trace.mu().unwrap()
    );
    for rep in [&baseline, &smart] {
        println!(
            "  {:<18} cost ${:<8.2} servers {:<5} peak {:<4} utilization {:.1}%  vs-LB {:.3}",
            rep.scheduler,
            rep.cost,
            rep.servers_acquired,
            rep.peak_servers,
            rep.utilization * 100.0,
            rep.ratio_vs_lb
        );
    }
    (baseline.cost, smart.cost)
}

fn main() {
    // One tick = one second.

    // Regime 1: steady arrivals over six hours.
    let steady = CloudGamingWorkload::new(2_000, 6 * 3600).generate_seeded(2024);
    let (b1, s1) = report("steady state", &steady, 20 * 60);
    println!(
        "  -> steady load: FF refills holes as fast as they open; clairvoyance\n     changes little here ({})",
        pct(b1, s1)
    );

    // Regime 2: launch event — everyone joins in the first 10 minutes.
    let launch = CloudGamingWorkload::new(2_000, 10 * 60).generate_seeded(2024);
    let (b2, s2) = report("launch event (burst + drain)", &launch, 20 * 60);
    println!(
        "  -> burst + drain: FF strands servers on their longest session;\n     grouping by end time {}",
        pct(b2, s2)
    );
    assert!(
        s2 < b2,
        "classify-by-departure-time must win the drain regime"
    );
}

fn pct(baseline: f64, smart: f64) -> String {
    let d = (baseline - smart) / baseline * 100.0;
    if d >= 0.0 {
        format!("saves {d:.1}% of the bill")
    } else {
        format!("costs {:.1}% more", -d)
    }
}
