//! Recurring data-analytics batches (§1: "jobs are mostly recurring").
//!
//! Recurring jobs have well-known durations, making the classify-by-
//! duration strategy natural: each duration class packs onto its own
//! server pool, so short ETL jobs never pin servers that long model
//! trainings keep busy. This example also shows offline (re)planning with
//! Duration Descending First Fit and Dual Coloring once the day's schedule
//! is fully known, and round-trips the trace through the text format.
//!
//! Run with `cargo run --release --example data_analytics`.

use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::scenarios::AnalyticsWorkload;
use clairvoyant_dbp::workloads::trace;

fn main() {
    // 50 job templates recurring hourly for a 12-hour window.
    let day = AnalyticsWorkload::new(50, 3600, 12).generate_seeded(7);
    println!(
        "analytics schedule: {} job runs, span {:.1} h, mu = {:.1}",
        day.len(),
        day.span() as f64 / 3600.0,
        day.mu().unwrap()
    );
    let lb = lower_bounds(&day);

    // Online dispatch as jobs fire, grouping by duration class (alpha=2).
    let engine = OnlineEngine::clairvoyant();
    let mut cbd = ClassifyByDuration::new(day.min_duration().unwrap(), 2.0);
    let online = engine.run(&day, &mut cbd).expect("run");
    online.packing.validate(&day).expect("valid");

    let mut ff = AnyFit::first_fit();
    let ff_run = OnlineEngine::non_clairvoyant()
        .run(&day, &mut ff)
        .expect("run");

    println!("\nonline dispatch (server-seconds, lower is better):");
    println!("  first-fit (no duration knowledge): {}", ff_run.usage);
    println!("  classify-by-duration:              {}", online.usage);
    println!("  LB3 lower bound:                   {}", lb.best());

    // Overnight re-planning: the whole next-day schedule is known, so the
    // offline approximation algorithms apply.
    println!("\noffline plans for the same schedule:");
    for packer in [
        &DurationDescendingFirstFit::new() as &dyn OfflinePacker,
        &DualColoring::new(),
        &ArrivalFirstFit::new(),
    ] {
        let plan = packer.pack(&day);
        plan.validate(&day).expect("valid");
        println!(
            "  {:<16} usage {:>9}  servers {:>4}  vs-LB {:.3}",
            packer.name(),
            plan.total_usage(&day),
            plan.num_bins(),
            plan.total_usage(&day) as f64 / lb.best() as f64
        );
    }

    // Persist the schedule for replay (plain CSV; see dbp-workloads docs).
    let path = std::env::temp_dir().join("analytics_day.csv");
    trace::save(&day, &path).expect("save trace");
    let reloaded = trace::load(&path).expect("load trace");
    assert_eq!(reloaded, day);
    println!(
        "\nschedule saved to {} and round-tripped losslessly",
        path.display()
    );
}
