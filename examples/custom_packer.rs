//! Extending the library: writing your own online packer.
//!
//! The `OnlinePacker` trait is the integration point for downstream
//! schedulers. This example implements a "deadline-aware best fit" —
//! a strategy not in the paper: among open bins that fit, prefer the bin
//! whose *latest departure* is closest to the arriving item's departure
//! (a soft version of classify-by-departure-time, with Best Fit as the
//! tie-break). It is then pitted against the paper's strategies on the
//! adversarial tail-trap and a random trace, and tested against the
//! Theorem 3 adversary — no online algorithm, including custom ones, can
//! beat the golden ratio.
//!
//! Run with `cargo run --release --example custom_packer`.

use clairvoyant_dbp::algos::adversary::{golden_ratio, run_adversary};
use clairvoyant_dbp::core::online::{Decision, ItemView, OpenBins};
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::adversarial::ff_tail_trap;
use clairvoyant_dbp::workloads::random::PoissonWorkload;

/// Deadline-aware best fit: minimize |bin's latest departure − item's
/// departure|, breaking ties toward fuller bins.
struct DeadlineAwareBestFit;

impl OnlinePacker for DeadlineAwareBestFit {
    fn name(&self) -> String {
        "deadline-aware-bf".into()
    }

    fn place(&mut self, item: &ItemView, open_bins: &OpenBins) -> Decision {
        let dep = item.departure.expect("needs clairvoyance");
        open_bins
            .iter()
            .filter(|b| b.fits(item.size))
            .min_by_key(|b| {
                let latest = b
                    .items()
                    .iter()
                    .filter_map(|a| a.departure)
                    .max()
                    .unwrap_or(dep);
                ((latest - dep).abs(), std::cmp::Reverse(b.level()))
            })
            .map(|b| Decision::Existing(b.id()))
            .unwrap_or(Decision::NEW)
    }
}

fn main() {
    let engine = OnlineEngine::clairvoyant();

    // 1. The adversarial tail trap (k bins pinned open by tiny items).
    let trap = ff_tail_trap(8, 1000, 10);
    println!("FF tail trap (usage, lower is better):");
    for (name, run) in [
        (
            "first-fit",
            engine.run(&trap, &mut AnyFit::first_fit()).unwrap(),
        ),
        (
            "cbdt(rho=50)",
            engine
                .run(&trap, &mut ClassifyByDepartureTime::new(50))
                .unwrap(),
        ),
        (
            "deadline-aware-bf",
            engine.run(&trap, &mut DeadlineAwareBestFit).unwrap(),
        ),
    ] {
        run.packing.validate(&trap).unwrap();
        println!("  {:<18} {}", name, run.usage);
    }

    // 2. A realistic random trace.
    let trace = PoissonWorkload::new(0.5, 20_000).generate_seeded(3);
    let lb = lower_bounds(&trace);
    println!("\nPoisson trace ({} jobs), ratios vs LB3:", trace.len());
    let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
        Box::new(AnyFit::first_fit()),
        Box::new(ClassifyByDepartureTime::new(200)),
        Box::new(DeadlineAwareBestFit),
    ];
    for p in packers.iter_mut() {
        let run = engine.run(&trace, p.as_mut()).unwrap();
        run.packing.validate(&trace).unwrap();
        println!(
            "  {:<18} {:.3}",
            p.name(),
            run.usage as f64 / lb.best() as f64
        );
    }

    // 3. No custom cleverness escapes Theorem 3.
    let rep = run_adversary(&mut DeadlineAwareBestFit, 100_000, 161_803, 1);
    println!(
        "\nTheorem 3 adversary vs deadline-aware-bf: ratio {:.4} (phi = {:.4})",
        rep.ratio,
        golden_ratio()
    );
    assert!(rep.ratio >= golden_ratio() - 0.01);
}
