//! Capacity advisor: tune the classify-by-departure-time window on a
//! historical trace, stress the choice under estimate noise, and project
//! next week's bill at higher volume.
//!
//! Workflow an operator would actually run:
//! 1. fit a generative model to last week's trace (`TraceModel`),
//! 2. sweep ρ candidates on the history (`recommend_rho`),
//! 3. validate the winner under ±20% duration-estimate error,
//! 4. re-simulate at 2× volume to budget for growth.
//!
//! Run with `cargo run --release --example capacity_advisor`.

use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::sim::{optimal_reservation, recommend_rho, timeline::RunTimeline};
use clairvoyant_dbp::workloads::fit::TraceModel;
use clairvoyant_dbp::workloads::scenarios::CloudGamingWorkload;

fn main() {
    // 1. "Last week's" trace (one tick = one second, ~2h window).
    let history = CloudGamingWorkload::new(1_200, 7_200).generate_seeded(11);
    println!(
        "history: {} sessions, mu = {:.1}, span {:.1} h",
        history.len(),
        history.mu().unwrap(),
        history.span() as f64 / 3600.0
    );

    // 2. Sweep rho on the history under hourly billing.
    let billing = Billing::PerHour {
        ticks_per_hour: 3600,
        price: 0.50,
    };
    let rec = recommend_rho(&history, &[], billing).expect("advisor");
    println!("\nrho sweep (hourly billing):");
    for (rho, cost) in &rec.sweep {
        let marker = if *rho == rec.best_rho {
            "  <- best"
        } else {
            ""
        };
        println!("  rho = {rho:>6}  cost ${cost:.2}{marker}");
    }
    println!(
        "theoretical rho (sqrt(mu)*delta, worst-case optimal): {}",
        rec.theoretical_rho
    );

    // 3. Stress the winner under estimate noise.
    let mut tuned = ClassifyByDepartureTime::new(rec.best_rho);
    let clean =
        simulate(&history, &mut tuned, ClairvoyanceMode::Clairvoyant, billing).expect("sim");
    let noisy_est = NoisyEstimator::new(5, 0.20);
    let mut tuned2 = ClassifyByDepartureTime::new(rec.best_rho);
    let noisy = simulate(&history, &mut tuned2, noisy_est.mode(), billing).expect("sim");
    println!(
        "\nnoise stress (+-20% estimates): clean ${:.2} -> noisy ${:.2} ({:+.1}%)",
        clean.cost,
        noisy.cost,
        (noisy.cost - clean.cost) / clean.cost * 100.0
    );

    // Timeline diagnostics for the clean run.
    let tl = RunTimeline::new(&history, &clean.run);
    println!(
        "fleet peak {} servers; worst instantaneous utilization {:.1}%",
        tl.fleet.max(),
        tl.worst_utilization() * 100.0
    );

    // 3b. Capacity planning: how many servers to reserve at a 60%
    // discount vs on-demand?
    let (best_r, best_cost) = optimal_reservation(&clean.run, 0.40 / 3600.0, 1.0 / 3600.0);
    println!(
        "reservation advisor: reserve {best_r} servers -> blended cost ${best_cost:.2}\n                     (vs ${:.2} all on-demand)",
        clairvoyant_dbp::sim::Billing::Reserved {
            reserved: 0,
            reserved_price: 0.40 / 3600.0,
            on_demand_price: 1.0 / 3600.0,
        }
        .cost(&clean.run)
    );

    // 4. Project 2x volume with the fitted model.
    let model = TraceModel::fit(&history).expect("nonempty");
    let projected = model.scaled(7_200, 2.0).generate_seeded(12);
    let mut tuned3 = ClassifyByDepartureTime::new(rec.best_rho);
    let grown = simulate(
        &projected,
        &mut tuned3,
        ClairvoyanceMode::Clairvoyant,
        billing,
    )
    .expect("sim");
    println!(
        "\n2x volume projection: {} sessions -> cost ${:.2} ({:.2}x of today)",
        projected.len(),
        grown.cost,
        grown.cost / clean.cost
    );
}
