//! # clairvoyant-dbp
//!
//! A production-quality Rust implementation of **Clairvoyant MinUsageTime
//! Dynamic Bin Packing** — the job-scheduling / server-acquisition model of
//! *Ren & Tang, "Clairvoyant Dynamic Bin Packing for Job Scheduling with
//! Minimum Server Usage Time", SPAA 2016* — together with every baseline
//! it compares against, exact reference solvers, workload generators, a
//! cloud-cost simulator, and the harness that regenerates the paper's
//! figures.
//!
//! ## The problem in one paragraph
//!
//! Jobs (items) with known sizes arrive over time and must immediately be
//! placed on servers (unit-capacity bins) without migration; each server
//! is paid for exactly while it hosts at least one job. Minimize the total
//! server usage time. In the *clairvoyant* setting a job's departure time
//! is known when it is placed — true for cloud gaming sessions and
//! recurring analytics jobs — and the paper shows this knowledge buys
//! dramatically better competitive ratios than the non-clairvoyant
//! `μ + 4` of First Fit: `2√μ + 3` by classifying items on departure
//! times, `min_n μ^{1/n} + n + 3` by classifying on durations.
//!
//! ## Crate map
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`core`] | items, instances, exact accounting, level profiles, the online engine |
//! | [`algos`] | DDFF, Dual Coloring, exact solvers, Any Fit family, CBDT/CBD/combined, the Theorem 3 adversary |
//! | [`theory`] | every theorem's bound in closed form; Figure 8 generation |
//! | [`workloads`] | seedable generators (gaming, analytics, diurnal, adversarial) and trace I/O |
//! | [`interval`] | interval scheduling with bounded parallelism (unit demands) |
//! | [`multidim`] | the §6 multi-resource extension |
//! | [`flex`] | the §6 flexible-jobs extension (release times + deadlines) |
//! | [`sim`] | cloud renting-cost simulator, billing models, noisy clairvoyance |
//! | [`obs`] | packing-decision tracing, deterministic replay, time-series metrics |
//! | [`shard`] | sharded multi-fleet streaming: routed partitioning, worker threads, deterministic merge |
//! | [`telemetry`] | latency/work histograms, span traces, Prometheus exposition, stream profiling |
//! | [`audit`] | invariant checker, differential fuzzer, counterexample shrinker, regression fixtures |
//! | [`resilience`] | checkpoint/restore, fault injection, recovery policies, chaos simulation |
//! | [`serve`] | long-running multi-tenant scheduling service: JSON-over-TCP protocol, checkpointed restarts, load shedding |
//!
//! ## Quickstart
//!
//! ```
//! use clairvoyant_dbp::prelude::*;
//!
//! // Three half-size jobs; departures are known at arrival.
//! let jobs = Instance::from_triples(&[
//!     (0.5, 0, 100),  // (size, arrival, departure)
//!     (0.5, 10, 90),
//!     (0.5, 20, 500),
//! ]);
//!
//! // Pack them online with classify-by-departure-time First Fit.
//! let mut packer = ClassifyByDepartureTime::new(100);
//! let run = OnlineEngine::clairvoyant().run(&jobs, &mut packer).unwrap();
//! run.packing.validate(&jobs).unwrap();
//!
//! // Compare against the Proposition 3 lower bound.
//! let lb = lower_bounds(&jobs);
//! assert!(run.usage >= lb.best());
//! ```

pub use dbp_algos as algos;
pub use dbp_audit as audit;
pub use dbp_core as core;
pub use dbp_flex as flex;
pub use dbp_interval as interval;
pub use dbp_multidim as multidim;
pub use dbp_obs as obs;
pub use dbp_resilience as resilience;
pub use dbp_serve as serve;
pub use dbp_shard as shard;
pub use dbp_sim as sim;
pub use dbp_telemetry as telemetry;
pub use dbp_theory as theory;
pub use dbp_workloads as workloads;

/// The most commonly used types and functions, for glob import.
pub mod prelude {
    pub use dbp_algos::adversary::{golden_ratio, run_adversary};
    pub use dbp_algos::exact::{min_usage_packing, opt_total};
    pub use dbp_algos::offline::{ArrivalFirstFit, DualColoring, DurationDescendingFirstFit};
    pub use dbp_algos::online::{
        AnyFit, ClassifyByDepartureTime, ClassifyByDuration, CombinedClassify, FitRule,
        HybridFirstFit,
    };
    pub use dbp_core::accounting::{lower_bounds, LowerBounds};
    pub use dbp_core::online::ClairvoyanceMode;
    pub use dbp_core::{
        Instance, Interval, Item, ItemId, NoopObserver, OfflinePacker, OnlineEngine, OnlinePacker,
        OnlineRun, PackEvent, PackObserver, Packing, Size, Tee, Time,
    };
    pub use dbp_obs::{MetricsAggregator, Replay, TraceWriter};
    pub use dbp_resilience::{simulate_chaos, ChaosConfig, FaultPlan, RecoveryPolicy};
    pub use dbp_shard::{ShardConfig, ShardRouter, ShardedSession};
    pub use dbp_sim::{simulate, Billing, NoisyEstimator};
    pub use dbp_workloads::Workload;
}
