//! `dbp` — command-line interface to the clairvoyant-dbp toolkit.
//!
//! ```text
//! dbp generate --workload gaming --n 500 --seed 7 --out trace.csv
//! dbp bounds   --trace trace.csv
//! dbp pack     --trace trace.csv --algo cbdt
//! dbp compare  --trace trace.csv
//! dbp chaos    --cases 200 --seed 3
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! keeps the tree to rand/serde/crossbeam/parking_lot/proptest/criterion);
//! flags are `--key value` pairs after a subcommand.
//!
//! Exit codes are stable and scriptable:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 2 | usage error (bad subcommand, flag, or value) |
//! | 3 | I/O or trace-format error |
//! | 4 | runtime error (engine failure, packing validation) |
//! | 5 | audit / chaos / shard-audit / telemetry violations found |

use clairvoyant_dbp::core::accounting::lower_bounds;
use clairvoyant_dbp::core::stats::instance_stats;
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::random::{PoissonWorkload, UniformWorkload};
use clairvoyant_dbp::workloads::scenarios::{
    AnalyticsWorkload, CloudGamingWorkload, DiurnalWorkload, SpikeWorkload,
};
use clairvoyant_dbp::workloads::trace;
use dbp_bench::registry::{offline_packer, online_packer, AlgoParams, OFFLINE_ALGOS, ONLINE_ALGOS};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
dbp — Clairvoyant MinUsageTime Dynamic Bin Packing toolkit

USAGE:
  dbp generate --workload <uniform|poisson|gaming|analytics|diurnal|spike>
               [--n <items>] [--seed <u64>] [--out <file>]
  dbp bounds   --trace <file>
  dbp pack     --trace <file> --algo <name> [--offline] [--non-clairvoyant]
               [--shards <k>] [--router <hash[:seed]|size|tag[:rho]>]
               [--threads <n>] [--trace-out <file.jsonl>] [--metrics <file.csv>]
               [--dims <1-4>]
  dbp replay   --trace <file.jsonl>
  dbp report   --trace <file> --algo <name> [--offline]
  dbp compare  --trace <file>
  dbp bench    [--workload <kind>] [--n <items>] [--seeds <n>] [--threads <n>]
               [--dims <1-4>]
               | --check <BENCH_*.json> [--tolerance <pct>] [--inject <pct>]
               [--report <file>]
  dbp audit    [--cases <n>] [--seed <u64>] [--max-items <n>] [--threads <n>]
               [--no-offline] [--fixtures-dir <dir>] [--self-test]
               [--dims <1-4>]
  dbp chaos    [--cases <n>] [--seed <u64>] [--max-items <n>] [--threads <n>]
               [--fixtures-dir <dir>] [--self-test]
  dbp shard-audit [--cases <n>] [--seed <u64>] [--max-items <n>]
               [--threads <n>] [--fixtures-dir <dir>]
  dbp telemetry-audit [--cases <n>] [--seed <u64>] [--max-items <n>]
               [--threads <n>]
  dbp prof     [--trace <file> | --workload <kind> --n <items> --seed <u64>]
               [--algo <name>] [--batch <items>] [--sampled]
               [--out-folded <file>] [--out-chrome <file>] [--out-prom <file>]
               [--self-test [--shards <k>]]
  dbp serve    [--addr <host:port>] [--port-file <file>] [--shards <k>]
               [--algo <name>] [--router <hash[:seed]|size|tag[:rho]>]
               [--fleet-cap <bins>] [--checkpoint-dir <dir>]
               [--checkpoint-every <decisions>] [--conn-workers <n>]
               [--wal-dir <dir>] [--fsync <always|interval[:ms]|never>]
               [--delta <ticks>] [--mu <ratio>]
  dbp serve-torture [--self-test] [--jobs <n>] [--stride <k>]
               [--checkpoint-every <decisions>] [--algo <name>]
               [--fsync <policy>] [--scratch <dir>]
  dbp serve-bench [--mode <short|full>] [--out <BENCH_serve.json>]
  dbp algos

Online algorithms take their Theorem 4/5 optimal parameters from the
trace's measured Δ and μ. `dbp algos` lists the rosters.

`pack --trace-out` streams every packing decision as JSONL;
`pack --metrics` exports the time-series metrics (active bins, S(t),
⌈S(t)⌉, instantaneous ratio vs LB3) as CSV. `replay` reconstructs a
packing from a JSONL decision trace and verifies it bit-for-bit.

`audit` fuzzes the full roster with seeded random + adversarial
instances, checking every invariant (capacity, no-migration, usage
accounting, the Prop 1-3 bound chain, Theorem 4/5 ceilings) and
cross-checking batch vs streaming vs replay vs the reference engine.
Failures are shrunk to minimal instances and written as JSON fixtures
under --fixtures-dir (default audit-fixtures). `audit --self-test`
injects known-faulty packers and proves the catch -> shrink -> persist
pipeline. See docs/auditing.md.

`--dims D` switches `pack`, `bench`, and `audit` onto the dynamic
*vector* bin packing stack (per-axis feasibility, D <= 4 resource
axes). `pack --dims D` lifts the scalar trace onto D identical axes and
streams it through the vector roster (the Any-Fit and classify families
plus the dot-product and max-norm heuristics); `bench --dims D` sweeps
that roster over seeded correlated D-axis workloads; `audit --dims D`
runs the vector invariant family — indexed vs linear-scan foils,
per-axis capacity, the max-axis lower bound, dim-1 scalar equivalence,
and batch-reference differentials — shrinking failures to vector
fixtures. See docs/vector-packing.md.

`pack --shards K` streams the trace through a sharded fleet of K
independent sessions partitioned by `--router` (default `hash`), with
`--threads` worker threads, and prints the deterministically merged
fleet report plus a per-shard table. Sharding trades packing quality
(each shard rounds its own load up) for scan-bounded throughput; see
docs/performance.md.

`bench` evaluates the online roster over seeded workload replicas on
the panic-isolated experiment grid (`--threads` workers; a poisoned
cell reports in place instead of aborting the sweep).

`bench --check` is the perf-regression gate: it re-runs every cell a
checked-in `BENCH_{engine,shard,telemetry}.json` baseline recorded
(same workload recipe, fresh timings) and exits 5 when any cell's
throughput fell more than `--tolerance` percent (default 25) below the
baseline. `--inject` slows the fresh runs synthetically to prove the
gate trips; `--report` writes the per-cell comparison JSON. Run it from
a release build — debug timings regress against any release baseline.

`shard-audit` sweeps the sharded coordinator against plain-session
references: per-shard bit-identity, exactly-once item accounting, and
the merged run's coverage + capacity on the original instance, with
failures shrunk and persisted like `audit`.

`prof` drives one online algorithm over a trace (or generated workload)
under full telemetry and prints a percentile table: deterministic work
histograms (candidates scanned, open bins, bin lifetimes) and wall-clock
latency histograms (decide, departures, finish). `--sampled` times one
arrival in 64 instead of all — production overhead, coarser
percentiles. `--out-folded` writes flamegraph-ready folded stacks,
`--out-chrome` a chrome://tracing JSON, `--out-prom` a Prometheus text
exposition. `prof --self-test` proves the determinism contract: work
histograms bit-identical across two replays, and fleet-merged work
histograms identical for worker counts {1, K}; exits 5 on any mismatch.

`telemetry-audit` sweeps the same contract across the roster, routers,
and seeded instances (the audit-family version of `prof --self-test`).

`serve` boots the long-running multi-tenant scheduling service
(dbp-serve): line-delimited JSON over TCP, per-tenant accounting, a
global `--fleet-cap` that sheds (typed rejects) instead of erroring,
periodic checkpoints under `--checkpoint-dir`, and bit-identical
restore after a crash. `--addr host:0` picks a free port; with
`--port-file` the bound address is also written to a file for scripts.
`GET /metrics` on the same port scrapes the Prometheus exposition.
Drive it with the `load_serve` generator; see docs/serving.md.

With `--wal-dir` the service also write-ahead-logs every decision
(checksummed frames, `--fsync` policy, segments rotated and pruned at
checkpoints): restart = newest good checkpoint + WAL replay, so every
acknowledged decision survives `kill -9`, bit-identically.
`serve-torture` proves it — a deterministic sweep that injects an IO
failure at every WAL/checkpoint IO boundary in turn (`--stride` to
sample) and checks recovery from each prefix plus corruption drills
(torn tails, bit flips, CRC-consistent rewrites); exit 5 on any
violation. The environment knob DBP_CRASH_AT_IO=<n> aborts the whole
process at global IO op n instead (the CI kill-grade drill).
`serve-bench` records the fsync-policy cost table (BENCH_serve.json),
gateable with `bench --check`. See docs/serving.md.

`chaos` sweeps the roster under seeded fault injection (spot
revocations, rack failures, crashes) with rotating recovery and
admission policies, checking exactly-once job accounting, post-recovery
capacity, and checkpoint/resume bit-identity. `chaos --self-test` proves
the three resilience pillars on built-in scenarios. See
docs/resilience.md.

Exit codes: 0 ok, 2 usage, 3 I/O or trace format, 4 runtime/validation,
5 audit, chaos, shard-audit, telemetry-audit, serve-torture, prof
--self-test, or bench --check violations.";

/// A classified CLI failure; the variant fixes the process exit code.
enum CliError {
    /// Bad subcommand, flag, or flag value → exit 2.
    Usage(String),
    /// Filesystem or trace-format failure → exit 3.
    Io(String),
    /// Engine or validation failure at runtime → exit 4.
    Runtime(String),
    /// The sweep ran and found real violations → exit 5.
    Violations(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Runtime(_) => 4,
            CliError::Violations(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Runtime(m)
            | CliError::Violations(m) => m,
        }
    }
}

fn io_err(e: impl std::fmt::Display) -> CliError {
    CliError::Io(e.to_string())
}

fn runtime_err(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => generate(&flags),
        "bounds" => bounds(&flags),
        "pack" => pack(&flags),
        "replay" => replay(&flags),
        "report" => report(&flags),
        "compare" => compare(&flags),
        "bench" => bench(&flags),
        "audit" => audit(&flags),
        "chaos" => chaos(&flags),
        "shard-audit" => shard_audit(&flags),
        "telemetry-audit" => telemetry_audit(&flags),
        "prof" => prof(&flags),
        "serve" => serve(&flags),
        "serve-torture" => serve_torture(&flags),
        "serve-bench" => serve_bench(&flags),
        "algos" => {
            println!("online:  {}", ONLINE_ALGOS.join(", "));
            println!("offline: {}", OFFLINE_ALGOS.join(", "));
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::from(e.code())
        }
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(key) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got {key:?}"));
        };
        // Boolean flags: next token is another flag or absent.
        let value = match it.clone().next() {
            Some(v) if !v.starts_with("--") => {
                it.next();
                v.clone()
            }
            _ => "true".to_string(),
        };
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --{key} value {v:?}"))),
    }
}

/// Parses `--threads`, rejecting 0 up front: the grid runner and the
/// shard coordinator would silently clamp it to 1, which is never what
/// a script asking for zero threads meant — fail loudly as a usage
/// error instead.
fn get_threads(flags: &HashMap<String, String>) -> Result<Option<usize>, CliError> {
    match flags.get("threads") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err(CliError::Usage(
                "--threads must be at least 1 (0 would be silently clamped)".into(),
            )),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(CliError::Usage(format!("bad --threads value {v:?}"))),
        },
    }
}

/// The clairvoyance mode each roster algorithm expects: the paper's
/// clairvoyant family needs departure times, the classical family must
/// not see them.
/// Parses a present `--dims` flag: the number of resource axes for the
/// vector stack, `1..=MAX_DIMS`.
fn parse_dims(flags: &HashMap<String, String>) -> Result<usize, CliError> {
    use clairvoyant_dbp::core::MAX_DIMS;
    let dims: usize = get_num(flags, "dims", 1)?;
    if (1..=MAX_DIMS).contains(&dims) {
        Ok(dims)
    } else {
        Err(CliError::Usage(format!(
            "--dims must be between 1 and {MAX_DIMS}, got {dims}"
        )))
    }
}

fn clair_mode(algo: &str) -> ClairvoyanceMode {
    if matches!(algo, "cbdt" | "cbd" | "combined") {
        ClairvoyanceMode::Clairvoyant
    } else {
        ClairvoyanceMode::NonClairvoyant
    }
}

fn load_trace(flags: &HashMap<String, String>) -> Result<Instance, CliError> {
    let path = get(flags, "trace")?;
    trace::load(path).map_err(io_err)
}

/// Checks an `--algo` value against a roster before handing it to the
/// registry (whose lookup panics on unknown names).
fn known_algo(algo: &str, roster: &[&str], what: &str) -> Result<(), CliError> {
    if roster.contains(&algo) {
        Ok(())
    } else {
        Err(CliError::Usage(format!(
            "unknown {what} algorithm {algo:?}; available: {}",
            roster.join(", ")
        )))
    }
}

/// Builds the named workload's seeded instance, or `None` for an
/// unknown kind (shared by `generate` and `bench`).
fn make_instance(kind: &str, n: usize, seed: u64) -> Option<Instance> {
    Some(match kind {
        "uniform" => UniformWorkload::new(n).generate_seeded(seed),
        "poisson" => PoissonWorkload::new(0.5, (n as i64 * 2).max(10)).generate_seeded(seed),
        "gaming" => CloudGamingWorkload::new(n, (n as i64 * 20).max(3600)).generate_seeded(seed),
        "analytics" => AnalyticsWorkload::new((n / 10).max(1), 1000, 10).generate_seeded(seed),
        "diurnal" => DiurnalWorkload::new(n, 86_400, 1, 0.8).generate_seeded(seed),
        "spike" => SpikeWorkload::new((n / 50).max(1), 50, 1000).generate_seeded(seed),
        _ => return None,
    })
}

fn generate(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let kind = get(flags, "workload")?;
    let n: usize = get_num(flags, "n", 500)?;
    let seed: u64 = get_num(flags, "seed", 0)?;
    let inst = make_instance(kind, n, seed)
        .ok_or_else(|| CliError::Usage(format!("unknown workload {kind:?}")))?;
    match flags.get("out") {
        Some(path) => {
            trace::save(&inst, path).map_err(io_err)?;
            eprintln!("wrote {} items to {path}", inst.len());
        }
        None => print!("{}", trace::to_string(&inst)),
    }
    Ok(())
}

fn bounds(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let inst = load_trace(flags)?;
    let stats = instance_stats(&inst).ok_or_else(|| runtime_err("empty trace"))?;
    let lb = lower_bounds(&inst);
    println!("items:            {}", stats.items);
    println!("span:             {} ticks", stats.span);
    println!(
        "durations:        {} .. {} (mu = {:.2})",
        stats.min_duration, stats.max_duration, stats.mu
    );
    println!(
        "sizes:            {:.4} .. {:.4} (mean {:.4})",
        stats.min_size, stats.max_size, stats.mean_size
    );
    println!(
        "peak load:        {:.2} (needs >= {} servers at peak)",
        stats.peak_load, stats.peak_server_floor
    );
    println!("peak concurrency: {} items", stats.peak_concurrency);
    println!("LB demand (P1):   {:.1} ticks", lb.demand.ticks_f64());
    println!("LB span   (P2):   {} ticks", lb.span);
    println!("LB3       (P3):   {} ticks  <- tightest", lb.lb3);
    Ok(())
}

fn pack(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let inst = load_trace(flags)?;
    let algo = get(flags, "algo")?;
    if flags.contains_key("dims") {
        return pack_vector(flags, &inst, algo);
    }
    let lb = lower_bounds(&inst);
    let offline = flags.contains_key("offline");
    known_algo(
        algo,
        if offline { OFFLINE_ALGOS } else { ONLINE_ALGOS },
        if offline { "offline" } else { "online" },
    )?;
    if flags.contains_key("shards") {
        if offline {
            return Err(CliError::Usage(
                "--shards streams online sessions; it cannot be combined with --offline".into(),
            ));
        }
        return pack_sharded(flags, &inst, algo);
    }

    // Optional observers: a JSONL decision trace and/or a metrics
    // time series. Both are `Option<_>` observers composed with `Tee`,
    // so the plain path stays a plain engine run. The drain below pairs
    // each observer back with its path via the same flag lookup.
    let writer = match flags.get("trace-out") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| io_err(format!("cannot create {path}: {e}")))?;
            Some(dbp_obs::TraceWriter::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let mut obs = Tee(
        writer,
        flags
            .contains_key("metrics")
            .then(dbp_obs::MetricsAggregator::new),
    );

    let (name, usage, bins) = if offline {
        let packer = offline_packer(algo);
        let packing = packer.pack(&inst);
        packing.validate(&inst).map_err(runtime_err)?;
        dbp_obs::emit_packing(&inst, &packing, &mut obs).map_err(runtime_err)?;
        (
            packer.name().to_string(),
            packing.total_usage(&inst),
            packing.num_bins(),
        )
    } else {
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        let mode = if flags.contains_key("non-clairvoyant") {
            ClairvoyanceMode::NonClairvoyant
        } else {
            ClairvoyanceMode::Clairvoyant
        };
        let run = OnlineEngine::new(mode)
            .run_observed(&inst, packer.as_mut(), &mut obs)
            .map_err(runtime_err)?;
        run.packing.validate(&inst).map_err(runtime_err)?;
        (packer.name(), run.usage, run.bins_opened())
    };
    println!("algorithm:   {name}");
    println!("usage:       {usage} ticks");
    println!("bins:        {bins}");
    println!("ratio vs LB: {:.4}", usage as f64 / lb.best().max(1) as f64);
    if let (Some(w), Some(path)) = (obs.0, flags.get("trace-out")) {
        let lines = w.lines_written();
        w.finish()
            .map_err(|e| io_err(format!("writing {path}: {e}")))?;
        eprintln!("trace:       {lines} events -> {path}");
    }
    if let (Some(agg), Some(path)) = (obs.1, flags.get("metrics")) {
        let report = agg.report();
        std::fs::write(path, report.to_csv())
            .map_err(|e| io_err(format!("writing {path}: {e}")))?;
        eprintln!(
            "metrics:     {} bins closed -> {path} (mean utilization {:.1}%)",
            report.bins_closed,
            report.mean_utilization * 100.0
        );
    }
    Ok(())
}

/// The `pack --dims D` path: lift the scalar trace onto `D` identical
/// axes and stream it through the vector roster, optionally writing the
/// per-axis JSONL decision trace via `--trace-out`.
fn pack_vector(
    flags: &HashMap<String, String>,
    inst: &Instance,
    algo: &str,
) -> Result<(), CliError> {
    use clairvoyant_dbp::core::{VecInstance, VecOnlineEngine};
    use dbp_bench::registry::{vector_packer, VECTOR_ALGOS};

    let dims = parse_dims(flags)?;
    known_algo(algo, VECTOR_ALGOS, "vector")?;
    for unsupported in ["offline", "shards", "metrics"] {
        if flags.contains_key(unsupported) {
            return Err(CliError::Usage(format!(
                "--{unsupported} is not supported with --dims (vector packing is \
                 streaming-only; metrics aggregation is scalar-only)"
            )));
        }
    }

    let vinst = VecInstance::lift(inst, dims);
    let params = AlgoParams::from_vec_instance(&vinst);
    let mut packer = vector_packer(algo, params);
    let engine = if flags.contains_key("non-clairvoyant") {
        VecOnlineEngine::non_clairvoyant()
    } else {
        VecOnlineEngine::clairvoyant()
    };
    let run = match flags.get("trace-out") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| io_err(format!("cannot create {path}: {e}")))?;
            let mut writer = dbp_obs::VecTraceWriter::new(std::io::BufWriter::new(file));
            let run = engine
                .run_observed(&vinst, packer.as_mut(), &mut writer)
                .map_err(runtime_err)?;
            let lines = writer.lines_written();
            writer
                .finish()
                .map_err(|e| io_err(format!("writing {path}: {e}")))?;
            eprintln!("trace:       {lines} events -> {path}");
            run
        }
        None => engine.run(&vinst, packer.as_mut()).map_err(runtime_err)?,
    };
    vinst.validate_packing(&run.packing).map_err(runtime_err)?;
    let lb = vinst.vector_lower_bound();
    println!("algorithm:   {} ({dims} axes)", packer.name());
    println!("usage:       {} ticks", run.usage);
    println!("bins:        {}", run.bins_opened());
    println!(
        "ratio vs LB: {:.4} (max-axis bound)",
        run.usage as f64 / lb.max(1) as f64
    );
    Ok(())
}

/// The `pack --shards K` path: stream the trace through a sharded
/// fleet, verify the merged run against the full instance, and print
/// the fleet report plus a per-shard table. The observer flags keep
/// their unsharded meaning — `--trace-out` writes the shard-tagged
/// JSONL decision stream, `--metrics` the merged time series.
fn pack_sharded(
    flags: &HashMap<String, String>,
    inst: &Instance,
    algo: &str,
) -> Result<(), CliError> {
    let shards: usize = get_num(flags, "shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let router = match flags.get("router") {
        Some(spec) => ShardRouter::parse(spec).map_err(|e| CliError::Usage(e.to_string()))?,
        None => ShardRouter::hash(),
    };
    let mode = if flags.contains_key("non-clairvoyant") {
        ClairvoyanceMode::NonClairvoyant
    } else {
        ClairvoyanceMode::Clairvoyant
    };
    let cfg = ShardConfig {
        threads: get_threads(flags)?,
        collect_metrics: flags.contains_key("metrics"),
        collect_events: flags.contains_key("trace-out"),
        ..ShardConfig::new(shards, router)
    };
    let lb = lower_bounds(inst);
    let params = AlgoParams::from_instance(inst);

    // The streaming contract wants non-decreasing arrivals; trace files
    // carry no such promise, so order the stream here.
    let mut items = inst.items().to_vec();
    items.sort_by_key(|i| (i.arrival(), i.id()));

    let packers = (0..shards).map(|_| online_packer(algo, params)).collect();
    let mut fleet = ShardedSession::new(mode, packers, cfg).map_err(|e| match e {
        clairvoyant_dbp::core::DbpError::InvalidParameter { .. } => CliError::Usage(e.to_string()),
        _ => runtime_err(e),
    })?;
    for item in &items {
        fleet.arrive(item).map_err(runtime_err)?;
    }
    let report = fleet.finish().map_err(runtime_err)?;
    let merged = report.merged_run();
    merged.packing.validate(inst).map_err(runtime_err)?;

    println!("algorithm:   {algo} (sharded)");
    println!(
        "fleet:       {} shards on {} workers, router {}",
        report.shards, report.workers, report.router
    );
    println!("usage:       {} ticks", report.usage);
    println!("bins:        {}", report.bins_opened);
    println!("peak open:   {} bins fleet-wide", report.peak_open_bins);
    println!(
        "ratio vs LB: {:.4}",
        report.usage as f64 / lb.best().max(1) as f64
    );
    println!(
        "\n{:<6} {:>8} {:>12} {:>6} {:>10}",
        "shard", "items", "usage", "bins", "peak_open"
    );
    for s in &report.slices {
        println!(
            "{:<6} {:>8} {:>12} {:>6} {:>10}",
            s.shard,
            s.items,
            s.usage(),
            s.run.bins_opened(),
            s.peak_open_bins
        );
    }
    let (mean_items, imbalance) = report.balance();
    println!("\nbalance:     {mean_items:.1} items/shard mean, {imbalance:.2}x max/mean");

    if let Some(path) = flags.get("trace-out") {
        let jsonl = report
            .tagged_jsonl()
            .ok_or_else(|| runtime_err("event collection produced no trace"))?;
        std::fs::write(path, &jsonl).map_err(|e| io_err(format!("writing {path}: {e}")))?;
        eprintln!("trace:       {} events -> {path}", jsonl.lines().count());
    }
    if let (Some(metrics), Some(path)) = (&report.metrics, flags.get("metrics")) {
        std::fs::write(path, metrics.to_csv())
            .map_err(|e| io_err(format!("writing {path}: {e}")))?;
        eprintln!(
            "metrics:     {} bins closed -> {path} (mean utilization {:.1}%)",
            metrics.bins_closed,
            metrics.mean_utilization * 100.0
        );
    }
    Ok(())
}

/// Reconstructs a packing from a JSONL decision trace (written by
/// `pack --trace-out`) and verifies it: the rebuilt packing must be
/// feasible for the rebuilt instance and its usage must match the
/// closed-bin episodes exactly.
fn replay(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let path = get(flags, "trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| io_err(format!("cannot read {path}: {e}")))?;
    let replay = dbp_obs::replay_jsonl(&text).map_err(io_err)?;
    replay.verify().map_err(runtime_err)?;
    let lb = lower_bounds(&replay.instance);
    println!("events file: {path}");
    println!("items:       {}", replay.instance.len());
    println!("usage:       {} ticks", replay.run.usage);
    // Offline traces model an idle-then-reused bin as several episodes
    // of one id, so count episodes (== bins for online traces).
    println!("episodes:    {}", replay.run.bins_opened());
    println!(
        "ratio vs LB: {:.4}",
        replay.run.usage as f64 / lb.best().max(1) as f64
    );
    println!("verified:    packing feasible, usage matches bin episodes");
    Ok(())
}

fn report(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let inst = load_trace(flags)?;
    let algo = get(flags, "algo")?;
    let packing = if flags.contains_key("offline") {
        known_algo(algo, OFFLINE_ALGOS, "offline")?;
        offline_packer(algo).pack(&inst)
    } else {
        known_algo(algo, ONLINE_ALGOS, "online")?;
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        OnlineEngine::clairvoyant()
            .run(&inst, packer.as_mut())
            .map_err(runtime_err)?
            .packing
    };
    packing.validate(&inst).map_err(runtime_err)?;
    let rows = clairvoyant_dbp::core::stats::packing_report(&inst, &packing);
    println!(
        "{:<6} {:>6} {:>10} {:>12} {:>10}",
        "bin", "items", "span", "utilization", "gap_ticks"
    );
    let mut total_util = 0.0;
    for r in &rows {
        println!(
            "{:<6} {:>6} {:>10} {:>11.1}% {:>10}",
            r.bin.0,
            r.items,
            r.span,
            r.utilization * 100.0,
            r.gap_ticks
        );
        total_util += r.utilization;
    }
    println!(
        "
{} bins, mean utilization {:.1}%, total usage {}",
        rows.len(),
        total_util / rows.len().max(1) as f64 * 100.0,
        packing.total_usage(&inst)
    );
    Ok(())
}

/// Evaluates the online roster over seeded workload replicas on the
/// panic-isolated experiment grid (`dbp bench`). `--threads` goes
/// straight to [`run_grid_checked`], so a poisoned cell reports in its
/// own row instead of aborting the sweep.
fn bench(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use dbp_bench::grid::{run_grid_checked, GridCell};

    if flags.contains_key("check") {
        return bench_check(flags);
    }
    if flags.contains_key("dims") {
        return bench_vector_grid(flags);
    }

    let kind = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("uniform");
    let n: usize = get_num(flags, "n", 400)?;
    let seeds: u64 = get_num(flags, "seeds", 3)?;
    if seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    let threads = get_threads(flags)?;
    if make_instance(kind, 1, 0).is_none() {
        return Err(CliError::Usage(format!("unknown workload {kind:?}")));
    }

    let cells: Vec<GridCell<(&str, u64)>> = ONLINE_ALGOS
        .iter()
        .flat_map(|algo| {
            (0..seeds).map(move |seed| GridCell {
                label: format!("{algo}/seed{seed}"),
                input: (*algo, seed),
            })
        })
        .collect();
    println!(
        "bench: {} online algos x {seeds} seeds on {kind}(n = {n}), {} cells",
        ONLINE_ALGOS.len(),
        cells.len()
    );
    let results = run_grid_checked(cells, threads, |&(algo, seed)| {
        let inst = make_instance(kind, n, seed).expect("workload kind validated above");
        let lb = lower_bounds(&inst).best().max(1);
        let params = AlgoParams::from_instance(&inst);
        let mut packer = online_packer(algo, params);
        let run = OnlineEngine::new(clair_mode(algo))
            .run(&inst, packer.as_mut())
            .expect("roster run");
        run.packing.validate(&inst).expect("roster packing");
        (run.usage, run.bins_opened(), run.usage as f64 / lb as f64)
    });

    print_bench_grid(&results, ONLINE_ALGOS, "LB3")
}

/// The `bench --dims D` path: the vector roster over seeded correlated
/// `D`-axis workload replicas, on the same panic-isolated grid.
fn bench_vector_grid(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::core::VecOnlineEngine;
    use clairvoyant_dbp::workloads::random::DurationDist;
    use clairvoyant_dbp::workloads::vector::{CorrelatedVectorWorkload, VectorWorkload};
    use dbp_bench::grid::{run_grid_checked, GridCell};
    use dbp_bench::registry::{vector_packer, VECTOR_ALGOS};

    let dims = parse_dims(flags)?;
    let n: usize = get_num(flags, "n", 400)?;
    let seeds: u64 = get_num(flags, "seeds", 3)?;
    if seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    let threads = get_threads(flags)?;

    let cells: Vec<GridCell<(&str, u64)>> = VECTOR_ALGOS
        .iter()
        .flat_map(|algo| {
            (0..seeds).map(move |seed| GridCell {
                label: format!("{algo}/seed{seed}"),
                input: (*algo, seed),
            })
        })
        .collect();
    println!(
        "bench: {} vector algos x {seeds} seeds on corr-vec(dims = {dims}, n = {n}), {} cells",
        VECTOR_ALGOS.len(),
        cells.len()
    );
    let results = run_grid_checked(cells, threads, move |&(algo, seed)| {
        let means = [0.3, 0.2, 0.45, 0.15];
        let inst = CorrelatedVectorWorkload::new(n, &means[..dims], 0.5, 0.6)
            .expect("valid vector workload")
            .with_durations(DurationDist::uniform(1, 40).expect("valid uniform"))
            .with_arrival_span((n as i64).max(10))
            .generate_seeded(seed);
        let lb = inst.vector_lower_bound().max(1);
        let params = AlgoParams::from_vec_instance(&inst);
        let mut packer = vector_packer(algo, params);
        let engine = if matches!(algo, "cbdt" | "cbd") {
            VecOnlineEngine::clairvoyant()
        } else {
            VecOnlineEngine::non_clairvoyant()
        };
        let run = engine.run(&inst, packer.as_mut()).expect("roster run");
        inst.validate_packing(&run.packing).expect("roster packing");
        (run.usage, run.bins_opened(), run.usage as f64 / lb as f64)
    });

    print_bench_grid(&results, VECTOR_ALGOS, "max-axis LB")
}

/// One checked bench-grid cell: `(usage, bins, ratio)` or the panic
/// that poisoned it.
type BenchCell =
    dbp_bench::grid::GridResult<Result<(u128, usize, f64), dbp_bench::grid::CellPanic>>;

/// Shared table printer for the bench grids: per-cell rows, per-algo
/// mean ratios against the named lower bound, and the poisoned-cell
/// verdict.
fn print_bench_grid(results: &[BenchCell], roster: &[&str], bound: &str) -> Result<(), CliError> {
    println!(
        "\n{:<26} {:>12} {:>6} {:>12}",
        "cell",
        "usage",
        "bins",
        format!("vs {bound}")
    );
    let mut poisoned = Vec::new();
    for r in results {
        match &r.output {
            Ok((usage, bins, ratio)) => {
                println!("{:<26} {:>12} {:>6} {:>12.4}", r.label, usage, bins, ratio)
            }
            Err(p) => {
                println!("{:<26} {:>12}", r.label, "PANICKED");
                poisoned.push(p.to_string());
            }
        }
    }
    for algo in roster {
        let ratios: Vec<f64> = results
            .iter()
            .filter(|r| r.label.starts_with(&format!("{algo}/")))
            .filter_map(|r| r.output.as_ref().ok().map(|(_, _, ratio)| *ratio))
            .collect();
        if !ratios.is_empty() {
            println!(
                "{algo}: mean ratio vs {bound} = {:.4} over {} seeds",
                ratios.iter().sum::<f64>() / ratios.len() as f64,
                ratios.len()
            );
        }
    }
    if poisoned.is_empty() {
        Ok(())
    } else {
        Err(CliError::Runtime(format!(
            "{} poisoned cells: {}",
            poisoned.len(),
            poisoned.join("; ")
        )))
    }
}

/// The perf-regression gate (`dbp bench --check BENCH_*.json`): re-run
/// every cell a checked-in benchmark baseline recorded and exit 5 when
/// any cell's throughput fell more than `--tolerance` percent below it.
/// `--inject <pct>` synthetically slows the fresh runs (the gate's own
/// self-proof); `--report <file>` writes the comparison JSON (the CI
/// artifact).
fn bench_check(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use dbp_bench::check::{parse_baseline, run_check};

    let path = get(flags, "check")?;
    if path == "true" {
        return Err(CliError::Usage(
            "--check needs a baseline path: dbp bench --check BENCH_shard.json".into(),
        ));
    }
    let tolerance: f64 = get_num(flags, "tolerance", 25.0)?;
    let inject: f64 = get_num(flags, "inject", 0.0)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| io_err(format!("cannot read {path}: {e}")))?;
    // Serving-path baselines (`dbp-serve/...` schemas) re-run through
    // the Service itself; engine baselines through dbp-bench.
    let schema_tag = clairvoyant_dbp::obs::json::parse(&text)
        .ok()
        .and_then(|root| {
            root.get("schema")
                .and_then(|s| s.as_str().map(String::from))
        })
        .unwrap_or_default();
    let report = if schema_tag.starts_with("dbp-serve/") {
        use clairvoyant_dbp::serve::bench::{parse_serve_baseline, run_serve_check};
        let baseline = parse_serve_baseline(&text).map_err(|e| io_err(format!("{path}: {e}")))?;
        println!(
            "bench check: {schema_tag} ({} mode), {} cells, tolerance {tolerance}%{}",
            baseline.mode,
            baseline.cells.len(),
            if inject > 0.0 {
                format!(", injected slowdown {inject}%")
            } else {
                String::new()
            }
        );
        run_serve_check(&baseline, tolerance, inject).map_err(CliError::Usage)?
    } else {
        let baseline = parse_baseline(&text).map_err(|e| io_err(format!("{path}: {e}")))?;
        println!(
            "bench check: {} ({} mode), {} cells, tolerance {tolerance}%{}",
            baseline.schema,
            baseline.mode,
            baseline.cells.len(),
            if inject > 0.0 {
                format!(", injected slowdown {inject}%")
            } else {
                String::new()
            }
        );
        run_check(&baseline, tolerance, inject).map_err(CliError::Usage)?
    };
    if report.host_parallelism != report.baseline_host_parallelism {
        println!(
            "note: baseline host parallelism {} vs this host {} — treat tight margins as noise",
            report.baseline_host_parallelism, report.host_parallelism
        );
    }
    println!(
        "\n{:<22} {:>14} {:>14} {:>9}  verdict",
        "cell", "baseline_ips", "fresh_ips", "delta"
    );
    for r in &report.rows {
        if r.skipped {
            println!(
                "{:<22} {:>14.0} {:>14} {:>9}  SKIPPED (degraded baseline)",
                r.label, r.baseline_ips, "-", "-"
            );
            continue;
        }
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.1}%  {}",
            r.label,
            r.baseline_ips,
            r.fresh_ips,
            r.delta_pct,
            if r.regressed { "REGRESSED" } else { "ok" }
        );
    }
    let skipped = report.skipped().len();
    if skipped > 0 {
        println!(
            "warning: {skipped} multi-worker cell(s) skipped — the baseline was recorded with \
             degraded_parallelism (host_parallelism {}); re-record it on a host with enough cores \
             to gate them",
            report.baseline_host_parallelism
        );
    }
    if let Some(out) = flags.get("report") {
        std::fs::write(out, report.to_json()).map_err(|e| io_err(format!("writing {out}: {e}")))?;
        eprintln!("comparison report -> {out}");
    }
    let regressions = report.regressions().len();
    if regressions == 0 {
        println!("\nbench check: ok");
        Ok(())
    } else {
        Err(CliError::Violations(format!(
            "{regressions} of {} cells regressed beyond {tolerance}%",
            report.rows.len()
        )))
    }
}

/// Runs the differential fuzzing sweep (`dbp audit`), shrinking any
/// failure to a minimal fixture, or the `--self-test` pipeline proof.
fn audit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::fixture::Fixture;
    use clairvoyant_dbp::audit::fuzz::{self, shrink_roster_failure};
    use clairvoyant_dbp::audit::shrink::ShrinkBudget;
    use clairvoyant_dbp::audit::{AuditConfig, QuietPanics};
    use std::path::Path;

    if flags.contains_key("self-test") {
        return audit_self_test(flags);
    }
    if flags.contains_key("dims") {
        return audit_vector(flags);
    }

    let cfg = AuditConfig {
        cases: get_num(flags, "cases", 1000)?,
        seed: get_num(flags, "seed", 0)?,
        max_items: get_num(flags, "max-items", 24)?,
        threads: get_threads(flags)?,
        offline: !flags.contains_key("no-offline"),
        ..Default::default()
    };
    let fixtures_dir = flags
        .get("fixtures-dir")
        .map(String::as_str)
        .unwrap_or("audit-fixtures");

    // Expected panics (engine rejections, injected faults) are caught and
    // reported as violations; keep them off stderr.
    let _quiet = QuietPanics::new();
    let summary = fuzz::run_audit(&cfg);
    println!(
        "audit: {} cases x roster = {} cells, seed {}",
        summary.cases, summary.cells, cfg.seed
    );
    if summary.ok() {
        println!("audit: no violations");
        return Ok(());
    }

    println!(
        "audit: {} failing (case, algo) cells, {} violations",
        summary.failures.len(),
        summary.violations()
    );
    for f in &summary.failures {
        println!("\ncase {} [{}] algo {}:", f.case, f.family, f.algo);
        for v in &f.violations {
            println!("  [{}] {}", v.check, v.detail);
        }
        // Shrink and persist a replayable fixture (skip cells that failed
        // before an algorithm was even involved).
        if f.algo.starts_with('<') || f.algo == "exact-oracles" {
            continue;
        }
        let (_, inst) = fuzz::case_instance(cfg.seed, f.case, cfg.max_items);
        let small = shrink_roster_failure(&inst, &f.algo, cfg.limits, ShrinkBudget::default());
        let fixture = Fixture::from_instance(
            format!("seed{}-case{}-{}", cfg.seed, f.case, f.algo),
            &f.algo,
            f.violations[0].check.as_str(),
            cfg.seed,
            f.case,
            format!("shrunk from {} to {} items", inst.len(), small.len()),
            &small,
        );
        match fixture.write_to(Path::new(fixtures_dir)) {
            Ok(path) => println!("  shrunk to {} items -> {}", small.len(), path.display()),
            Err(e) => println!("  shrunk to {} items (write failed: {e})", small.len()),
        }
    }
    Err(CliError::Violations(format!(
        "{} audit violations",
        summary.violations()
    )))
}

/// The `audit --dims D` path: the vector invariant family (indexed vs
/// linear foils, per-axis capacity, the max-axis lower bound, dim-1
/// scalar equivalence, batch-reference differentials) over seeded
/// vector instances with dimensionality up to `D`, shrinking failures
/// to vector-fixture JSON.
fn audit_vector(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::shrink::ShrinkBudget;
    use clairvoyant_dbp::audit::vector::{
        case_vec_instance, run_vector_audit, shrink_vector_failure, VecFixture, VectorAuditConfig,
    };
    use clairvoyant_dbp::audit::QuietPanics;
    use std::path::Path;

    let cfg = VectorAuditConfig {
        cases: get_num(flags, "cases", 200)?,
        seed: get_num(flags, "seed", 0)?,
        max_items: get_num(flags, "max-items", 24)?,
        max_dims: parse_dims(flags)?,
        threads: get_threads(flags)?,
    };
    let fixtures_dir = flags
        .get("fixtures-dir")
        .map(String::as_str)
        .unwrap_or("audit-fixtures");

    let _quiet = QuietPanics::new();
    let summary = run_vector_audit(&cfg);
    println!(
        "audit: {} vector cases x roster = {} cells, seed {}, dims <= {}",
        summary.cases, summary.cells, cfg.seed, cfg.max_dims
    );
    if summary.ok() {
        println!("audit: no violations");
        return Ok(());
    }

    println!(
        "audit: {} failing (case, algo) cells, {} violations",
        summary.failures.len(),
        summary.violations()
    );
    for f in &summary.failures {
        println!("\ncase {} [{}] algo {}:", f.case, f.family, f.algo);
        for v in &f.violations {
            println!("  [{}] {}", v.check, v.detail);
        }
        if f.algo.starts_with('<') {
            continue;
        }
        let (_, inst) = case_vec_instance(cfg.seed, f.case, cfg.max_items, cfg.max_dims);
        let small = shrink_vector_failure(&inst, &f.algo, ShrinkBudget::default());
        let fixture = VecFixture::from_instance(
            format!("vec-seed{}-case{}-{}", cfg.seed, f.case, f.algo),
            &f.algo,
            f.violations[0].check.as_str(),
            cfg.seed,
            f.case,
            format!("shrunk from {} to {} items", inst.len(), small.len()),
            &small,
        );
        match fixture.write_to(Path::new(fixtures_dir)) {
            Ok(path) => println!("  shrunk to {} items -> {}", small.len(), path.display()),
            Err(e) => println!("  shrunk to {} items (write failed: {e})", small.len()),
        }
    }
    Err(CliError::Violations(format!(
        "{} vector audit violations",
        summary.violations()
    )))
}

/// Proves the audit pipeline end to end with injected faults: the
/// overfull packer must be caught and shrunk to a tiny fixture that
/// round-trips through JSON, and a panicking packer must not abort the
/// surrounding sweep.
fn audit_self_test(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::diff::audit_online_with;
    use clairvoyant_dbp::audit::faulty::{OverfullFirstFit, PanicOnNth};
    use clairvoyant_dbp::audit::fixture::Fixture;
    use clairvoyant_dbp::audit::fuzz::{case_instance, isolated};
    use clairvoyant_dbp::audit::invariants::{exact_baselines, ExactLimits};
    use clairvoyant_dbp::audit::shrink::{shrink_instance, ShrinkBudget};
    use clairvoyant_dbp::audit::QuietPanics;

    let seed: u64 = get_num(flags, "seed", 0)?;
    let limits = ExactLimits::default();
    let _quiet = QuietPanics::new();

    // A generated instance large enough that the faulty packer trips.
    let (family, inst) = case_instance(seed, 1, 24);
    println!(
        "self-test: instance from seed {seed} case 1 [{family}], {} items",
        inst.len()
    );

    let fails = |candidate: &Instance| -> bool {
        let exact = match isolated(|| exact_baselines(candidate, limits)) {
            Ok(e) => e,
            Err(_) => return true,
        };
        let v = isolated(|| {
            audit_online_with(
                candidate,
                "faulty-overfull-ff",
                ClairvoyanceMode::NonClairvoyant,
                &exact,
                || Box::new(OverfullFirstFit),
            )
        });
        match v {
            Ok(v) => !v.is_empty(),
            Err(_) => true,
        }
    };
    if !fails(&inst) {
        return Err(CliError::Violations(
            "self-test: overfull packer was NOT caught".into(),
        ));
    }
    println!("self-test: overfull first-fit caught as a violation");

    let small = shrink_instance(&inst, fails, ShrinkBudget::default());
    println!("self-test: shrunk {} -> {} items", inst.len(), small.len());
    if small.len() > 6 {
        return Err(CliError::Violations(format!(
            "self-test: shrunk witness has {} items (> 6)",
            small.len()
        )));
    }
    let fixture = Fixture::from_instance(
        "self-test-overfull-ff",
        "faulty-overfull-ff",
        "engine-error",
        seed,
        1,
        "self-test injected fault",
        &small,
    );
    let round_trip = Fixture::parse(&fixture.to_json())
        .map_err(|e| runtime_err(format!("fixture round-trip: {e}")))?;
    if round_trip != fixture {
        return Err(CliError::Violations(
            "self-test: fixture did not round-trip".into(),
        ));
    }
    println!(
        "self-test: fixture round-trips through JSON ({} items)",
        fixture.items.len()
    );

    // A panicking packer must be contained, not abort the process.
    let outcome = isolated(|| {
        OnlineEngine::non_clairvoyant()
            .run(&inst, &mut PanicOnNth::new(2))
            .map(|r| r.usage)
    });
    match outcome {
        Err(msg) if msg.contains("injected fault") => {
            println!("self-test: panicking packer isolated ({msg})");
        }
        other => {
            return Err(CliError::Violations(format!(
                "self-test: expected injected panic, got {other:?}"
            )))
        }
    }

    // The vector pipeline: a packer that only checks axis 0 must be
    // rejected by the per-axis feasibility gate, the witness must
    // shrink to its two-item core (the decoys stripped), and the vector
    // fixture must replay bit-identically.
    audit_self_test_vector(seed)?;

    println!("self-test: ok");
    Ok(())
}

/// The vector leg of `audit --self-test`: catch the axis-blind packer,
/// shrink the witness, and round-trip it through [`VecFixture`] JSON.
fn audit_self_test_vector(seed: u64) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::faulty::AxisBlindFirstFit;
    use clairvoyant_dbp::audit::fuzz::isolated;
    use clairvoyant_dbp::audit::shrink::ShrinkBudget;
    use clairvoyant_dbp::audit::vector::{shrink_vec_instance, VecFixture};
    use clairvoyant_dbp::core::{SizeVec, VecInstance, VecItem, VecOnlineEngine};

    // Two items that overlap in time and fit on axis 0 but not axis 1,
    // padded with decoys the shrinker must strip.
    let mut items = vec![
        VecItem::new(0, SizeVec::from_f64s(&[0.2, 0.8]), 3, 40),
        VecItem::new(1, SizeVec::from_f64s(&[0.2, 0.8]), 5, 39),
    ];
    for i in 2..14 {
        items.push(VecItem::new(
            i,
            SizeVec::from_f64s(&[0.11, 0.07]),
            i as i64 * 7,
            i as i64 * 7 + 3,
        ));
    }
    let inst = VecInstance::from_items(items).map_err(runtime_err)?;

    let fails = |candidate: &VecInstance| {
        !matches!(
            isolated(|| VecOnlineEngine::non_clairvoyant().run(candidate, &mut AxisBlindFirstFit)),
            Ok(Ok(_))
        )
    };
    if !fails(&inst) {
        return Err(CliError::Violations(
            "self-test: axis-blind vector packer was NOT caught".into(),
        ));
    }
    println!("self-test: axis-blind first-fit rejected by per-axis feasibility");

    let small = shrink_vec_instance(&inst, fails, ShrinkBudget::default());
    println!(
        "self-test: vector witness shrunk {} -> {} items",
        inst.len(),
        small.len()
    );
    if small.len() > 2 {
        return Err(CliError::Violations(format!(
            "self-test: vector witness has {} items (> 2)",
            small.len()
        )));
    }

    let fixture = VecFixture::from_instance(
        "self-test-axis-blind-ff",
        "faulty-axis-blind-ff",
        "engine-error",
        seed,
        0,
        "self-test injected vector fault",
        &small,
    );
    let round_trip = VecFixture::parse(&fixture.to_json())
        .map_err(|e| runtime_err(format!("vector fixture round-trip: {e}")))?;
    if round_trip != fixture || round_trip.instance().map_err(runtime_err)? != small {
        return Err(CliError::Violations(
            "self-test: vector fixture did not round-trip".into(),
        ));
    }
    println!(
        "self-test: vector fixture round-trips through JSON ({} items)",
        fixture.items.len()
    );
    Ok(())
}

/// Runs the chaos sweep (`dbp chaos`): seeded fault injection across the
/// online roster with the three resilience invariants checked per cell,
/// shrinking any failure to a minimal fixture. `--self-test` instead
/// proves the three pillars on built-in scenarios.
fn chaos(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::chaos::{shrink_chaos_failure, ChaosAuditConfig};
    use clairvoyant_dbp::audit::fixture::Fixture;
    use clairvoyant_dbp::audit::fuzz::case_instance;
    use clairvoyant_dbp::audit::shrink::ShrinkBudget;
    use clairvoyant_dbp::audit::{run_chaos_audit, QuietPanics};
    use std::path::Path;

    if flags.contains_key("self-test") {
        return chaos_self_test(flags);
    }

    let cfg = ChaosAuditConfig {
        cases: get_num(flags, "cases", 200)?,
        seed: get_num(flags, "seed", 0)?,
        max_items: get_num(flags, "max-items", 24)?,
        threads: get_threads(flags)?,
    };
    let fixtures_dir = flags
        .get("fixtures-dir")
        .map(String::as_str)
        .unwrap_or("chaos-fixtures");

    let _quiet = QuietPanics::new();
    let summary = run_chaos_audit(&cfg);
    println!(
        "chaos: {} cases x roster = {} cells, seed {}",
        summary.cases, summary.cells, cfg.seed
    );
    if summary.ok() {
        println!("chaos: no violations");
        return Ok(());
    }

    println!(
        "chaos: {} failing (case, algo) cells, {} violations",
        summary.failures.len(),
        summary.violations()
    );
    for f in &summary.failures {
        println!("\ncase {} [{}] algo {}:", f.case, f.family, f.algo);
        for v in &f.violations {
            println!("  [{}] {}", v.check, v.detail);
        }
        if f.algo.starts_with('<') {
            continue;
        }
        let (_, inst) = case_instance(cfg.seed, f.case, cfg.max_items);
        let small = shrink_chaos_failure(&inst, &f.algo, cfg.seed, f.case, ShrinkBudget::default());
        let fixture = Fixture::from_instance(
            format!("chaos-seed{}-case{}-{}", cfg.seed, f.case, f.algo),
            &f.algo,
            f.violations[0].check.as_str(),
            cfg.seed,
            f.case,
            format!("chaos: shrunk from {} to {} items", inst.len(), small.len()),
            &small,
        );
        match fixture.write_to(Path::new(fixtures_dir)) {
            Ok(path) => println!("  shrunk to {} items -> {}", small.len(), path.display()),
            Err(e) => println!("  shrunk to {} items (write failed: {e})", small.len()),
        }
    }
    Err(CliError::Violations(format!(
        "{} chaos violations",
        summary.violations()
    )))
}

/// Proves the three resilience pillars on built-in scenarios:
/// checkpoint/resume bit-identity, fault injection + recovery with
/// exactly-once accounting, and graceful degradation at a fleet cap.
fn chaos_self_test(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::fuzz::case_instance;
    use clairvoyant_dbp::core::StreamingSession;
    use clairvoyant_dbp::resilience::chaos::run_chaos;
    use clairvoyant_dbp::resilience::{
        snapshot_from_json, snapshot_to_json, AdmissionPolicy, ChaosConfig, FaultEvent, FaultKind,
        FaultPlan, RecoveryPolicy,
    };
    use clairvoyant_dbp::sim::RetryCounters;

    let seed: u64 = get_num(flags, "seed", 0)?;
    let fail = |what: &str| CliError::Violations(format!("self-test: {what}"));

    // Pillar 1 — checkpoint/resume bit-identity through the JSON
    // encoding, on a generated instance with the clairvoyant flagship.
    let (family, inst) = case_instance(seed, 1, 24);
    println!(
        "self-test: instance from seed {seed} case 1 [{family}], {} items",
        inst.len()
    );
    let mut items = inst.items().to_vec();
    items.sort_by_key(|i| (i.arrival(), i.id()));
    let cut = items.len() / 2;
    let params = AlgoParams::from_instance(&inst);
    let mut packer = online_packer("cbdt", params);
    let mut s = StreamingSession::new(ClairvoyanceMode::Clairvoyant, &mut *packer);
    for item in &items[..cut] {
        s.arrive(item).map_err(runtime_err)?;
    }
    let snap = s.snapshot();
    for item in &items[cut..] {
        s.arrive(item).map_err(runtime_err)?;
    }
    let full = s.finish().map_err(runtime_err)?;
    let json = snapshot_to_json(&snap);
    let decoded = snapshot_from_json(&json).map_err(runtime_err)?;
    if decoded != snap {
        return Err(fail("checkpoint JSON round-trip was lossy"));
    }
    let mut packer = online_packer("cbdt", params);
    let mut resumed =
        StreamingSession::restore(ClairvoyanceMode::Clairvoyant, &mut *packer, &decoded)
            .map_err(runtime_err)?;
    for item in &items[cut..] {
        resumed.arrive(item).map_err(runtime_err)?;
    }
    if resumed.finish().map_err(runtime_err)? != full {
        return Err(fail("resumed run diverged from uninterrupted run"));
    }
    println!(
        "self-test: checkpoint at cut {cut} resumed bit-identical ({} bytes of JSON)",
        json.len()
    );

    // Pillar 2 — fault injection + recovery: three overlapping jobs, a
    // crash mid-flight, immediate resubmission; everything must complete
    // as a retry and the oracle must pass.
    let tiny = Instance::from_triples(&[(0.4, 0, 100), (0.4, 0, 100), (0.4, 0, 100)]);
    let cfg = ChaosConfig {
        plan: FaultPlan::new(
            seed,
            vec![FaultEvent {
                at: 5,
                kind: FaultKind::Crash,
            }],
        ),
        policy: RecoveryPolicy::Immediate,
        fleet_cap: None,
        admission: AdmissionPolicy::Reject,
    };
    let params = AlgoParams::from_instance(&tiny);
    let mut packer = online_packer("first-fit", params);
    let report = run_chaos(&tiny, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg)
        .map_err(runtime_err)?;
    report.verify(&tiny).map_err(runtime_err)?;
    let c = report.retry_counters();
    if report.servers_killed == 0 || c.jobs_retried != 3 || c.jobs_completed != 0 {
        return Err(fail(&format!(
            "crash recovery: expected 3 retried jobs, got {c:?}"
        )));
    }
    println!(
        "self-test: crash at t=5 killed {} servers, displaced {} jobs, all 3 completed on retry",
        report.servers_killed, report.jobs_displaced
    );

    // Pillar 3 — graceful degradation: cap the fleet at one server so
    // the third job is shed, and verify the ledger still accounts for
    // every job exactly once.
    let cfg = ChaosConfig {
        plan: FaultPlan::none(),
        fleet_cap: Some(1),
        admission: AdmissionPolicy::Reject,
        policy: RecoveryPolicy::Immediate,
    };
    let mut packer = online_packer("first-fit", params);
    let report = run_chaos(&tiny, &mut *packer, ClairvoyanceMode::NonClairvoyant, &cfg)
        .map_err(runtime_err)?;
    report.verify(&tiny).map_err(runtime_err)?;
    let c = report.retry_counters();
    let expect = RetryCounters {
        jobs_completed: 2,
        jobs_rejected: 1,
        arrivals_shed: 1,
        ..RetryCounters::default()
    };
    if c != expect {
        return Err(fail(&format!(
            "fleet cap: expected 2 completed + 1 rejected, got {c:?}"
        )));
    }
    println!("self-test: fleet cap 1 shed the overflow job and accounted for it exactly once");
    println!("self-test: ok");
    Ok(())
}

/// Runs the shard sweep (`dbp shard-audit`): the sharded coordinator
/// against plain-session references across the roster, routers, and
/// K ∈ {1, 2, 3}, with failures shrunk to minimal fixtures exactly like
/// `audit` and `chaos`.
fn shard_audit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::fixture::Fixture;
    use clairvoyant_dbp::audit::fuzz::case_instance;
    use clairvoyant_dbp::audit::shard::shrink_shard_failure;
    use clairvoyant_dbp::audit::shrink::ShrinkBudget;
    use clairvoyant_dbp::audit::{run_shard_audit, QuietPanics, ShardAuditConfig};
    use std::path::Path;

    let cfg = ShardAuditConfig {
        cases: get_num(flags, "cases", 200)?,
        seed: get_num(flags, "seed", 0)?,
        max_items: get_num(flags, "max-items", 32)?,
        threads: get_threads(flags)?,
    };
    let fixtures_dir = flags
        .get("fixtures-dir")
        .map(String::as_str)
        .unwrap_or("shard-fixtures");

    let _quiet = QuietPanics::new();
    let summary = run_shard_audit(&cfg);
    println!(
        "shard-audit: {} cases x roster x K = {} cells, seed {}",
        summary.cases, summary.cells, cfg.seed
    );
    if summary.ok() {
        println!("shard-audit: no violations");
        return Ok(());
    }

    println!(
        "shard-audit: {} failing (case, algo/K) cells, {} violations",
        summary.failures.len(),
        summary.violations()
    );
    for f in &summary.failures {
        println!("\ncase {} [{}] cell {}:", f.case, f.family, f.algo);
        for v in &f.violations {
            println!("  [{}] {}", v.check, v.detail);
        }
        // Cell labels are "{algo}/k{K}"; generation failures carry no
        // algorithm and cannot be shrunk.
        let Some((algo, k)) = f.algo.rsplit_once("/k") else {
            continue;
        };
        let Ok(k) = k.parse::<usize>() else { continue };
        let (_, inst) = case_instance(cfg.seed, f.case, cfg.max_items);
        let small = shrink_shard_failure(&inst, algo, k, cfg.seed, f.case, ShrinkBudget::default());
        let fixture = Fixture::from_instance(
            format!("shard-seed{}-case{}-{}-k{}", cfg.seed, f.case, algo, k),
            algo,
            f.violations[0].check.as_str(),
            cfg.seed,
            f.case,
            format!(
                "shard k={k}: shrunk from {} to {} items",
                inst.len(),
                small.len()
            ),
            &small,
        );
        match fixture.write_to(Path::new(fixtures_dir)) {
            Ok(path) => println!("  shrunk to {} items -> {}", small.len(), path.display()),
            Err(e) => println!("  shrunk to {} items (write failed: {e})", small.len()),
        }
    }
    Err(CliError::Violations(format!(
        "{} shard-audit violations",
        summary.violations()
    )))
}

/// Runs the telemetry sweep (`dbp telemetry-audit`): replay bit-identity
/// and fleet-merge order-independence of the work histograms across the
/// roster, routers, and K ∈ {1, 3}.
fn telemetry_audit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::audit::{run_telemetry_audit, QuietPanics, TelemetryAuditConfig};

    let cfg = TelemetryAuditConfig {
        cases: get_num(flags, "cases", 100)?,
        seed: get_num(flags, "seed", 0)?,
        max_items: get_num(flags, "max-items", 32)?,
        threads: get_threads(flags)?,
    };
    let _quiet = QuietPanics::new();
    let summary = run_telemetry_audit(&cfg);
    println!(
        "telemetry-audit: {} cases x roster x K = {} cells, seed {}",
        summary.cases, summary.cells, cfg.seed
    );
    if summary.ok() {
        println!("telemetry-audit: no violations");
        return Ok(());
    }
    println!(
        "telemetry-audit: {} failing (case, algo/K) cells, {} violations",
        summary.failures.len(),
        summary.violations()
    );
    for f in &summary.failures {
        println!("\ncase {} [{}] cell {}:", f.case, f.family, f.algo);
        for v in &f.violations {
            println!("  [{}] {}", v.check, v.detail);
        }
    }
    Err(CliError::Violations(format!(
        "{} telemetry-audit violations",
        summary.violations()
    )))
}

/// Formats one histogram row of the `prof` percentile table.
fn prof_row(name: &str, h: &clairvoyant_dbp::telemetry::Histogram) -> String {
    if h.is_empty() {
        return format!("{name:<22} {:>10} {:>10}", 0, "-");
    }
    format!(
        "{name:<22} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>8} {:>10}",
        h.count(),
        h.mean(),
        h.min(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
        h.max()
    )
}

/// Profiles one online algorithm over a trace or generated workload
/// (`dbp prof`): percentile table plus optional folded-stack,
/// chrome://tracing, and Prometheus exports.
fn prof(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::telemetry::{
        chrome_trace_json, folded_stacks, profile_stream, render_prometheus,
    };

    let algo = flags.get("algo").map(String::as_str).unwrap_or("cbdt");
    known_algo(algo, ONLINE_ALGOS, "online")?;
    let kind = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("uniform");
    let inst = if flags.contains_key("trace") {
        load_trace(flags)?
    } else {
        let n: usize = get_num(flags, "n", 10_000)?;
        let seed: u64 = get_num(flags, "seed", 0)?;
        make_instance(kind, n, seed)
            .ok_or_else(|| CliError::Usage(format!("unknown workload {kind:?}")))?
    };
    // The streaming contract wants non-decreasing arrivals.
    let mut items = inst.items().to_vec();
    items.sort_by_key(|i| (i.arrival(), i.id()));

    if flags.contains_key("self-test") {
        return prof_self_test(flags, &items, algo);
    }

    let batch: usize = get_num(flags, "batch", 0)?;
    let full_timing = !flags.contains_key("sampled");
    let params = AlgoParams::from_instance(&inst);
    let mut packer = online_packer(algo, params);
    let profile = profile_stream(
        clair_mode(algo),
        packer.as_mut(),
        &items,
        batch,
        full_timing,
    )
    .map_err(runtime_err)?;

    println!(
        "prof: {algo} on {} items, {} timing, usage {} ticks, {} bins",
        items.len(),
        if full_timing { "full" } else { "1-in-64" },
        profile.run.usage,
        profile.run.bins_opened()
    );
    println!(
        "\n{:<22} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "histogram", "count", "mean", "min", "p50", "p90", "p99", "max"
    );
    let t = &profile.telemetry;
    println!("-- work (deterministic, replay-exact) --");
    for (name, h) in [
        ("candidates/decision", &t.work.candidates),
        ("open bins", &t.work.open_bins),
        ("items/bin", &t.work.bin_items),
        ("bin lifetime (ticks)", &t.work.bin_lifetime),
    ] {
        println!("{}", prof_row(name, h));
    }
    println!("-- wall clock (ns, this run only) --");
    for (name, h) in [
        ("decide", &t.run.decide_ns),
        ("departure sweep", &t.run.depart_ns),
        ("batch flush", &t.run.batch_flush_ns),
        ("finish drain", &t.run.finish_ns),
    ] {
        println!("{}", prof_row(name, h));
    }

    for (flag, content, what) in [
        ("out-folded", folded_stacks(&profile.spans), "folded stacks"),
        (
            "out-chrome",
            chrome_trace_json(&profile.spans),
            "chrome trace",
        ),
        (
            "out-prom",
            render_prometheus(&profile.counters, t, &[("algo", algo)]),
            "prometheus exposition",
        ),
    ] {
        if let Some(path) = flags.get(flag) {
            std::fs::write(path, &content).map_err(|e| io_err(format!("writing {path}: {e}")))?;
            eprintln!("{what}: {} bytes -> {path}", content.len());
        }
    }
    Ok(())
}

/// Proves the telemetry determinism contract on the given stream: work
/// histograms bit-identical across two replays, and fleet-merged work
/// histograms identical for worker counts {1, K}.
fn prof_self_test(
    flags: &HashMap<String, String>,
    items: &[Item],
    algo: &str,
) -> Result<(), CliError> {
    use clairvoyant_dbp::telemetry::profile_stream;

    let fail = |what: String| CliError::Violations(format!("prof self-test: {what}"));
    let k: usize = get_num(flags, "shards", 4)?;
    if k == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let inst = Instance::from_items(items.to_vec()).map_err(runtime_err)?;
    let params = AlgoParams::from_instance(&inst);

    // 1. Replay bit-identity of the single-session work histograms.
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut packer = online_packer(algo, params);
        let p = profile_stream(clair_mode(algo), packer.as_mut(), items, 0, false)
            .map_err(runtime_err)?;
        runs.push(p.telemetry.work);
    }
    if runs[0] != runs[1] {
        return Err(fail(format!(
            "{algo}: work histograms differ between two replays"
        )));
    }
    println!(
        "self-test: {algo} work histograms bit-identical across 2 replays ({} sampled decisions)",
        runs[0].candidates.count()
    );

    // 2. Fleet merge independence: the same K-shard fleet on 1 worker
    // and on K workers must fold to identical work histograms.
    let mut fleets = Vec::new();
    for workers in [1usize, k] {
        let cfg = ShardConfig {
            threads: Some(workers),
            collect_telemetry: true,
            ..ShardConfig::new(k, ShardRouter::hash())
        };
        let packers = (0..k).map(|_| online_packer(algo, params)).collect();
        let mut fleet = ShardedSession::new(clair_mode(algo), packers, cfg).map_err(runtime_err)?;
        for item in items {
            fleet.arrive(item).map_err(runtime_err)?;
        }
        let report = fleet.finish().map_err(runtime_err)?;
        let telemetry = report
            .telemetry
            .ok_or_else(|| fail(format!("{algo} workers={workers}: fleet telemetry missing")))?;
        fleets.push(telemetry.work);
    }
    if fleets[0] != fleets[1] {
        return Err(fail(format!(
            "{algo}: fleet work histograms differ between 1 and {k} workers"
        )));
    }
    println!("self-test: {algo} fleet work histograms identical for worker counts {{1, {k}}}");
    println!("self-test: ok");
    Ok(())
}

fn compare(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let inst = load_trace(flags)?;
    let lb = lower_bounds(&inst).best().max(1);
    let params = AlgoParams::from_instance(&inst);
    println!(
        "{:<26} {:>12} {:>6} {:>9}",
        "algorithm", "usage", "bins", "vs LB3"
    );
    for algo in ONLINE_ALGOS {
        let mut packer = online_packer(algo, params);
        let run = OnlineEngine::new(clair_mode(algo))
            .run(&inst, packer.as_mut())
            .map_err(runtime_err)?;
        run.packing.validate(&inst).map_err(runtime_err)?;
        println!(
            "{:<26} {:>12} {:>6} {:>9.4}",
            format!("{} (online)", packer.name()),
            run.usage,
            run.bins_opened(),
            run.usage as f64 / lb as f64
        );
    }
    for algo in OFFLINE_ALGOS {
        let packer = offline_packer(algo);
        let packing = packer.pack(&inst);
        packing.validate(&inst).map_err(runtime_err)?;
        let usage = packing.total_usage(&inst);
        println!(
            "{:<26} {:>12} {:>6} {:>9.4}",
            format!("{} (offline)", packer.name()),
            usage,
            packing.num_bins(),
            usage as f64 / lb as f64
        );
    }
    Ok(())
}

/// `dbp serve` — boot the long-running scheduling service and block
/// until a client sends `shutdown`.
fn serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::serve::{server, ServeConfig, Service};

    let algo = flags.get("algo").map(|s| s.as_str()).unwrap_or("first-fit");
    known_algo(algo, ONLINE_ALGOS, "online")?;
    let mut cfg = ServeConfig::new(get_num(flags, "shards", 1usize)?, algo);
    let router_spec = flags.get("router").map(|s| s.as_str()).unwrap_or("hash");
    cfg.router = ShardRouter::parse(router_spec).map_err(|e| CliError::Usage(e.to_string()))?;
    if let Some(v) = flags.get("fleet-cap") {
        cfg.fleet_cap = Some(
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --fleet-cap value {v:?}")))?,
        );
    }
    if let Some(dir) = flags.get("checkpoint-dir") {
        cfg.checkpoint_dir = Some(dir.into());
    }
    if let Some(dir) = flags.get("wal-dir") {
        cfg.wal_dir = Some(dir.into());
    }
    if let Some(policy) = flags.get("fsync") {
        if cfg.wal_dir.is_none() {
            return Err(CliError::Usage(
                "--fsync needs --wal-dir (it is the WAL's durability policy)".into(),
            ));
        }
        cfg.fsync = clairvoyant_dbp::serve::FsyncPolicy::parse(policy)
            .map_err(|e| CliError::Usage(e.to_string()))?;
    }
    cfg.checkpoint_every = get_num(flags, "checkpoint-every", 1_000u64)?;
    cfg.delta = get_num(flags, "delta", 1i64)?;
    cfg.mu = get_num(flags, "mu", 1.0f64)?;
    let conn_workers = get_num(flags, "conn-workers", 4usize)?;
    let shards = cfg.shards;

    let service = Service::start(cfg).map_err(|e| match e {
        clairvoyant_dbp::core::DbpError::InvalidParameter { .. } => CliError::Usage(e.to_string()),
        other => CliError::Runtime(other.to_string()),
    })?;
    for torn in service.skipped_checkpoints() {
        eprintln!(
            "warning: skipped torn checkpoint {} (fell back to an older one)",
            torn.display()
        );
    }
    if let Some(seq) = service.restored_seq() {
        println!("restored from checkpoint {seq}");
    }
    if let Some(rec) = service.recovery() {
        println!(
            "WAL recovery: {} frame{} replayed, {} bytes scanned, {} file{} truncated, {:.1} ms",
            rec.replayed_frames,
            if rec.replayed_frames == 1 { "" } else { "s" },
            rec.wal_bytes,
            rec.truncated_files,
            if rec.truncated_files == 1 { "" } else { "s" },
            rec.duration_ns as f64 / 1e6,
        );
    }

    let addr = flags
        .get("addr")
        .map(|s| s.as_str())
        .unwrap_or("127.0.0.1:4150");
    let listener = std::net::TcpListener::bind(addr).map_err(io_err)?;
    let local = listener.local_addr().map_err(io_err)?;
    println!(
        "dbp-serve listening on {local} (algo {algo}, {shards} shard{}, {conn_workers} \
         connection worker{})",
        if shards == 1 { "" } else { "s" },
        if conn_workers == 1 { "" } else { "s" },
    );
    use std::io::Write as _;
    std::io::stdout().flush().map_err(io_err)?;
    if let Some(port_file) = flags.get("port-file") {
        std::fs::write(port_file, format!("{local}\n")).map_err(io_err)?;
    }
    server::run(std::sync::Arc::new(service), listener, conn_workers).map_err(io_err)
}

/// `dbp serve-torture` — the deterministic crash-point sweep: inject an
/// IO failure at every WAL/checkpoint IO boundary in turn and prove
/// recovery from each prefix (bit-identical decisions, exactly-once
/// accounting, corruption detected rather than consumed). Exit 5 on any
/// violated invariant.
fn serve_torture(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::serve::torture::{run, TortureConfig};

    let mut cfg = TortureConfig::quick("cli");
    if !flags.contains_key("self-test") {
        cfg.jobs = get_num(flags, "jobs", cfg.jobs)?;
        cfg.stride = get_num(flags, "stride", cfg.stride)?;
        cfg.checkpoint_every = get_num(flags, "checkpoint-every", cfg.checkpoint_every)?;
        if let Some(policy) = flags.get("fsync") {
            cfg.fsync = clairvoyant_dbp::serve::FsyncPolicy::parse(policy)
                .map_err(|e| CliError::Usage(e.to_string()))?;
        }
        if let Some(algo) = flags.get("algo") {
            known_algo(algo, ONLINE_ALGOS, "online")?;
            cfg.algo = algo.clone();
        }
    }
    if let Some(dir) = flags.get("scratch") {
        cfg.scratch = Some(dir.into());
    }
    println!(
        "serve-torture: {} jobs, fsync {}, checkpoint every {}, stride {}",
        cfg.jobs,
        cfg.fsync.name(),
        cfg.checkpoint_every,
        cfg.stride,
    );
    let report = run(&cfg).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "crash-point space: {} IO ops; {} crash points exercised, {} corruption drills",
        report.io_ops_total, report.crash_points, report.drills,
    );
    if report.passed() {
        println!("serve-torture: ok — every crash point recovered, every drill held");
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        eprintln!("failing fixtures kept under {}", report.scratch.display());
        Err(CliError::Violations(format!(
            "{} durability violation(s) across {} crash points + {} drills",
            report.violations.len(),
            report.crash_points,
            report.drills,
        )))
    }
}

/// `dbp serve-bench` — record the serving-path fsync-policy baseline
/// (`BENCH_serve.json`): one cell per fsync variant, re-checkable with
/// `dbp bench --check`.
fn serve_bench(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use clairvoyant_dbp::serve::bench::{record, render_baseline};

    let mode = flags.get("mode").map(String::as_str).unwrap_or("short");
    let baseline = record(mode).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "{:<24} {:>7} {:>14} {:>9} {:>9}",
        "cell", "jobs", "items_per_sec", "p50_us", "p99_us"
    );
    for c in &baseline.cells {
        println!(
            "{:<24} {:>7} {:>14.0} {:>9.1} {:>9.1}",
            c.label(),
            c.jobs,
            c.items_per_sec,
            c.p50_us,
            c.p99_us
        );
    }
    if let Some(out) = flags.get("out") {
        std::fs::write(out, render_baseline(&baseline))
            .map_err(|e| io_err(format!("writing {out}: {e}")))?;
        println!("baseline -> {out}");
    }
    Ok(())
}
