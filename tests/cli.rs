//! End-to-end tests of the `dbp` command-line tool.

use std::process::Command;

fn dbp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dbp"))
        .args(args)
        .output()
        .expect("run dbp");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_trace(name: &str) -> String {
    let dir = std::env::temp_dir().join("dbp-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn generate_bounds_pack_compare_pipeline() {
    let path = temp_trace("pipeline.csv");
    let (ok, _, err) = dbp(&[
        "generate",
        "--workload",
        "uniform",
        "--n",
        "120",
        "--seed",
        "9",
        "--out",
        &path,
    ]);
    assert!(ok, "generate failed: {err}");

    let (ok, out, _) = dbp(&["bounds", "--trace", &path]);
    assert!(ok);
    assert!(out.contains("items:            120"));
    assert!(out.contains("LB3"));

    let (ok, out, _) = dbp(&["pack", "--trace", &path, "--algo", "cbdt"]);
    assert!(ok);
    assert!(out.contains("ratio vs LB"));

    let (ok, out, _) = dbp(&["pack", "--trace", &path, "--algo", "ddff", "--offline"]);
    assert!(ok);
    assert!(out.contains("algorithm:   ddff"));

    let (ok, out, _) = dbp(&["compare", "--trace", &path]);
    assert!(ok);
    for name in ["first-fit", "cbdt", "ddff", "dual-coloring"] {
        assert!(out.contains(name), "missing {name} in compare output");
    }

    let (ok, out, _) = dbp(&["report", "--trace", &path, "--algo", "cbdt"]);
    assert!(ok);
    assert!(out.contains("mean utilization"));
    let (ok, out, _) = dbp(&["report", "--trace", &path, "--algo", "ddff", "--offline"]);
    assert!(ok);
    assert!(out.contains("gap_ticks"));
}

#[test]
fn generate_to_stdout_parses_back() {
    let (ok, out, _) = dbp(&[
        "generate",
        "--workload",
        "spike",
        "--n",
        "100",
        "--seed",
        "1",
    ]);
    assert!(ok);
    let inst = clairvoyant_dbp::workloads::trace::from_str(&out).expect("parse stdout trace");
    assert_eq!(inst.len(), 100);
}

#[test]
fn helpful_errors() {
    let (ok, _, err) = dbp(&["pack", "--trace", "/nonexistent/file.csv", "--algo", "cbdt"]);
    assert!(!ok);
    assert!(err.contains("error:"));

    let (ok, _, err) = dbp(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"));

    let (ok, _, err) = dbp(&["pack"]);
    assert!(!ok);
    assert!(err.contains("missing required flag"));

    let (ok, out, _) = dbp(&["algos"]);
    assert!(ok);
    assert!(out.contains("first-fit") && out.contains("ddff"));
}

#[test]
fn non_clairvoyant_flag_respected() {
    let path = temp_trace("nc.csv");
    dbp(&[
        "generate",
        "--workload",
        "uniform",
        "--n",
        "60",
        "--seed",
        "4",
        "--out",
        &path,
    ]);
    // CBDT requires clairvoyance: non-clairvoyant mode must fail loudly
    // (panics inside — surfaced as a failed exit status), while FF works.
    let (ok_ff, _, _) = dbp(&[
        "pack",
        "--trace",
        &path,
        "--algo",
        "first-fit",
        "--non-clairvoyant",
    ]);
    assert!(ok_ff);
    let (ok_cbdt, _, _) = dbp(&[
        "pack",
        "--trace",
        &path,
        "--algo",
        "cbdt",
        "--non-clairvoyant",
    ]);
    assert!(!ok_cbdt);
}
