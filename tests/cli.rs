//! End-to-end tests of the `dbp` command-line tool.

use std::process::Command;

fn dbp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dbp"))
        .args(args)
        .output()
        .expect("run dbp");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Like [`dbp`] but with the raw exit code, for tests pinning the
/// documented code table (0 ok, 2 usage, ...).
fn dbp_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dbp"))
        .args(args)
        .output()
        .expect("run dbp");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_trace(name: &str) -> String {
    let dir = std::env::temp_dir().join("dbp-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn generate_bounds_pack_compare_pipeline() {
    let path = temp_trace("pipeline.csv");
    let (ok, _, err) = dbp(&[
        "generate",
        "--workload",
        "uniform",
        "--n",
        "120",
        "--seed",
        "9",
        "--out",
        &path,
    ]);
    assert!(ok, "generate failed: {err}");

    let (ok, out, _) = dbp(&["bounds", "--trace", &path]);
    assert!(ok);
    assert!(out.contains("items:            120"));
    assert!(out.contains("LB3"));

    let (ok, out, _) = dbp(&["pack", "--trace", &path, "--algo", "cbdt"]);
    assert!(ok);
    assert!(out.contains("ratio vs LB"));

    let (ok, out, _) = dbp(&["pack", "--trace", &path, "--algo", "ddff", "--offline"]);
    assert!(ok);
    assert!(out.contains("algorithm:   ddff"));

    let (ok, out, _) = dbp(&["compare", "--trace", &path]);
    assert!(ok);
    for name in ["first-fit", "cbdt", "ddff", "dual-coloring"] {
        assert!(out.contains(name), "missing {name} in compare output");
    }

    let (ok, out, _) = dbp(&["report", "--trace", &path, "--algo", "cbdt"]);
    assert!(ok);
    assert!(out.contains("mean utilization"));
    let (ok, out, _) = dbp(&["report", "--trace", &path, "--algo", "ddff", "--offline"]);
    assert!(ok);
    assert!(out.contains("gap_ticks"));
}

#[test]
fn generate_to_stdout_parses_back() {
    let (ok, out, _) = dbp(&[
        "generate",
        "--workload",
        "spike",
        "--n",
        "100",
        "--seed",
        "1",
    ]);
    assert!(ok);
    let inst = clairvoyant_dbp::workloads::trace::from_str(&out).expect("parse stdout trace");
    assert_eq!(inst.len(), 100);
}

#[test]
fn helpful_errors() {
    let (ok, _, err) = dbp(&["pack", "--trace", "/nonexistent/file.csv", "--algo", "cbdt"]);
    assert!(!ok);
    assert!(err.contains("error:"));

    let (ok, _, err) = dbp(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"));

    let (ok, _, err) = dbp(&["pack"]);
    assert!(!ok);
    assert!(err.contains("missing required flag"));

    let (ok, out, _) = dbp(&["algos"]);
    assert!(ok);
    assert!(out.contains("first-fit") && out.contains("ddff"));
}

#[test]
fn non_clairvoyant_flag_respected() {
    let path = temp_trace("nc.csv");
    dbp(&[
        "generate",
        "--workload",
        "uniform",
        "--n",
        "60",
        "--seed",
        "4",
        "--out",
        &path,
    ]);
    // CBDT requires clairvoyance: non-clairvoyant mode must fail loudly
    // (panics inside — surfaced as a failed exit status), while FF works.
    let (ok_ff, _, _) = dbp(&[
        "pack",
        "--trace",
        &path,
        "--algo",
        "first-fit",
        "--non-clairvoyant",
    ]);
    assert!(ok_ff);
    let (ok_cbdt, _, _) = dbp(&[
        "pack",
        "--trace",
        &path,
        "--algo",
        "cbdt",
        "--non-clairvoyant",
    ]);
    assert!(!ok_cbdt);
}

#[test]
fn threads_zero_is_a_usage_error_on_every_sweep() {
    // run_grid_checked and the shard coordinator both clamp 0 to 1;
    // the CLI must reject it loudly instead (exit 2 = usage error).
    for cmd in ["bench", "audit", "chaos", "shard-audit"] {
        let (code, _, err) = dbp_code(&[cmd, "--threads", "0"]);
        assert_eq!(
            code,
            Some(2),
            "{cmd} --threads 0 must exit 2, stderr: {err}"
        );
        assert!(
            err.contains("--threads must be at least 1"),
            "{cmd}: unhelpful error: {err}"
        );
    }
    // Sanity: a positive thread count parses on the same paths.
    let (code, _, err) = dbp_code(&["bench", "--n", "40", "--seeds", "1", "--threads", "2"]);
    assert_eq!(code, Some(0), "bench --threads 2 failed: {err}");
}

#[test]
fn bench_subcommand_sweeps_the_roster() {
    let (ok, out, err) = dbp(&[
        "bench",
        "--workload",
        "uniform",
        "--n",
        "60",
        "--seeds",
        "2",
        "--threads",
        "2",
    ]);
    assert!(ok, "bench failed: {err}");
    for needle in ["first-fit/seed0", "cbdt/seed1", "mean ratio vs LB3"] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
    let (code, _, _) = dbp_code(&["bench", "--workload", "nope"]);
    assert_eq!(
        code,
        Some(2),
        "unknown bench workload must be a usage error"
    );
}

#[test]
fn sharded_pack_reports_the_fleet() {
    let path = temp_trace("sharded.csv");
    let (ok, _, err) = dbp(&[
        "generate",
        "--workload",
        "uniform",
        "--n",
        "150",
        "--seed",
        "3",
        "--out",
        &path,
    ]);
    assert!(ok, "generate failed: {err}");

    let (ok, out, err) = dbp(&[
        "pack",
        "--trace",
        &path,
        "--algo",
        "cbdt",
        "--shards",
        "3",
        "--router",
        "size",
        "--threads",
        "2",
    ]);
    assert!(ok, "sharded pack failed: {err}");
    for needle in ["3 shards", "router size", "ratio vs LB", "balance:"] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }

    // Sharding is an online-streaming construct, and router specs are
    // validated at the flag layer: both are usage errors.
    let (code, _, _) = dbp_code(&[
        "pack",
        "--trace",
        &path,
        "--algo",
        "ddff",
        "--offline",
        "--shards",
        "2",
    ]);
    assert_eq!(code, Some(2), "--offline --shards must be a usage error");
    let (code, _, _) = dbp_code(&[
        "pack", "--trace", &path, "--algo", "cbdt", "--shards", "2", "--router", "bogus",
    ]);
    assert_eq!(code, Some(2), "unknown router must be a usage error");
}

#[test]
fn shard_audit_smoke_is_clean() {
    let (ok, out, err) = dbp(&["shard-audit", "--cases", "2", "--seed", "1"]);
    assert!(ok, "shard-audit failed: {err}");
    assert!(out.contains("shard-audit: no violations"), "got:\n{out}");
}
