//! End-to-end integration: workload generators → online engines →
//! simulator metrics → billing, across the full algorithm roster.

use clairvoyant_dbp::core::accounting::lower_bounds;
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::random::{DurationDist, PoissonWorkload, UniformWorkload};
use clairvoyant_dbp::workloads::scenarios::{
    AnalyticsWorkload, CloudGamingWorkload, DiurnalWorkload, SpikeWorkload,
};

fn roster(inst: &Instance) -> Vec<Box<dyn OnlinePacker>> {
    let delta = inst.min_duration().unwrap_or(1);
    let mu = inst.mu().unwrap_or(1.0);
    vec![
        Box::new(AnyFit::first_fit()),
        Box::new(AnyFit::best_fit()),
        Box::new(AnyFit::worst_fit()),
        Box::new(AnyFit::next_fit()),
        Box::new(HybridFirstFit::default()),
        Box::new(ClassifyByDepartureTime::with_known_durations(delta, mu)),
        Box::new(ClassifyByDuration::with_known_durations(delta, mu)),
        Box::new(CombinedClassify::with_known_durations(delta, mu)),
    ]
}

#[test]
fn every_generator_times_every_packer() {
    let generators: Vec<(&str, Instance)> = vec![
        ("uniform", UniformWorkload::new(300).generate_seeded(1)),
        (
            "poisson",
            PoissonWorkload::new(0.3, 3000)
                .with_durations(DurationDist::Exponential {
                    mean: 60.0,
                    min: 5,
                    max: 600,
                })
                .generate_seeded(2),
        ),
        (
            "gaming",
            CloudGamingWorkload::new(300, 20_000).generate_seeded(3),
        ),
        (
            "analytics",
            AnalyticsWorkload::new(20, 500, 10).generate_seeded(4),
        ),
        (
            "diurnal",
            DiurnalWorkload::new(300, 2000, 2, 0.7).generate_seeded(5),
        ),
        ("spike", SpikeWorkload::new(5, 40, 500).generate_seeded(6)),
    ];
    let engine = OnlineEngine::clairvoyant();
    for (wname, inst) in &generators {
        let lb = lower_bounds(inst);
        for packer in roster(inst).iter_mut() {
            let run = engine.run(inst, packer.as_mut()).unwrap();
            run.packing
                .validate(inst)
                .unwrap_or_else(|e| panic!("{wname}/{}: {e}", packer.name()));
            assert!(run.usage >= lb.best(), "{wname}/{}", packer.name());
            assert_eq!(run.usage, run.packing.total_usage(inst));
        }
    }
}

#[test]
fn simulator_metrics_consistent_across_billing() {
    let inst = CloudGamingWorkload::new(400, 20_000).generate_seeded(9);
    let hourly = Billing::PerHour {
        ticks_per_hour: 3600,
        price: 2.0,
    };
    for packer_name in ["first-fit", "cbdt"] {
        let make = |name: &str| -> Box<dyn OnlinePacker> {
            match name {
                "first-fit" => Box::new(AnyFit::first_fit()),
                _ => Box::new(ClassifyByDepartureTime::new(1200)),
            }
        };
        let mut p1 = make(packer_name);
        let mut p2 = make(packer_name);
        let tick = simulate(
            &inst,
            p1.as_mut(),
            ClairvoyanceMode::Clairvoyant,
            Billing::PerTick { price: 1.0 },
        )
        .unwrap();
        let hour = simulate(&inst, p2.as_mut(), ClairvoyanceMode::Clairvoyant, hourly).unwrap();
        // Same packer, same decisions: identical packings under both
        // billing models; hourly cost ≥ per-tick cost at comparable rates
        // (2.0/3600 per tick < 1.0 per tick — compare usage instead).
        assert_eq!(tick.usage, hour.usage);
        assert_eq!(tick.servers_acquired, hour.servers_acquired);
        // Hourly rounds up: cost ≥ (usage/3600)·price.
        assert!(hour.cost >= (hour.usage as f64 / 3600.0) * 2.0 - 1e-9);
    }
}

#[test]
fn noise_degrades_gracefully() {
    // Usage under noisy estimates stays a valid packing and within a sane
    // multiple of the noise-free run for bounded noise.
    let inst = PoissonWorkload::new(0.3, 5000).generate_seeded(11);
    let clean = {
        let mut p = ClassifyByDepartureTime::new(200);
        simulate(
            &inst,
            &mut p,
            ClairvoyanceMode::Clairvoyant,
            clairvoyant_dbp::sim::unit_billing(),
        )
        .unwrap()
    };
    for err in [0.05, 0.2, 0.5] {
        let est = NoisyEstimator::new(3, err);
        let mut p = ClassifyByDepartureTime::new(200);
        let noisy = simulate(
            &inst,
            &mut p,
            est.mode(),
            clairvoyant_dbp::sim::unit_billing(),
        )
        .unwrap();
        assert!(
            (noisy.usage as f64) <= clean.usage as f64 * 2.5,
            "err={err}: noisy {} vs clean {}",
            noisy.usage,
            clean.usage
        );
    }
}

#[test]
fn offline_beats_or_matches_online_on_drain_shapes() {
    // With full information, DDFF should never lose badly to online FF on
    // burst-and-drain instances (and usually wins).
    let inst = CloudGamingWorkload::new(500, 600).generate_seeded(21);
    let ddff = DurationDescendingFirstFit::new().pack(&inst);
    ddff.validate(&inst).unwrap();
    let mut ff = AnyFit::first_fit();
    let online = OnlineEngine::non_clairvoyant().run(&inst, &mut ff).unwrap();
    assert!(
        ddff.total_usage(&inst) <= online.usage * 2,
        "offline should be competitive: {} vs {}",
        ddff.total_usage(&inst),
        online.usage
    );
}

#[test]
fn concat_and_shift_compose_with_engines() {
    let a = UniformWorkload::new(50).generate_seeded(31);
    let b = a.shifted(10_000);
    let merged = Instance::concat(&[a.clone(), b]);
    assert_eq!(merged.len(), 100);
    let mut ff = AnyFit::first_fit();
    let run = OnlineEngine::clairvoyant().run(&merged, &mut ff).unwrap();
    run.packing.validate(&merged).unwrap();
    // Disjoint halves: total usage is exactly twice one half's usage.
    let mut ff2 = AnyFit::first_fit();
    let half = OnlineEngine::clairvoyant().run(&a, &mut ff2).unwrap();
    assert_eq!(run.usage, 2 * half.usage);
}
