//! Determinism guarantees: everything in the workspace must be a pure
//! function of its inputs and seeds — experiments are only reproducible
//! if packing, generation, and the parallel grid runner are all
//! deterministic.

use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::random::PoissonWorkload;
use clairvoyant_dbp::workloads::Workload;
use dbp_bench::{run_grid, GridCell};

fn roster(inst: &Instance) -> Vec<Box<dyn OnlinePacker>> {
    let delta = inst.min_duration().unwrap_or(1);
    let mu = inst.mu().unwrap_or(1.0);
    vec![
        Box::new(AnyFit::first_fit()),
        Box::new(AnyFit::best_fit()),
        Box::new(HybridFirstFit::default()),
        Box::new(ClassifyByDepartureTime::with_known_durations(delta, mu)),
        Box::new(ClassifyByDuration::with_known_durations(delta, mu)),
        Box::new(CombinedClassify::with_known_durations(delta, mu)),
    ]
}

#[test]
fn repeated_runs_are_identical() {
    let inst = PoissonWorkload::new(0.5, 2_000).generate_seeded(3);
    let engine = OnlineEngine::clairvoyant();
    for mut p in roster(&inst) {
        let a = engine.run(&inst, p.as_mut()).unwrap();
        let b = engine.run(&inst, p.as_mut()).unwrap();
        assert_eq!(a.packing, b.packing, "{} is nondeterministic", p.name());
        assert_eq!(a.usage, b.usage);
    }
}

#[test]
fn offline_packers_are_deterministic() {
    let inst = PoissonWorkload::new(0.5, 2_000).generate_seeded(4);
    for p in [
        &DurationDescendingFirstFit::new() as &dyn OfflinePacker,
        &DualColoring::new(),
        &ArrivalFirstFit::new(),
    ] {
        assert_eq!(p.pack(&inst), p.pack(&inst), "{}", p.name());
    }
}

#[test]
fn grid_runner_is_schedule_independent() {
    // The same grid evaluated with 1, 2, and many workers must give
    // byte-identical results in the same order.
    let cells: Vec<GridCell<u64>> = (0..40)
        .map(|seed| GridCell {
            label: format!("seed{seed}"),
            input: seed,
        })
        .collect();
    let eval = |&seed: &u64| {
        let inst = PoissonWorkload::new(0.3, 500).generate_seeded(seed);
        let mut ff = AnyFit::first_fit();
        OnlineEngine::clairvoyant()
            .run(&inst, &mut ff)
            .unwrap()
            .usage
    };
    let serial = run_grid(cells.clone(), Some(1), eval);
    let two = run_grid(cells.clone(), Some(2), eval);
    let many = run_grid(cells, None, eval);
    for ((a, b), c) in serial.iter().zip(&two).zip(&many) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.output, b.output);
        assert_eq!(a.output, c.output);
    }
}

#[test]
fn generator_seeds_are_stable_across_versions() {
    // Golden values: if these change, saved traces and published
    // experiment numbers silently stop being reproducible. Update only
    // with a changelog entry.
    let inst = PoissonWorkload::new(0.5, 1_000).generate_seeded(42);
    let fingerprint: u128 = inst
        .items()
        .iter()
        .map(|r| {
            (r.size().raw() as u128)
                .wrapping_mul(31)
                .wrapping_add(r.arrival() as u128)
                .wrapping_mul(31)
                .wrapping_add(r.departure() as u128)
        })
        .fold(0u128, |a, x| a.wrapping_mul(1_000_003).wrapping_add(x));
    let expected_len = inst.len();
    // Re-derive to confirm stability within this build.
    let again = PoissonWorkload::new(0.5, 1_000).generate_seeded(42);
    assert_eq!(again.len(), expected_len);
    let fp2: u128 = again
        .items()
        .iter()
        .map(|r| {
            (r.size().raw() as u128)
                .wrapping_mul(31)
                .wrapping_add(r.arrival() as u128)
                .wrapping_mul(31)
                .wrapping_add(r.departure() as u128)
        })
        .fold(0u128, |a, x| a.wrapping_mul(1_000_003).wrapping_add(x));
    assert_eq!(fingerprint, fp2);
}
