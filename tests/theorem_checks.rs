//! Deterministic theorem verification on structured instance families —
//! the executable companion to the paper's proofs.

use clairvoyant_dbp::algos::adversary::{
    golden_ratio, guaranteed_ratio, run_adversary, theorem3_instance,
};
use clairvoyant_dbp::algos::exact;
use clairvoyant_dbp::core::accounting::lower_bounds;
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::theory;
use clairvoyant_dbp::workloads::adversarial::{any_fit_staircase, ff_tail_trap, short_long_pairs};

/// Theorem 3: every roster algorithm is forced to ≥ φ − ε by the adversary.
#[test]
fn theorem3_nobody_escapes() {
    let unit = 100_000;
    let x = 161_803;
    let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
        Box::new(AnyFit::first_fit()),
        Box::new(AnyFit::best_fit()),
        Box::new(AnyFit::worst_fit()),
        Box::new(AnyFit::next_fit()),
        Box::new(HybridFirstFit::default()),
        Box::new(ClassifyByDepartureTime::new(50_000)),
        Box::new(ClassifyByDuration::new(unit, 2.0)),
        Box::new(CombinedClassify::new(unit, 2.0)),
    ];
    for p in packers.iter_mut() {
        let rep = run_adversary(p.as_mut(), unit, x, 1);
        assert!(
            rep.ratio >= golden_ratio() - 0.001,
            "{} escaped with {:.4}",
            p.name(),
            rep.ratio
        );
    }
}

/// The adversary's guarantee curve peaks exactly at φ.
#[test]
fn theorem3_guarantee_curve() {
    let phi = golden_ratio();
    assert!((guaranteed_ratio(phi) - phi).abs() < 1e-12);
    // The curve is the min of a decreasing and an increasing function.
    for x in [1.05, 1.2, 1.4, 1.6, 1.62, 1.8, 2.5, 4.0] {
        assert!(guaranteed_ratio(x) <= phi + 1e-12);
    }
}

/// Theorem 3 case-B optimum matches the closed form x + 1 + 2τ.
#[test]
fn theorem3_case_b_optimum() {
    for (unit, x, tau) in [(100i64, 162i64, 1i64), (1000, 1618, 5), (50, 90, 2)] {
        let inst = theorem3_instance(unit, x, tau, true);
        let (opt, packing) = exact::min_usage_packing(&inst);
        packing.validate(&inst).unwrap();
        assert_eq!(opt, (x + unit + 2 * tau) as u128);
    }
}

/// Tang et al.'s μ+4 bound for First Fit, stress-tested on the adversarial
/// families it was designed around.
#[test]
fn first_fit_mu_plus_4_on_adversarial_families() {
    let engine = OnlineEngine::non_clairvoyant();
    let instances = vec![
        ff_tail_trap(16, 2000, 10),
        any_fit_staircase(10, 5, 1000),
        short_long_pairs(6, 10, 900),
    ];
    for inst in instances {
        let mu = inst.mu().unwrap();
        let lb = lower_bounds(&inst).best() as f64;
        let mut ff = AnyFit::first_fit();
        let run = engine.run(&inst, &mut ff).unwrap();
        run.packing.validate(&inst).unwrap();
        assert!(
            run.usage as f64 <= (mu + 4.0) * lb,
            "FF {} vs (mu+4)·LB = {}",
            run.usage,
            (mu + 4.0) * lb
        );
    }
}

/// The tail trap actually exhibits Ω(μ)-type behaviour for FF while CBDT
/// stays O(1) — the gap the paper's classification strategies close.
#[test]
fn classification_closes_the_tail_trap_gap() {
    let inst = ff_tail_trap(16, 4000, 10);
    let lb = lower_bounds(&inst).best() as f64;

    let mut ff = AnyFit::first_fit();
    let ff_ratio = OnlineEngine::non_clairvoyant()
        .run(&inst, &mut ff)
        .unwrap()
        .usage as f64
        / lb;

    let mut cbdt = ClassifyByDepartureTime::new(100);
    let cbdt_ratio = OnlineEngine::clairvoyant()
        .run(&inst, &mut cbdt)
        .unwrap()
        .usage as f64
        / lb;

    assert!(ff_ratio > 10.0, "trap must hurt FF (got {ff_ratio:.2})");
    assert!(
        cbdt_ratio < 2.0,
        "CBDT must dismantle the trap (got {cbdt_ratio:.2})"
    );
}

/// Figure 8 consistency between the theory crate and direct formulas.
#[test]
fn figure8_matches_theorem_formulas() {
    for mu in [1.0, 3.0, 4.0, 9.0, 64.0, 1e4] {
        assert_eq!(theory::ff_non_clairvoyant(mu), mu + 4.0);
        assert!((theory::cbdt_best_known(mu) - (2.0 * mu.sqrt() + 3.0)).abs() < 1e-12);
        let (bound, n) = theory::cbd_best_known(mu);
        let direct = mu.powf(1.0 / n as f64) + n as f64 + 3.0;
        assert!((bound - direct).abs() < 1e-12);
    }
}

/// Proposition ordering on structured instances where all three bounds
/// differ.
#[test]
fn proposition_bounds_strict_ordering_possible() {
    // Dyadic item sizes 0.625: span < demand < LB3 strictly.
    let inst = Instance::from_triples(&[(0.625, 0, 10), (0.625, 0, 10)]);
    let lb = lower_bounds(&inst);
    assert_eq!(lb.demand.ticks_ceil(), 13);
    assert_eq!(lb.span, 10);
    assert_eq!(lb.lb3, 20);
    assert!(lb.lb3 > lb.demand.ticks_ceil() && lb.demand.ticks_ceil() > lb.span);
    // And OPT_total achieves LB3 here.
    assert_eq!(exact::opt_total(&inst), 20);
}

/// Known-μ parameterizations: the chosen ρ and α really are the argmins
/// of their bound formulas (sampled check).
#[test]
fn optimal_parameters_are_argmins() {
    for mu in [2.0f64, 4.0, 16.0, 100.0] {
        let delta = 10.0;
        let rho_star = theory::cbdt_optimal_rho(delta, mu);
        let best = theory::cbdt_bound(rho_star, delta, mu);
        for mult in [0.25, 0.5, 0.9, 1.1, 2.0, 4.0] {
            assert!(theory::cbdt_bound(rho_star * mult, delta, mu) >= best - 1e-12);
        }
        let (cbd_best, n_star) = theory::cbd_best_known(mu);
        for n in 1..=20u32 {
            let v = mu.powf(1.0 / n as f64) + n as f64 + 3.0;
            assert!(v >= cbd_best - 1e-12, "n={n} beats n*={n_star} at mu={mu}");
        }
    }
}
