//! Property-based invariants spanning the whole workspace (DESIGN.md §7).
//!
//! Random instances are generated directly through proptest strategies
//! (not the seeded workload generators, to get shrinking), and every
//! algorithm's output is checked against the paper's invariants:
//! validity, lower-bound ordering, theorem bounds, and engine accounting
//! identities.

use clairvoyant_dbp::algos::exact;
use clairvoyant_dbp::core::accounting::lower_bounds;
use clairvoyant_dbp::prelude::*;
use proptest::prelude::*;

/// Strategy: a list of up to `n` items with dyadic-ish sizes and bounded
/// times (small enough ranges that shrinking stays readable).
fn arb_instance(max_items: usize) -> impl Strategy<Value = Instance> {
    let item = (1u64..=64, 0i64..200, 1i64..100).prop_map(|(s64, a, d)| (s64, a, a + d));
    proptest::collection::vec(item, 1..=max_items).prop_map(|triples| {
        let items = triples
            .into_iter()
            .enumerate()
            .map(|(i, (s64, a, dep))| {
                Item::new(i as u32, Size::from_ratio(s64, 64).unwrap(), a, dep)
            })
            .collect();
        Instance::from_items(items).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packer produces a valid packing whose usage is at least the
    /// best lower bound, and the bounds are ordered LB3 ≥ span, demand.
    #[test]
    fn all_packers_valid_and_above_lb(inst in arb_instance(40)) {
        let lb = lower_bounds(&inst);
        prop_assert!(lb.lb3 >= lb.span);
        prop_assert!(lb.lb3 >= lb.demand.ticks_ceil());

        // Offline algorithms.
        let offline: Vec<Box<dyn OfflinePacker>> = vec![
            Box::new(DurationDescendingFirstFit::new()),
            Box::new(DualColoring::new()),
            Box::new(ArrivalFirstFit::new()),
        ];
        for p in &offline {
            let packing = p.pack(&inst);
            packing.validate(&inst).unwrap();
            let usage = packing.total_usage(&inst);
            prop_assert!(usage >= lb.best(), "{} beat the lower bound", p.name());
        }

        // Online algorithms (clairvoyant engine drives all of them).
        let engine = OnlineEngine::clairvoyant();
        let delta = inst.min_duration().unwrap();
        let mu = inst.mu().unwrap();
        let mut online: Vec<Box<dyn OnlinePacker>> = vec![
            Box::new(AnyFit::first_fit()),
            Box::new(AnyFit::best_fit()),
            Box::new(AnyFit::worst_fit()),
            Box::new(AnyFit::next_fit()),
            Box::new(HybridFirstFit::default()),
            Box::new(ClassifyByDepartureTime::with_known_durations(delta, mu)),
            Box::new(ClassifyByDuration::with_known_durations(delta, mu)),
            Box::new(CombinedClassify::with_known_durations(delta, mu)),
        ];
        for p in online.iter_mut() {
            let run = engine.run(&inst, p.as_mut()).unwrap();
            run.packing.validate(&inst).unwrap();
            prop_assert!(run.usage >= lb.best(), "{} beat the lower bound", p.name());
            // Engine accounting identity: usage equals packing span sum.
            prop_assert_eq!(run.usage, run.packing.total_usage(&inst));
        }
    }

    /// Theorem 1 and 2 bounds hold against LB3 (≤ OPT_total, so this is
    /// stronger than needed) on random instances.
    #[test]
    fn offline_theorem_bounds(inst in arb_instance(30)) {
        let lb = lower_bounds(&inst).best();
        let ddff = DurationDescendingFirstFit::new().pack(&inst).total_usage(&inst);
        prop_assert!(ddff < 5 * lb + 1, "DDFF {} vs 5x{}", ddff, lb);
        let dc = DualColoring::new().pack(&inst).total_usage(&inst);
        prop_assert!(dc <= 4 * lb, "DualColoring {} vs 4x{}", dc, lb);
    }

    /// Theorem 4/5 bounds hold for the classification strategies at their
    /// optimal known-μ parameters.
    #[test]
    fn online_theorem_bounds(inst in arb_instance(30)) {
        let lb = lower_bounds(&inst).best() as f64;
        let delta = inst.min_duration().unwrap();
        let mu = inst.mu().unwrap();
        let engine = OnlineEngine::clairvoyant();

        let mut cbdt = ClassifyByDepartureTime::with_known_durations(delta, mu);
        let u = engine.run(&inst, &mut cbdt).unwrap().usage as f64;
        let bound = clairvoyant_dbp::theory::cbdt_best_known(mu);
        // Rounding ρ to integer ticks perturbs the bound; allow the
        // general-form bound at the actual ρ.
        let actual_bound = clairvoyant_dbp::theory::cbdt_bound(
            cbdt.rho() as f64, delta as f64, mu);
        prop_assert!(u <= (bound.max(actual_bound)) * lb + 1.0,
            "CBDT usage {} vs bound {}x{}", u, bound, lb);

        let mut cbd = ClassifyByDuration::with_known_durations(delta, mu);
        let u = engine.run(&inst, &mut cbd).unwrap().usage as f64;
        let (bound, _) = clairvoyant_dbp::theory::cbd_best_known(mu);
        prop_assert!(u <= bound * lb + 1.0, "CBD usage {} vs bound {}x{}", u, bound, lb);

        // Non-clairvoyant First Fit respects μ+4 (Tang et al.).
        let mut ff = AnyFit::first_fit();
        let u = OnlineEngine::non_clairvoyant().run(&inst, &mut ff).unwrap().usage as f64;
        prop_assert!(u <= (mu + 4.0) * lb + 1.0, "FF {} vs (mu+4)x{}", u, lb);
    }

    /// Exact solver sandwich on small instances:
    /// LB3 ≤ OPT_total ≤ min_usage ≤ every algorithm's usage.
    #[test]
    fn exact_solver_sandwich(inst in arb_instance(7)) {
        let lb = lower_bounds(&inst);
        let opt_total = exact::opt_total(&inst);
        let (min_usage, packing) = exact::min_usage_packing(&inst);
        packing.validate(&inst).unwrap();
        prop_assert!(lb.lb3 <= opt_total);
        prop_assert!(opt_total <= min_usage);
        prop_assert_eq!(min_usage, packing.total_usage(&inst));
        let ddff = DurationDescendingFirstFit::new().pack(&inst).total_usage(&inst);
        prop_assert!(min_usage <= ddff);
        // Theorem bounds against the true denominators.
        prop_assert!(ddff < 5 * opt_total + 1);
        let dc = DualColoring::new().pack(&inst).total_usage(&inst);
        prop_assert!(dc <= 4 * opt_total);
    }

    /// Dual Coloring Phase 1 lemmas on random small-item sets.
    #[test]
    fn dual_coloring_lemmas(inst in arb_instance(25)) {
        use clairvoyant_dbp::algos::offline::{
            max_overlap_depth, phase1_with_coloring, placements_within_chart, verify_lemma2,
        };
        let (small, _) = inst.split_small_large();
        let (placements, coloring) = phase1_with_coloring(&small);
        prop_assert_eq!(placements.len(), small.len()); // Lemma 4
        prop_assert!(max_overlap_depth(&placements) <= 2); // Lemma 5
        prop_assert!(placements_within_chart(&small, &placements)); // Lemma 3
        prop_assert!(verify_lemma2(&small, &coloring)); // Lemma 2
    }

    /// The BTree and segment-tree profile backends produce identical DDFF
    /// packings.
    #[test]
    fn profile_backends_agree(inst in arb_instance(40)) {
        use clairvoyant_dbp::algos::offline::ProfileBackend;
        let a = DurationDescendingFirstFit::with_backend(ProfileBackend::BTree).pack(&inst);
        let b = DurationDescendingFirstFit::with_backend(ProfileBackend::SegTree).pack(&inst);
        prop_assert_eq!(a, b);
    }

    /// Trace round-trip is lossless for arbitrary instances.
    #[test]
    fn trace_round_trip(inst in arb_instance(50)) {
        use clairvoyant_dbp::workloads::trace;
        let text = trace::to_string(&inst);
        let back = trace::from_str(&text).unwrap();
        prop_assert_eq!(inst, back);
    }

    /// The streaming session and the batch engine produce identical runs
    /// for every packer on random instances (the batch engine is a
    /// wrapper, but this guards the contract from the outside).
    #[test]
    fn streaming_equals_batch(inst in arb_instance(30)) {
        use clairvoyant_dbp::core::stream::StreamingSession;
        let delta = inst.min_duration().unwrap();
        let mu = inst.mu().unwrap();
        let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
            Box::new(AnyFit::best_fit()),
            Box::new(ClassifyByDepartureTime::with_known_durations(delta, mu)),
        ];
        for p in packers.iter_mut() {
            let batch = OnlineEngine::clairvoyant().run(&inst, p.as_mut()).unwrap();
            let mut session =
                StreamingSession::new(ClairvoyanceMode::Clairvoyant, p.as_mut());
            for r in inst.items() {
                session.arrive(r).unwrap();
            }
            let streamed = session.finish().unwrap();
            prop_assert_eq!(&streamed.packing, &batch.packing);
            prop_assert_eq!(streamed.usage, batch.usage);
        }
    }

    /// IntervalSet agrees with the sweep-line machinery: the union of all
    /// item intervals has measure span(R), and subtracting it from its
    /// hull yields exactly the load gaps.
    #[test]
    fn interval_set_cross_checks(inst in arb_instance(30)) {
        use clairvoyant_dbp::core::IntervalSet;
        let set: IntervalSet = inst.items().iter().map(|r| r.interval()).collect();
        prop_assert_eq!(set.measure(), inst.span());
        if let Some(hull) = inst.horizon() {
            let gaps = IntervalSet::from_intervals([hull]).difference(&set);
            prop_assert_eq!(gaps.measure(), hull.len() - inst.span());
            prop_assert_eq!(set.gaps(), gaps.clone());
            prop_assert!(!set.intersects(&gaps));
            prop_assert_eq!(set.union(&gaps).measure(), hull.len());
        }
    }
}
