//! Golden-run regression for the vector stack: the vector roster on a
//! small fixed correlated-workload grid must reproduce
//! `results/golden_vector.json` bit-exactly.
//!
//! The vector sibling of `golden_grid`: every deterministic vector
//! layer feeds the per-cell numbers — the correlated workload
//! generator, per-axis parameter fitting, the vector engine, the
//! indexed fit queries, and the packers themselves. Intentional
//! changes are blessed by regenerating the file:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_vector
//! git diff results/golden_vector.json   # review the drift, then commit
//! ```

use clairvoyant_dbp::core::VecOnlineEngine;
use clairvoyant_dbp::obs::json::{self, Json};
use clairvoyant_dbp::workloads::random::DurationDist;
use clairvoyant_dbp::workloads::vector::{CorrelatedVectorWorkload, VectorWorkload};
use dbp_bench::registry::{vector_packer, AlgoParams, VECTOR_ALGOS};
use std::path::PathBuf;

const N: usize = 80;
const SEEDS: [u64; 3] = [1, 2, 3];
/// One grid per dimensionality: the 2-axis and 4-axis recipes exercise
/// the indexed scan's axis filtering differently.
const DIMS: [usize; 2] = [2, 4];

struct Cell {
    label: String,
    usage: u128,
    bins: u64,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden_vector.json")
}

/// Evaluates the whole grid serially (thread count must never matter
/// for the numbers; the determinism suites prove that separately).
fn evaluate_grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &dims in &DIMS {
        for &seed in &SEEDS {
            let means = [0.3, 0.2, 0.45, 0.15];
            let inst = CorrelatedVectorWorkload::new(N, &means[..dims], 0.5, 0.6)
                .expect("valid vector workload")
                .with_durations(DurationDist::uniform(1, 40).expect("valid uniform"))
                .with_arrival_span(N as i64)
                .generate_seeded(seed);
            let params = AlgoParams::from_vec_instance(&inst);
            for algo in VECTOR_ALGOS {
                let engine = if matches!(*algo, "cbdt" | "cbd") {
                    VecOnlineEngine::clairvoyant()
                } else {
                    VecOnlineEngine::non_clairvoyant()
                };
                let mut packer = vector_packer(algo, params);
                let run = engine
                    .run(&inst, packer.as_mut())
                    .expect("roster run on a clean instance");
                inst.validate_packing(&run.packing)
                    .expect("roster packing is per-axis feasible");
                cells.push(Cell {
                    label: format!("{algo}/dims{dims}/seed{seed}"),
                    usage: run.usage,
                    bins: run.bins_opened() as u64,
                });
            }
        }
    }
    cells
}

fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"dbp-tests/golden-vector-v1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{ \"generator\": \"corr-vec\", \"n\": {N}, \"dims\": [2, 4], \
         \"rho\": 0.6, \"seeds\": [1, 2, 3] }},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"usage\": {}, \"bins\": {} }}{}\n",
            c.label,
            c.usage,
            c.bins,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn num_u128(j: &Json) -> Option<u128> {
    match j {
        Json::Num(s) => s.parse().ok(),
        _ => None,
    }
}

fn parse_golden(text: &str) -> Vec<Cell> {
    let root = json::parse(text).expect("golden_vector.json parses");
    assert_eq!(
        root.get("schema").and_then(Json::as_str),
        Some("dbp-tests/golden-vector-v1"),
        "unknown golden schema"
    );
    let Some(Json::Arr(rows)) = root.get("cells") else {
        panic!("golden_vector.json has no cells array");
    };
    rows.iter()
        .map(|row| Cell {
            label: row
                .get("cell")
                .and_then(Json::as_str)
                .expect("cell label")
                .to_string(),
            usage: row.get("usage").and_then(num_u128).expect("cell usage"),
            bins: row.get("bins").and_then(Json::as_u64).expect("cell bins"),
        })
        .collect()
}

#[test]
fn vector_roster_matches_the_golden_grid() {
    let current = evaluate_grid();
    let path = golden_path();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, render(&current)).expect("write golden file");
        eprintln!("regenerated {} ({} cells)", path.display(), current.len());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(first run? bless it with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    let golden = parse_golden(&text);

    // Diff cell by cell, labelled, and report every drift at once — a
    // roster-wide change should read as one story, not die on cell 1.
    let mut diffs = Vec::new();
    let current_by_label: std::collections::HashMap<&str, &Cell> =
        current.iter().map(|c| (c.label.as_str(), c)).collect();
    for g in &golden {
        match current_by_label.get(g.label.as_str()) {
            None => diffs.push(format!(
                "{}: in golden file but no longer evaluated",
                g.label
            )),
            Some(c) if c.usage != g.usage || c.bins != g.bins => diffs.push(format!(
                "{}: usage {} -> {}, bins {} -> {}",
                g.label, g.usage, c.usage, g.bins, c.bins
            )),
            Some(_) => {}
        }
    }
    let golden_labels: std::collections::HashSet<&str> =
        golden.iter().map(|c| c.label.as_str()).collect();
    for c in &current {
        if !golden_labels.contains(c.label.as_str()) {
            diffs.push(format!("{}: new cell not in golden file", c.label));
        }
    }
    assert!(
        diffs.is_empty(),
        "{} cells drifted from results/golden_vector.json:\n  {}\n\
         If intentional, regenerate with UPDATE_GOLDEN=1 and commit the diff.",
        diffs.len(),
        diffs.join("\n  ")
    );

    // The file itself must be the canonical rendering (catches hand
    // edits and stale formatting, keeping regeneration reviewable).
    assert_eq!(
        text,
        render(&current),
        "golden_vector.json is not canonically rendered; regenerate with UPDATE_GOLDEN=1"
    );
}
