//! Moderate-scale smoke tests: the engines must stay correct (and
//! tolerably fast in debug builds) on thousands of items.

use clairvoyant_dbp::algos::offline::ProfileBackend;
use clairvoyant_dbp::core::accounting::lower_bounds;
use clairvoyant_dbp::prelude::*;
use clairvoyant_dbp::workloads::random::PoissonWorkload;
use clairvoyant_dbp::workloads::Workload;

#[test]
fn online_roster_on_5k_items() {
    let inst = PoissonWorkload::new(1.0, 5_000).generate_seeded(17);
    assert!(inst.len() > 4_000);
    let lb = lower_bounds(&inst);
    let engine = OnlineEngine::clairvoyant();
    let delta = inst.min_duration().unwrap();
    let mu = inst.mu().unwrap();
    let mut packers: Vec<Box<dyn OnlinePacker>> = vec![
        Box::new(AnyFit::first_fit()),
        Box::new(AnyFit::best_fit()),
        Box::new(ClassifyByDepartureTime::with_known_durations(delta, mu)),
        Box::new(ClassifyByDuration::with_known_durations(delta, mu)),
    ];
    for p in packers.iter_mut() {
        let run = engine.run(&inst, p.as_mut()).unwrap();
        run.packing.validate(&inst).unwrap();
        assert!(run.usage >= lb.best());
        assert_eq!(run.usage, run.packing.total_usage(&inst));
        // Fleet accounting identity at scale.
        assert_eq!(run.fleet_series().integral() as u128, run.usage);
    }
}

#[test]
fn ddff_segtree_on_5k_items() {
    let inst = PoissonWorkload::new(1.0, 5_000).generate_seeded(18);
    let packing = DurationDescendingFirstFit::with_backend(ProfileBackend::SegTree).pack(&inst);
    packing.validate(&inst).unwrap();
    let lb = lower_bounds(&inst);
    assert!(packing.total_usage(&inst) < 5 * lb.best());
}

#[test]
fn lower_bounds_on_50k_items() {
    let inst = PoissonWorkload::new(5.0, 10_000).generate_seeded(19);
    assert!(inst.len() > 40_000);
    let lb = lower_bounds(&inst);
    assert!(lb.lb3 >= lb.span);
    assert!(lb.lb3 >= lb.demand.ticks_ceil());
}
